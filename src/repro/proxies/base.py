"""Proxy base: Web Service hosting plus master registration.

"Each data source is therefore accompanied with its specific proxy,
which registers itself on a single master node."

Every proxy owns a Web Service on its host and a ``register_with``
handshake that POSTs its descriptor to the master's ``/register``
endpoint.  Subclasses define the descriptor contents and their routes.

For production-style resilience a proxy can also maintain a
**registration heartbeat**: :meth:`Proxy.start_heartbeat` re-registers
periodically on the DES scheduler, each time renewing a lease on the
master.  A proxy that crashes stops heartbeating, its lease expires and
the master evicts it from the ontology; when it comes back the next
heartbeat re-registers it — no operator-driven
``FaultInjector.reregister_all`` needed.  Heartbeats are asynchronous
(future-based), so a proxy keeps serving requests while one is in
flight or timing out against a dead master.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

from repro.errors import (
    RegistrationError,
    RequestTimeoutError,
    ServiceError,
)
from repro.network.resilience import ResiliencePolicy
from repro.network.scheduler import PeriodicTask
from repro.network.transport import Host
from repro.network.webservice import (
    GET,
    POST,
    HttpClient,
    Request,
    Response,
    WebService,
    ok,
)


class Proxy(abc.ABC):
    """A data-source proxy: one Web Service plus a master registration."""

    #: descriptor tag: "device" or "database"; set by subclasses
    proxy_kind: str = ""

    def __init__(self, host: Host, processing_delay: float = 1e-4,
                 policy: Optional[ResiliencePolicy] = None):
        self.host = host
        self.service = WebService(host, processing_delay=processing_delay)
        self.registered = False
        self.heartbeats_sent = 0
        self.heartbeats_failed = 0
        self._client = HttpClient(host, policy=policy)
        self._heartbeat_task: Optional[PeriodicTask] = None
        self.service.add_route(GET, "/health", self._health_route)
        self.service.add_route(GET, "/metrics", self._metrics_route)

    @property
    def uri(self) -> str:
        """This proxy's Web-Service base URI."""
        return self.service.base_uri

    @property
    def name(self) -> str:
        return self.host.name

    @abc.abstractmethod
    def descriptor(self) -> Dict:
        """The registration payload sent to the master node."""

    def _registration_payload(self, lease: Optional[float]) -> Dict:
        payload = self.descriptor()
        payload["proxy_kind"] = self.proxy_kind
        payload["uri"] = self.uri
        if lease is not None:
            payload["lease"] = lease
        return payload

    def register_with(self, master_uri: str,
                      lease: Optional[float] = None) -> Dict:
        """Register on the master node; returns the master's response body.

        With *lease*, the registration is valid for that many simulated
        seconds and must be renewed (see :meth:`start_heartbeat`).
        Raises :class:`RegistrationError` if the master refuses or is
        unreachable.
        """
        try:
            response = self._client.post(
                master_uri.rstrip("/") + "/register",
                body=self._registration_payload(lease),
            )
        except (ServiceError, RequestTimeoutError) as exc:
            raise RegistrationError(
                f"master rejected registration of {self.name}: {exc}"
            ) from exc
        self.registered = True
        return response.body

    # -- registration heartbeat -------------------------------------------

    def start_heartbeat(self, master_uri: str, period: float,
                        lease: Optional[float] = None,
                        initial_delay: Optional[float] = None) -> None:
        """Renew the registration every *period* simulated seconds.

        *lease* defaults to three periods, so a single lost heartbeat
        does not evict a healthy proxy.  Idempotent; stop with
        :meth:`stop_heartbeat`.
        """
        if self._heartbeat_task is not None:
            return
        if lease is None:
            lease = 3.0 * period
        self._heartbeat_task = self.host.network.scheduler.every(
            period, self._heartbeat, master_uri, lease,
            initial_delay=initial_delay,
        )

    def stop_heartbeat(self) -> None:
        """Cancel the periodic re-registration."""
        if self._heartbeat_task is not None:
            self._heartbeat_task.stop()
            self._heartbeat_task = None

    def _heartbeat(self, master_uri: str, lease: float) -> None:
        """One asynchronous heartbeat: POST /register, observe outcome."""
        future = self._client.request(
            master_uri.rstrip("/") + "/register", POST,
            body=self._registration_payload(lease),
        )
        future.add_done_callback(self._on_heartbeat_done)

    def _on_heartbeat_done(self, future) -> None:
        try:
            response = future.result()
        except Exception:
            self.heartbeats_failed += 1
            self.registered = False
            return
        if response.ok:
            self.heartbeats_sent += 1
            self.registered = True
        else:
            self.heartbeats_failed += 1

    # -- health -----------------------------------------------------------

    def health(self) -> Dict:
        """Liveness payload; subclasses may extend it."""
        return {
            "status": "ok",
            "proxy_kind": self.proxy_kind,
            "host": self.name,
            "registered": self.registered,
            "requests_served": self.service.requests_served,
            "requests_failed": self.service.requests_failed,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_failed": self.heartbeats_failed,
        }

    def _health_route(self, request: Request) -> Response:
        return ok(self.health())

    # -- metrics ----------------------------------------------------------

    def metrics(self) -> Dict:
        """Numeric counters for the ``/metrics`` endpoint.

        Subclasses extend this with their own counters; the route pairs
        it with a snapshot of the network-wide
        :class:`~repro.observability.metrics.MetricsRegistry` when one
        is installed.
        """
        return {
            "requests_served": self.service.requests_served,
            "requests_failed": self.service.requests_failed,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_failed": self.heartbeats_failed,
        }

    def _metrics_route(self, request: Request) -> Response:
        registry = self.host.network.metrics
        return ok({
            "component": self.metrics(),
            "registry": registry.snapshot() if registry is not None else {},
        })
