"""Proxy base: Web Service hosting plus master registration.

"Each data source is therefore accompanied with its specific proxy,
which registers itself on a single master node."

Every proxy owns a Web Service on its host and a ``register_with``
handshake that POSTs its descriptor to the master's ``/register``
endpoint.  Subclasses define the descriptor contents and their routes.
"""

from __future__ import annotations

import abc
from typing import Dict

from repro.errors import (
    RegistrationError,
    RequestTimeoutError,
    ServiceError,
)
from repro.network.transport import Host
from repro.network.webservice import HttpClient, WebService


class Proxy(abc.ABC):
    """A data-source proxy: one Web Service plus a master registration."""

    #: descriptor tag: "device" or "database"; set by subclasses
    proxy_kind: str = ""

    def __init__(self, host: Host, processing_delay: float = 1e-4):
        self.host = host
        self.service = WebService(host, processing_delay=processing_delay)
        self.registered = False
        self._client = HttpClient(host)

    @property
    def uri(self) -> str:
        """This proxy's Web-Service base URI."""
        return self.service.base_uri

    @property
    def name(self) -> str:
        return self.host.name

    @abc.abstractmethod
    def descriptor(self) -> Dict:
        """The registration payload sent to the master node."""

    def register_with(self, master_uri: str) -> Dict:
        """Register on the master node; returns the master's response body.

        Raises :class:`RegistrationError` if the master refuses or is
        unreachable.
        """
        payload = self.descriptor()
        payload["proxy_kind"] = self.proxy_kind
        payload["uri"] = self.uri
        try:
            response = self._client.post(
                master_uri.rstrip("/") + "/register", body=payload
            )
        except (ServiceError, RequestTimeoutError) as exc:
            raise RegistrationError(
                f"master rejected registration of {self.name}: {exc}"
            ) from exc
        self.registered = True
        return response.body
