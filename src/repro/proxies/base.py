"""Proxy base: Web Service hosting plus master registration.

"Each data source is therefore accompanied with its specific proxy,
which registers itself on a single master node."

Every proxy owns a Web Service on its host and a ``register_with``
handshake that POSTs its descriptor to the master's ``/register``
endpoint.  Subclasses define the descriptor contents and their routes.

For production-style resilience a proxy can also maintain a
**registration heartbeat**: :meth:`Proxy.start_heartbeat` re-registers
periodically on the DES scheduler, each time renewing a lease on the
master.  A proxy that crashes stops heartbeating, its lease expires and
the master evicts it from the ontology; when it comes back the next
heartbeat re-registers it — no operator-driven
``FaultInjector.reregister_all`` needed.  Heartbeats are asynchronous
(future-based), so a proxy keeps serving requests while one is in
flight or timing out against a dead master.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Union

from repro.errors import (
    CircuitOpenError,
    RegistrationError,
    RequestTimeoutError,
    ServiceError,
)
from repro.network.resilience import FailoverSet, ResiliencePolicy
from repro.network.scheduler import PeriodicTask
from repro.network.transport import Host, estimate_size
from repro.network.webservice import (
    GET,
    POST,
    HttpClient,
    Request,
    Response,
    WebService,
    ok,
)


class Proxy(abc.ABC):
    """A data-source proxy: one Web Service plus a master registration."""

    #: descriptor tag: "device" or "database"; set by subclasses
    proxy_kind: str = ""

    def __init__(self, host: Host, processing_delay: float = 1e-4,
                 policy: Optional[ResiliencePolicy] = None):
        self.host = host
        self.service = WebService(host, processing_delay=processing_delay)
        self.registered = False
        self.heartbeats_sent = 0
        self.heartbeats_failed = 0
        self._client = HttpClient(host, policy=policy)
        self._masters: Optional[FailoverSet] = None
        self._heartbeat_task: Optional[PeriodicTask] = None
        #: ((descriptor_revision, lease), measured payload size) — the
        #: heartbeat body is structurally constant between descriptor
        #: changes, so its wire size is measured once per revision
        self._heartbeat_size: Optional[tuple] = None
        self.service.add_route(GET, "/health", self._health_route)
        self.service.add_route(GET, "/metrics", self._metrics_route)

    @property
    def uri(self) -> str:
        """This proxy's Web-Service base URI."""
        return self.service.base_uri

    @property
    def name(self) -> str:
        return self.host.name

    @abc.abstractmethod
    def descriptor(self) -> Dict:
        """The registration payload sent to the master node."""

    def descriptor_revision(self) -> int:
        """Marker that changes whenever :meth:`descriptor` would.

        The heartbeat uses it to reuse the measured registration-payload
        size between descriptor changes.  Subclasses whose descriptor
        can change after construction must bump the value they return.
        """
        return 0

    def _registration_payload(self, lease: Optional[float]) -> Dict:
        payload = self.descriptor()
        payload["proxy_kind"] = self.proxy_kind
        payload["uri"] = self.uri
        if lease is not None:
            payload["lease"] = lease
        return payload

    def register_with(self, master_uri: Union[str, Sequence[str],
                                              FailoverSet],
                      lease: Optional[float] = None) -> Dict:
        """Register on the master node; returns the master's response body.

        *master_uri* may be one URI, a sequence of URIs, or a shared
        :class:`~repro.network.resilience.FailoverSet` — a replicated
        master set tried in order until one accepts the write (a
        standby's 503, a timeout or an open circuit rotate to the next
        replica; a 4xx refusal is final).  The set is remembered, so
        :meth:`start_heartbeat` keeps renewing against whichever
        replica currently answers.

        With *lease*, the registration is valid for that many simulated
        seconds and must be renewed (see :meth:`start_heartbeat`).
        Raises :class:`RegistrationError` if the master refuses or the
        whole set is unreachable.
        """
        masters = master_uri if isinstance(master_uri, FailoverSet) \
            else FailoverSet(master_uri)
        self._masters = masters
        payload = self._registration_payload(lease)
        key = (self.descriptor_revision(), lease)
        cached = self._heartbeat_size
        if cached is None or cached[0] != key:
            cached = (key, estimate_size(payload))
            self._heartbeat_size = cached
        last_error: Optional[Exception] = None
        for _ in range(len(masters)):
            try:
                response = self._client.post(
                    masters.current + "/register", body=payload,
                    body_size=cached[1],
                )
            except ServiceError as exc:
                if exc.status < 500:
                    raise RegistrationError(
                        f"master rejected registration of {self.name}: "
                        f"{exc}"
                    ) from exc
                last_error = exc
            except (RequestTimeoutError, CircuitOpenError) as exc:
                last_error = exc
            else:
                self.registered = True
                return response.body
            masters.advance()
        raise RegistrationError(
            f"no master accepted registration of {self.name}: {last_error}"
        ) from last_error

    # -- registration heartbeat -------------------------------------------

    def start_heartbeat(self, master_uri: Union[str, Sequence[str],
                                                FailoverSet], period: float,
                        lease: Optional[float] = None,
                        initial_delay: Optional[float] = None) -> None:
        """Renew the registration every *period* simulated seconds.

        *lease* defaults to three periods, so a single lost heartbeat
        does not evict a healthy proxy.  With a master set, a failed
        heartbeat rotates to the next replica, so renewals find the new
        primary within a few periods of a failover.  Idempotent; stop
        with :meth:`stop_heartbeat`.
        """
        if self._heartbeat_task is not None:
            return
        if lease is None:
            lease = 3.0 * period
        if not isinstance(master_uri, FailoverSet):
            master_uri = FailoverSet(master_uri)
        self._masters = master_uri
        self._heartbeat_task = self.host.network.scheduler.every(
            period, self._heartbeat, master_uri, lease,
            initial_delay=initial_delay,
        )

    def stop_heartbeat(self) -> None:
        """Cancel the periodic re-registration."""
        if self._heartbeat_task is not None:
            self._heartbeat_task.stop()
            self._heartbeat_task = None

    def _heartbeat(self, masters: FailoverSet, lease: float) -> None:
        """One asynchronous heartbeat: POST /register, observe outcome."""
        body = self._registration_payload(lease)
        key = (self.descriptor_revision(), lease)
        cached = self._heartbeat_size
        if cached is None or cached[0] != key:
            cached = (key, estimate_size(body))
            self._heartbeat_size = cached
        future = self._client.request(
            masters.current + "/register", POST,
            body=body, body_size=cached[1],
        )
        future.add_done_callback(
            lambda fut: self._on_heartbeat_done(masters, fut)
        )

    def _on_heartbeat_done(self, masters: FailoverSet, future) -> None:
        try:
            response = future.result()
        except Exception:
            self.heartbeats_failed += 1
            self.registered = False
            masters.advance()  # dead master: try the next replica
            return
        if response.ok:
            self.heartbeats_sent += 1
            self.registered = True
        else:
            # a standby/fenced master answers 503: rotate towards the
            # primary so the next renewal lands before the lease expires
            self.heartbeats_failed += 1
            masters.advance()

    # -- health -----------------------------------------------------------

    def health(self) -> Dict:
        """Liveness payload; subclasses may extend it."""
        return {
            "status": "ok",
            "proxy_kind": self.proxy_kind,
            "host": self.name,
            "registered": self.registered,
            "requests_served": self.service.requests_served,
            "requests_failed": self.service.requests_failed,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_failed": self.heartbeats_failed,
        }

    def _health_route(self, request: Request) -> Response:
        return ok(self.health())

    # -- metrics ----------------------------------------------------------

    def metrics(self) -> Dict:
        """Numeric counters for the ``/metrics`` endpoint.

        Subclasses extend this with their own counters; the route pairs
        it with a snapshot of the network-wide
        :class:`~repro.observability.metrics.MetricsRegistry` when one
        is installed.
        """
        return {
            "requests_served": self.service.requests_served,
            "requests_failed": self.service.requests_failed,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_failed": self.heartbeats_failed,
        }

    def _metrics_route(self, request: Request) -> Response:
        registry = self.host.network.metrics
        return ok({
            "component": self.metrics(),
            "registry": registry.snapshot() if registry is not None else {},
        })
