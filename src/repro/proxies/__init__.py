"""Proxies: the paper's interoperability workhorses.

Device-proxies (three layers: dedicated protocol layer, local database,
Web Service + pub/sub) abstract field devices; Database-proxies wrap
each BIM/SIM/GIS export and translate its native encoding into the
common data format behind a Web Service.
"""

from repro.proxies.base import Proxy
from repro.proxies.database_proxy import (
    BimProxy,
    DatabaseProxy,
    GisProxy,
    SimProxy,
)
from repro.proxies.device_proxy import DeviceProxy
from repro.proxies.translators import (
    translate_bim,
    translate_gis_feature,
    translate_sim,
)

__all__ = [
    "BimProxy",
    "DatabaseProxy",
    "DeviceProxy",
    "GisProxy",
    "Proxy",
    "SimProxy",
    "translate_bim",
    "translate_gis_feature",
    "translate_sim",
]
