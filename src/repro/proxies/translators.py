"""Native-to-common-format translators.

"Database-proxies are necessary to translate different databases, each
one encoded differently from the others, to a common data format."

One translator per native family turns a BIM record tree, a SIM table
set or a GIS feature into a CDF :class:`~repro.common.cdf.EntityModel`.
Everything protocol-side (frames -> measurements) is handled by the
protocol adapters; these translators cover the *database* side.
"""

from __future__ import annotations

from typing import Optional

from repro.common.cdf import Component, EntityModel, Relation
from repro.datasources.bim import (
    IFC_SPACE,
    IFC_STOREY,
    BimStore,
)
from repro.datasources.gis import Feature
from repro.datasources.sim import NODE_CONSUMER, SimStore
from repro.errors import TranslationError, UnknownEntityError


def translate_bim(bim: BimStore, entity_id: str) -> EntityModel:
    """Translate a BIM export into a building EntityModel.

    GUID-keyed records with detached property sets become a flat model:
    root properties merged from ``Pset_BuildingCommon``, storeys and
    spaces as typed components, containment as relations.
    """
    try:
        root = bim.root()
    except UnknownEntityError as exc:
        raise TranslationError(f"BIM export has no building: {exc}") from exc
    root_guid = root["GlobalId"]
    root_props = bim.property_sets(root_guid)
    properties = {
        "floor_area_m2": root_props.get("GrossFloorArea"),
        "storeys": root_props.get("NumberOfStoreys"),
        "year_built": root_props.get("YearOfConstruction"),
        "cadastral_id": root_props.get("CadastralReference"),
        "use": root_props.get("OccupancyType"),
    }
    components = []
    relations = []
    for storey in bim.by_type(IFC_STOREY):
        storey_props = bim.property_sets(storey["GlobalId"])
        components.append(Component(
            component_id=storey["GlobalId"],
            component_type="storey",
            name=storey["Name"],
            properties={
                "elevation_m": storey_props.get("Elevation"),
                "area_m2": storey_props.get("GrossArea"),
            },
        ))
        relations.append(Relation("contains", entity_id,
                                  storey["GlobalId"]))
    for space in bim.by_type(IFC_SPACE):
        space_props = bim.property_sets(space["GlobalId"])
        components.append(Component(
            component_id=space["GlobalId"],
            component_type="space",
            name=space_props.get("LongName", space["Name"]),
            properties={"area_m2": space_props.get("NetArea")},
        ))
        if space["parent"] is not None:
            relations.append(Relation("contains", space["parent"],
                                      space["GlobalId"]))
    return EntityModel(
        entity_id=entity_id,
        entity_type="building",
        source_kind="bim",
        name=root["Name"],
        properties=properties,
        components=tuple(components),
        relations=tuple(relations),
    )


def translate_sim(sim: SimStore, entity_id: str) -> EntityModel:
    """Translate a SIM export into a network EntityModel.

    Node and edge tables become components; edges and service points
    become ``feeds``/``serves`` relations.  Service points keep their
    cadastral parcel ids — resolving those to building entities is the
    integrator's job, via the GIS join.
    """
    nodes = sim.nodes()
    if not nodes:
        raise TranslationError(
            f"SIM export {sim.network_name!r} has no nodes"
        )
    components = []
    relations = []
    for node in nodes:
        components.append(Component(
            component_id=node["node_id"],
            component_type=node["kind"],
            name=node["node_id"],
            properties={
                "x": node["x"], "y": node["y"],
                "capacity_kw": node["capacity_kw"],
            },
        ))
    for edge in sim.edges():
        components.append(Component(
            component_id=edge["edge_id"],
            component_type="segment",
            name=edge["edge_id"],
            properties={
                "length_m": edge["length_m"],
                "rating": edge["rating"],
                "loss_coeff": edge["loss_coeff"],
            },
        ))
        relations.append(Relation(
            "feeds", edge["source"], edge["target"],
            {"via": edge["edge_id"]},
        ))
    for consumer, cadastral_id in sorted(sim.service_points().items()):
        relations.append(Relation(
            "serves", consumer, cadastral_id,
            {"key": "cadastral_id"},
        ))
    return EntityModel(
        entity_id=entity_id,
        entity_type="network",
        source_kind="sim",
        name=sim.network_name,
        properties={
            "commodity": sim.commodity,
            "total_length_m": sim.total_length_m(),
            "consumer_count": len(sim.nodes(NODE_CONSUMER)),
        },
        components=tuple(components),
        relations=tuple(relations),
    )


def translate_gis_feature(feature: Feature, entity_id: str,
                          entity_type: Optional[str] = None) -> EntityModel:
    """Translate one GIS feature into an EntityModel with geometry.

    The feature's WKT is parsed and re-emitted as a structured geometry
    payload (type, coordinates, derived centroid/area) so clients never
    touch WKT.
    """
    try:
        geometry = feature.geometry
    except Exception as exc:
        raise TranslationError(
            f"feature {feature.feature_id} has bad geometry: {exc}"
        ) from exc
    if entity_type is None:
        entity_type = "building" if feature.layer == "buildings" \
            else "district"
    centroid = geometry.centroid()
    return EntityModel(
        entity_id=entity_id,
        entity_type=entity_type,
        source_kind="gis",
        name=str(feature.properties.get("address",
                                        feature.properties.get("name", ""))),
        properties={
            key: value for key, value in feature.properties.items()
        },
        geometry={
            "type": geometry.kind.title(),
            "coordinates": [list(p) for p in geometry.points],
            "centroid": list(centroid),
            "area_m2": geometry.area(),
            "bounds": geometry.bounds().to_list(),
        },
    )
