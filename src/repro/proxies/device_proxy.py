"""The Device-proxy: Figure 1(b)'s three-layer gateway.

* **Dedicated layer** (bottom) — a protocol adapter plus the radio
  links of the attached devices; decodes native frames into canonical
  readings, encodes actuation commands back down.
* **Local database** (middle) — a :class:`LocalDatabase` buffering the
  collected samples with a retention horizon.
* **Web Service layer** (top) — REST routes for device discovery, data
  retrieval (JSON/XML) and remote control, plus publication of every
  sample into the middleware (and through it to the global measurement
  database) via publish/subscribe.

Actuation follows real gateway semantics: ``POST /actuate/{device}``
dispatches the command frame and returns 202 immediately; the device's
post-command attribute report confirms execution, upon which the proxy
publishes an :class:`~repro.common.cdf.ActuationResult` on the
``actuation/<device>`` topic.  A silent device (offline, rejected
command, lost frame) causes a timeout result instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.common import serialization
from repro.common.cdf import ActuationResult, Measurement
from repro.common.lineproto import encode_frame
from repro.common.serialization import JSON_FORMAT
from repro.devices.base import SimulatedDevice
from repro.devices.firmware import RadioLink
from repro.errors import (
    ConfigurationError,
    FrameDecodeError,
    QueryError,
    SeriesNotFoundError,
)
from repro.middleware.peer import MiddlewarePeer
from repro.middleware.topics import actuation_topic, join, measurement_topic
from repro.network.transport import Host
from repro.network.webservice import (
    GET,
    POST,
    Request,
    Response,
    error,
    ok,
)
from repro.protocols.base import ProtocolAdapter, RawReading
from repro.proxies.base import Proxy
from repro.storage.localdb import LocalDatabase
from repro.storage.query import RangeQuery


@dataclass
class BatchConfig:
    """Flush thresholds for line-protocol batch publication.

    A proxy with batching enabled accumulates samples into an open
    frame and publishes the frame as ONE pub/sub envelope when either
    bound is hit: *max_samples* samples collected (size flush) or
    *max_age* simulated seconds since the frame's first sample (age
    flush — bounds the extra delivery latency batching introduces).
    """

    max_samples: int = 50
    max_age: float = 5.0

    def __post_init__(self) -> None:
        if self.max_samples < 1:
            raise ConfigurationError("batch max_samples must be >= 1")
        if self.max_age <= 0:
            raise ConfigurationError("batch max_age must be positive")


@dataclass
class _AttachedDevice:
    device: SimulatedDevice
    link: RadioLink


@dataclass
class _PendingActuation:
    device_id: str
    command: str
    issued_at: float
    resolved: bool = False


class DeviceProxy(Proxy):
    """Gateway proxy for one protocol's devices in one entity."""

    proxy_kind = "device"

    def __init__(
        self,
        host: Host,
        adapter: ProtocolAdapter,
        broker_host: Union[str, Sequence[str]],
        district_id: str,
        retention: Optional[float] = 7 * 86400.0,
        actuation_timeout: float = 5.0,
        publish_buffer: Optional[int] = None,
        peer_keepalive: Optional[float] = None,
        batching: Optional[BatchConfig] = None,
    ):
        super().__init__(host)
        self.adapter = adapter
        self.district_id = district_id
        self.database = LocalDatabase(retention=retention)
        self.peer = MiddlewarePeer(host, broker_host,
                                   publish_buffer=publish_buffer,
                                   keepalive=peer_keepalive)
        self.actuation_timeout = actuation_timeout
        self.frames_received = 0
        self.frames_rejected = 0
        self.frames_dropped_offline = 0
        self.measurements_published = 0
        #: cleared when the proxy process is down (fault injection):
        #: a dead gateway also stops listening on the radio side
        self.online = True
        self.batching = batching
        self.batch_frames_published = 0
        self.batch_samples_published = 0
        self.batch_flushes_size = 0
        self.batch_flushes_age = 0
        self.batch_samples_dropped_offline = 0
        self._batch: List[Measurement] = []
        #: bumped on every flush so in-flight age timers for an already
        #: flushed frame become no-ops (schedule() handles can't be
        #: cancelled)
        self._batch_gen = 0
        self._seq: Dict[str, int] = {}  # device -> last published seq
        self._devices: Dict[str, _AttachedDevice] = {}
        self._by_address: Dict[str, str] = {}  # native address -> device id
        #: (revision, serialized device descriptions) — device capability
        #: descriptions are fixed at attach time, so the descriptor's
        #: ``devices`` list only changes when the attached fleet does;
        #: rebuilding it on every heartbeat re-registration was a top
        #: cost in the soak profile
        self._descriptor_cache: Optional[tuple] = None
        self._devices_rev = 0
        self._pending: List[_PendingActuation] = []
        service = self.service
        service.add_route(GET, "/devices", self._devices_route)
        service.add_route(GET, "/data", self._data_route)
        service.add_route(GET, "/latest/{device_id}/{quantity}",
                          self._latest_route)
        service.add_route(POST, "/actuate/{device_id}", self._actuate_route)

    # -- dedicated layer -----------------------------------------------------

    def attach_device(self, device: SimulatedDevice, link: RadioLink
                      ) -> None:
        """Bind a device's radio link into the dedicated layer."""
        if device.protocol != self.adapter.name:
            raise ConfigurationError(
                f"device {device.device_id} speaks {device.protocol}, "
                f"proxy speaks {self.adapter.name}"
            )
        if device.device_id in self._devices:
            raise ConfigurationError(
                f"device {device.device_id} already attached"
            )
        if device.address in self._by_address:
            raise ConfigurationError(
                f"address {device.address!r} already attached"
            )
        self._devices[device.device_id] = _AttachedDevice(device, link)
        self._by_address[device.address] = device.device_id
        self._devices_rev += 1
        link.attach_gateway(self._on_frame)

    def devices(self) -> List[SimulatedDevice]:
        """Attached devices, sorted by id."""
        return [self._devices[d].device for d in sorted(self._devices)]

    def _on_frame(self, frame: bytes) -> None:
        if not self.online:
            self.frames_dropped_offline += 1
            return
        now = self.host.network.scheduler.now
        try:
            readings = self.adapter.decode_frame(frame, received_at=now)
        except FrameDecodeError:
            self.frames_rejected += 1
            return
        self.frames_received += 1
        for reading in readings:
            self._ingest(reading)

    def _ingest(self, reading: RawReading) -> None:
        device_id = self._by_address.get(reading.device_address)
        if device_id is None:
            self.frames_rejected += 1
            return
        # per-device publication sequence number: together with
        # (device_id, timestamp) it keys the measurement DB's idempotent
        # ingest, so broker redeliveries and offline-buffer re-flushes of
        # the same sample never double-count while two genuinely distinct
        # samples with equal timestamps stay distinct
        seq = self._seq.get(device_id, 0) + 1
        self._seq[device_id] = seq
        device = self._devices[device_id].device
        measurement = Measurement(
            device_id=device_id,
            entity_id=device.entity_id,
            quantity=reading.quantity,
            value=reading.value,
            timestamp=reading.timestamp,
            source=self.name,
            metadata={"protocol": self.adapter.name, "seq": seq},
        )
        self.database.insert(measurement)           # middle layer
        self._publish(measurement)                  # top layer, pub/sub
        self._confirm_pending(device_id, measurement)

    def _publish(self, measurement: Measurement) -> None:
        if self.batching is not None:
            self._batch_sample(measurement)
            return
        topic = measurement_topic(
            self.district_id, measurement.entity_id,
            measurement.device_id, measurement.quantity,
        )
        # retained, so late-joining monitors immediately see last values
        self.peer.publish(topic, measurement.to_dict(), retain=True)
        self.measurements_published += 1

    # -- batched publication ---------------------------------------------------

    @property
    def batch_topic(self) -> str:
        """Topic carrying this proxy's batch frames.

        Lives under ``district/<id>/...`` so the measurement database's
        existing district-wide subscription filter matches it without
        any broker changes.
        """
        return join("district", self.district_id, "batch", self.name)

    def _batch_sample(self, measurement: Measurement) -> None:
        self._batch.append(measurement)
        if len(self._batch) == 1:
            # first sample opens the frame: arm the age bound
            self.host.network.scheduler.schedule(
                self.batching.max_age, self._age_flush, self._batch_gen
            )
        if len(self._batch) >= self.batching.max_samples:
            self.batch_flushes_size += 1
            self.flush_batch()

    def _age_flush(self, generation: int) -> None:
        if generation != self._batch_gen or not self._batch:
            return  # frame already flushed by the size bound
        self.batch_flushes_age += 1
        self.flush_batch()

    def flush_batch(self) -> None:
        """Publish the open frame (if any) as one batch envelope.

        Batch frames are NOT retained: retained last-value semantics
        apply to per-sample topics only (see docs/storage.md).  A proxy
        taken offline drops its open frame — the samples were never
        acknowledged downstream, so this is ordinary sensor loss, not
        acked-data loss.
        """
        batch, self._batch = self._batch, []
        self._batch_gen += 1
        if not batch:
            return
        if not self.online:
            self.batch_samples_dropped_offline += len(batch)
            return
        frame = encode_frame(batch, tracer=self.host.network.tracer,
                             host=self.name)
        self.peer.publish(self.batch_topic, frame)
        self.batch_frames_published += 1
        self.batch_samples_published += len(batch)
        self.measurements_published += len(batch)

    # -- actuation ------------------------------------------------------------

    def actuate(self, device_id: str, command: str,
                value: Optional[float]) -> None:
        """Dispatch a command frame to an attached device."""
        attached = self._devices.get(device_id)
        if attached is None:
            raise QueryError(f"no device {device_id!r} on this proxy")
        frame = self.adapter.encode_command(
            attached.device.address, command, value
        )
        now = self.host.network.scheduler.now
        pending = _PendingActuation(device_id, command, now)
        self._pending.append(pending)
        self.host.network.scheduler.schedule(
            self.actuation_timeout, self._expire_actuation, pending
        )
        attached.link.downlink(frame)

    def _confirm_pending(self, device_id: str, measurement: Measurement
                         ) -> None:
        for pending in self._pending:
            if pending.resolved or pending.device_id != device_id:
                continue
            pending.resolved = True
            result = ActuationResult(
                device_id=device_id,
                command=pending.command,
                accepted=True,
                detail=f"confirmed by {measurement.quantity} report",
                completed_at=self.host.network.scheduler.now,
            )
            self.peer.publish(actuation_topic(device_id), result.to_dict())
        self._pending = [p for p in self._pending if not p.resolved]

    def _expire_actuation(self, pending: _PendingActuation) -> None:
        if pending.resolved:
            return
        pending.resolved = True
        self._pending = [p for p in self._pending if p is not pending]
        result = ActuationResult(
            device_id=pending.device_id,
            command=pending.command,
            accepted=False,
            detail="timeout: no post-command report",
            completed_at=self.host.network.scheduler.now,
        )
        self.peer.publish(actuation_topic(pending.device_id),
                          result.to_dict())

    # -- registration ------------------------------------------------------------

    def health(self) -> Dict:
        info = super().health()
        info.update({
            "online": self.online,
            "devices": len(self._devices),
            "measurements_published": self.measurements_published,
            "buffered_publications": self.peer.buffered,
            "broker_suspect": self.peer.broker_suspect,
        })
        return info

    def metrics(self) -> Dict:
        info = super().metrics()
        info.update({
            "frames_received": self.frames_received,
            "frames_rejected": self.frames_rejected,
            "frames_dropped_offline": self.frames_dropped_offline,
            "measurements_published": self.measurements_published,
            "batch_frames_published": self.batch_frames_published,
            "batch_samples_published": self.batch_samples_published,
            "batch_flushes_size": self.batch_flushes_size,
            "batch_flushes_age": self.batch_flushes_age,
            "batch_samples_dropped_offline":
                self.batch_samples_dropped_offline,
            "batch_open_samples": len(self._batch),
            "publications_buffered": self.peer.publications_buffered,
            "publications_dropped": self.peer.publications_dropped,
            "publications_flushed": self.peer.publications_flushed,
            "publications_rejected": self.peer.publications_rejected,
            "publications_dropped_by_topic":
                dict(self.peer.dropped_by_topic),
        })
        return info

    def descriptor_revision(self) -> int:
        return self._devices_rev

    def descriptor(self) -> Dict:
        cached = self._descriptor_cache
        if cached is None or cached[0] != self._devices_rev:
            cached = (self._devices_rev, [
                device.description().to_dict() for device in self.devices()
            ])
            self._descriptor_cache = cached
        # fresh outer dict every call (callers add registration keys to
        # it); the devices list is shared, which also lets the master's
        # registration cache compare it by identity
        return {
            "district_id": self.district_id,
            "protocol": self.adapter.name,
            "devices": cached[1],
        }

    # -- web-service routes ------------------------------------------------------

    def _devices_route(self, request: Request) -> Response:
        fmt = request.params.get("format", JSON_FORMAT)
        if fmt not in serialization.FORMATS:
            return error(400, f"unknown format {fmt!r}")
        document = serialization.encode(
            [device.description() for device in self.devices()], fmt
        )
        return ok({"format": fmt, "document": document})

    def _data_route(self, request: Request) -> Response:
        try:
            query = RangeQuery.from_params(request.params)
            samples = self.database.query(query)
        except QueryError as exc:
            return error(400, str(exc))
        except SeriesNotFoundError as exc:
            return error(404, str(exc))
        return ok({"samples": [[t, v] for t, v in samples]})

    def _latest_route(self, request: Request) -> Response:
        device_id = request.path_params["device_id"]
        quantity = request.path_params["quantity"]
        try:
            timestamp, value = self.database.latest(device_id, quantity)
        except SeriesNotFoundError as exc:
            return error(404, str(exc))
        return ok({"device_id": device_id, "quantity": quantity,
                   "timestamp": timestamp, "value": value})

    def _actuate_route(self, request: Request) -> Response:
        device_id = request.path_params["device_id"]
        body = request.body or {}
        command = body.get("command")
        if not command:
            return error(400, "actuation needs a command")
        value = body.get("value")
        try:
            self.actuate(device_id, command,
                         None if value is None else float(value))
        except QueryError as exc:
            return error(404, str(exc))
        except Exception as exc:
            return error(400, f"cannot encode command: {exc}")
        return Response(202, {
            "status": "dispatched",
            "device_id": device_id,
            "command": command,
            "result_topic": actuation_topic(device_id),
        })
