"""Database-proxies for BIM, SIM and GIS sources.

"Each proxy offers a Web Service interface which allows data retrieval
and translation from its database to an open standard, such as JSON or
XML."  All model routes therefore accept ``?format=json|xml`` and return
the encoded CDF document; translation counters feed the C5 benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common import serialization
from repro.common.serialization import JSON_FORMAT
from repro.datasources.bim import BimStore
from repro.datasources.geometry import BoundingBox
from repro.datasources.gis import LAYER_BUILDINGS, GisStore
from repro.datasources.sim import SimStore
from repro.errors import (
    QueryError,
    TranslationError,
    UnknownEntityError,
)
from repro.network.transport import Host
from repro.network.webservice import GET, Request, Response, error, ok
from repro.proxies.base import Proxy
from repro.proxies.translators import (
    translate_bim,
    translate_gis_feature,
    translate_sim,
)


def _format_of(request: Request) -> str:
    fmt = request.params.get("format", JSON_FORMAT)
    if fmt not in serialization.FORMATS:
        raise QueryError(f"unknown format {fmt!r}")
    return fmt


class DatabaseProxy(Proxy):
    """Common machinery of the three database-proxy families."""

    proxy_kind = "database"
    source_kind = ""  # bim | sim | gis; set by subclasses

    def __init__(self, host: Host, processing_delay: float = 2e-4):
        super().__init__(host, processing_delay)
        self.translations = 0

    def _encode_model(self, model, fmt: str) -> str:
        self.translations += 1
        return serialization.encode(model, fmt)


class BimProxy(DatabaseProxy):
    """Proxy wrapping one building's BIM database."""

    source_kind = "bim"

    def __init__(self, host: Host, store: BimStore, entity_id: str,
                 district_id: str, name: str = "",
                 gis_feature_id: str = "",
                 bounds: Optional[BoundingBox] = None):
        super().__init__(host)
        self.store = store
        self.entity_id = entity_id
        self.district_id = district_id
        self.entity_name = name or store.project_name
        # deployment configuration: this building's mapping into the GIS
        self.gis_feature_id = gis_feature_id
        self.bounds = bounds
        self.service.add_route(GET, "/model", self._model_route)
        self.service.add_route(GET, "/spaces", self._spaces_route)
        self.service.add_route(GET, "/record/{guid}", self._record_route)

    def translate(self):
        """The building's CDF model (used in-process by tests/benches)."""
        return translate_bim(self.store, self.entity_id)

    def descriptor(self) -> Dict:
        descriptor = {
            "source_kind": self.source_kind,
            "district_id": self.district_id,
            "entity_id": self.entity_id,
            "entity_type": "building",
            "name": self.entity_name,
        }
        if self.gis_feature_id:
            descriptor["gis_feature_id"] = self.gis_feature_id
        if self.bounds is not None:
            descriptor["bounds"] = self.bounds.to_list()
        return descriptor

    def _model_route(self, request: Request) -> Response:
        try:
            fmt = _format_of(request)
            encoded = self._encode_model(self.translate(), fmt)
        except (QueryError, TranslationError) as exc:
            return error(400, str(exc))
        return ok({"format": fmt, "document": encoded})

    def _spaces_route(self, request: Request) -> Response:
        spaces = [
            {
                "guid": record["GlobalId"],
                "name": record["Name"],
                "properties": self.store.property_sets(record["GlobalId"]),
            }
            for record in self.store.spaces()
        ]
        return ok({"spaces": spaces})

    def _record_route(self, request: Request) -> Response:
        guid = request.path_params["guid"]
        try:
            record = self.store.record(guid)
        except UnknownEntityError as exc:
            return error(404, str(exc))
        body = dict(record)
        body["properties"] = self.store.property_sets(guid)
        return ok(body)


class SimProxy(DatabaseProxy):
    """Proxy wrapping one distribution network's SIM database."""

    source_kind = "sim"

    def __init__(self, host: Host, store: SimStore, entity_id: str,
                 district_id: str, gis_feature_id: str = "",
                 bounds: Optional[BoundingBox] = None):
        super().__init__(host)
        self.store = store
        self.entity_id = entity_id
        self.district_id = district_id
        self.gis_feature_id = gis_feature_id
        self.bounds = bounds
        self.service.add_route(GET, "/model", self._model_route)
        self.service.add_route(GET, "/service-points",
                               self._service_points_route)
        self.service.add_route(GET, "/path/{node_id}", self._path_route)

    def translate(self):
        return translate_sim(self.store, self.entity_id)

    def descriptor(self) -> Dict:
        descriptor = {
            "source_kind": self.source_kind,
            "district_id": self.district_id,
            "entity_id": self.entity_id,
            "entity_type": "network",
            "name": self.store.network_name,
            "commodity": self.store.commodity,
        }
        if self.gis_feature_id:
            descriptor["gis_feature_id"] = self.gis_feature_id
        if self.bounds is not None:
            descriptor["bounds"] = self.bounds.to_list()
        return descriptor

    def _model_route(self, request: Request) -> Response:
        try:
            fmt = _format_of(request)
            encoded = self._encode_model(self.translate(), fmt)
        except (QueryError, TranslationError) as exc:
            return error(400, str(exc))
        return ok({"format": fmt, "document": encoded})

    def _service_points_route(self, request: Request) -> Response:
        return ok({"service_points": self.store.service_points()})

    def _path_route(self, request: Request) -> Response:
        node_id = request.path_params["node_id"]
        try:
            path = self.store.path_to_plant(node_id)
        except UnknownEntityError as exc:
            return error(404, str(exc))
        return ok({"path": path})


class GisProxy(DatabaseProxy):
    """Proxy wrapping a district's GIS database."""

    source_kind = "gis"

    def __init__(self, host: Host, store: GisStore, district_id: str):
        super().__init__(host)
        self.store = store
        self.district_id = district_id
        self.service.add_route(GET, "/features", self._features_route)
        self.service.add_route(GET, "/feature/{feature_id}",
                               self._feature_route)
        self.service.add_route(GET, "/locate", self._locate_route)

    def translate_feature(self, feature_id: str, entity_id: str,
                          entity_type: Optional[str] = None):
        return translate_gis_feature(
            self.store.feature(feature_id), entity_id, entity_type
        )

    def descriptor(self) -> Dict:
        return {
            "source_kind": self.source_kind,
            "district_id": self.district_id,
            "name": self.store.district_name,
        }

    def _features_route(self, request: Request) -> Response:
        layer = request.params.get("layer") or None
        bbox_raw = request.params.get("bbox")
        try:
            if bbox_raw:
                bbox = BoundingBox.from_list(
                    [float(v) for v in bbox_raw.split(",")]
                )
                features = self.store.query_bbox(bbox, layer)
            elif layer:
                features = self.store.layer(layer)
            else:
                features = self.store.features()
        except (ValueError, QueryError) as exc:
            return error(400, f"bad features query: {exc}")
        except Exception as exc:  # unknown layer
            return error(400, str(exc))
        return ok({
            "features": [
                {
                    "feature_id": f.feature_id,
                    "layer": f.layer,
                    "wkt": f.wkt,
                    "properties": f.properties,
                }
                for f in features
            ]
        })

    def _feature_route(self, request: Request) -> Response:
        feature_id = request.path_params["feature_id"]
        try:
            fmt = _format_of(request)
            feature = self.store.feature(feature_id)
        except UnknownEntityError as exc:
            return error(404, str(exc))
        except QueryError as exc:
            return error(400, str(exc))
        entity_id = request.params.get("entity_id", "bld-0000")
        try:
            model = translate_gis_feature(feature, entity_id)
            encoded = self._encode_model(model, fmt)
        except TranslationError as exc:
            return error(500, str(exc))
        return ok({"format": fmt, "document": encoded})

    def _locate_route(self, request: Request) -> Response:
        try:
            x = float(request.params["x"])
            y = float(request.params["y"])
        except (KeyError, ValueError):
            return error(400, "locate needs numeric x and y")
        hits = self.store.query_point(x, y, LAYER_BUILDINGS)
        return ok({
            "features": [
                {"feature_id": f.feature_id,
                 "cadastral_id": f.properties.get("cadastral_id")}
                for f in hits
            ]
        })
