"""Minimal future/promise used by the simulated request/response layers."""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import ConfigurationError


class Future:
    """Holds the eventual result of an asynchronous simulated operation."""

    def __init__(self) -> None:
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        """True once a result or exception has been set."""
        return self._done

    def set_result(self, result: Any) -> None:
        """Resolve the future with *result*; resolving twice is an error."""
        if self._done:
            raise ConfigurationError("future already resolved")
        self._done = True
        self._result = result
        self._dispatch()

    def set_exception(self, exc: BaseException) -> None:
        """Resolve the future with an exception to be re-raised by result()."""
        if self._done:
            raise ConfigurationError("future already resolved")
        self._done = True
        self._exception = exc
        self._dispatch()

    def result(self) -> Any:
        """Return the result, re-raising a stored exception.

        Unlike thread futures this never blocks: calling it on an
        unresolved future is a programming error in a discrete-event
        world, so it raises immediately.
        """
        if not self._done:
            raise ConfigurationError("future not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._result

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Invoke *callback(self)* when resolved (immediately if done)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
