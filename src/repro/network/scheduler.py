"""Discrete-event scheduler driving all simulated activity.

Every asynchronous thing in the framework — network message delivery,
device sampling, periodic publication, query workloads — is an event on
one shared :class:`Scheduler`.  Events execute in (time, insertion)
order, so runs are fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.common.simtime import SimClock
from repro.errors import ConfigurationError


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable = field(compare=False)
    args: Tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle allowing a scheduled event to be cancelled."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Simulated time at which the event is due."""
        return self._event.time


class PeriodicTask:
    """A repeating event; cancel it via :meth:`stop`."""

    def __init__(self, scheduler: "Scheduler", period: float,
                 callback: Callable, args: Tuple):
        if period <= 0:
            raise ConfigurationError("periodic task period must be positive")
        self._scheduler = scheduler
        self._period = period
        self._callback = callback
        self._args = args
        self._stopped = False
        self._handle: Optional[EventHandle] = None

    def start(self, initial_delay: float = 0.0) -> "PeriodicTask":
        """Arm the task; first firing after *initial_delay* seconds."""
        self._handle = self._scheduler.schedule(
            initial_delay, self._fire
        )
        return self

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback(*self._args)
        if not self._stopped:
            self._handle = self._scheduler.schedule(self._period, self._fire)

    def stop(self) -> None:
        """Stop future firings; an in-flight firing still completes."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped


class Scheduler:
    """Priority-queue discrete-event scheduler over a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._queue: List[_Event] = []
        self._counter = itertools.count()
        self._events_processed = 0
        #: hot-loop profiler attachment point (None = disabled, the
        #: default): a repro.observability.profiler.SimProfiler set by
        #: install_profiler().  step() pays one attribute load + None
        #: check when off — the entire disabled-mode cost.
        self.profiler = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable, *args: Any
                 ) -> EventHandle:
        """Schedule *callback(*args)* after *delay* simulated seconds."""
        if delay < 0:
            raise ConfigurationError(f"cannot schedule in the past ({delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any
                    ) -> EventHandle:
        """Schedule *callback(*args)* at absolute simulated time *time*."""
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule in the past ({time} < {self.now})"
            )
        event = _Event(time, next(self._counter), callback, args)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def every(self, period: float, callback: Callable, *args: Any,
              initial_delay: Optional[float] = None) -> PeriodicTask:
        """Create and start a periodic task firing every *period* seconds."""
        task = PeriodicTask(self, period, callback, args)
        first = period if initial_delay is None else initial_delay
        return task.start(first)

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if queue empty."""
        profiler = self.profiler
        if profiler is not None and profiler.enabled:
            return self._step_profiled(profiler)
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def _step_profiled(self, profiler) -> bool:
        """The profiled twin of :meth:`step`.

        Identical event semantics; additionally opens one profiler frame
        per dispatched event and accounts the whole iteration — heap
        pops and cancelled-event skips included — into the profiler's
        ``loop_wall``, so unattributed loop overhead is visible.  Nested
        ``step`` calls (a synchronous client driving the scheduler from
        inside a handler) are inside an open frame and charge the outer
        event, not ``loop_wall``, to keep attribution double-count free.
        """
        top_level = not profiler.in_frame
        t0 = profiler._time()
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            previous = self.clock.now
            self.clock.advance_to(event.time)
            self._events_processed += 1
            frame = profiler.enter_event(event.callback,
                                         event.time - previous, start=t0)
            try:
                event.callback(*event.args)
            finally:
                profiler.exit(frame)
                if top_level:
                    profiler.loop_wall += profiler._time() - t0
            return True
        if top_level:
            profiler.loop_wall += profiler._time() - t0
        return False

    def run_until(self, time: float) -> None:
        """Run all events due at or before *time*, then advance to it."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            self.step()
        if time > self.clock.now:
            self.clock.advance_to(time)

    def run_for(self, duration: float) -> None:
        """Run the simulation forward by *duration* seconds."""
        self.run_until(self.now + duration)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the queue; returns the number of events executed.

        Guards against runaway periodic tasks via *max_events*.
        """
        executed = 0
        while executed < max_events and self.step():
            executed += 1
        if executed >= max_events:
            raise ConfigurationError(
                "run_until_idle exceeded max_events; "
                "is a periodic task still running?"
            )
        return executed
