"""Discrete-event scheduler driving all simulated activity.

Every asynchronous thing in the framework — network message delivery,
device sampling, periodic publication, query workloads — is an event on
one shared :class:`Scheduler`.  Events execute in (time, insertion)
order, so runs are fully deterministic for a fixed seed.

Hot-loop design (the PR 10 fast path):

* Heap entries are plain ``(time, seq, event)`` tuples, so ``heapq``
  orders them with C tuple comparison — the dataclass-generated Python
  ``__lt__`` the seed paid per sift step is gone.  ``seq`` is unique,
  so the comparison never reaches the :class:`_Event` payload.
* :class:`_Event` is a ``__slots__`` record (callback, args, two flag
  bits) — cheap to allocate, no per-instance ``__dict__``.
* Cancelled events are *tombstones*: :meth:`EventHandle.cancel` only
  flags them, but the scheduler counts live tombstones and compacts the
  heap (filter + ``heapify``) when they exceed both
  :attr:`Scheduler.compact_threshold` and half the queue — so the
  re-arm/cancel patterns upstack (broker delivery-ack timers,
  device-proxy batch age timers) can no longer grow the heap without
  bound, and :attr:`Scheduler.pending` reports **live** events only.
* :meth:`run_until` pops due events inline instead of peeking and then
  re-popping through :meth:`step` — one heap operation per event.

``Scheduler(reference=True)`` keeps the seed's unfused peek-then-step
loop and disables compaction (semantics are identical either way); the
determinism twin test runs the same workload on both paths and asserts
byte-identical behaviour.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.common.simtime import SimClock
from repro.errors import ConfigurationError


class _Event:
    """One scheduled callback; ordering lives in the heap tuple.

    The event *is* its own cancellation handle (``EventHandle`` is an
    alias) — one allocation per schedule, not two.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "queued",
                 "scheduler")

    def __init__(self, time: float, callback: Callable, args: Tuple,
                 scheduler: "Scheduler"):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: still sitting in the heap (popped events are not tombstones)
        self.queued = True
        self.scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        if not self.cancelled:
            self.cancelled = True
            if self.queued:
                self.scheduler._note_tombstone()


#: public name for the cancellation handle :meth:`Scheduler.schedule`
#: returns
EventHandle = _Event


class PeriodicTask:
    """A repeating event; cancel it via :meth:`stop`.

    A callback that raises no longer kills the task silently: the
    error is counted (:attr:`errors`, and
    :attr:`Scheduler.periodic_task_errors` fleet-wide), reported
    through :attr:`Scheduler.on_periodic_error` (the network layer
    forwards it as a ``periodic_task_error`` trace event) and the task
    re-arms in a ``finally`` — one bad sample cannot permanently stop
    heartbeats, compaction sweeps or metric scrapes.
    """

    def __init__(self, scheduler: "Scheduler", period: float,
                 callback: Callable, args: Tuple):
        if period <= 0:
            raise ConfigurationError("periodic task period must be positive")
        self._scheduler = scheduler
        self._period = period
        self._callback = callback
        self._args = args
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        #: callback exceptions absorbed by this task
        self.errors = 0

    def start(self, initial_delay: float = 0.0) -> "PeriodicTask":
        """Arm the task; first firing after *initial_delay* seconds."""
        self._handle = self._scheduler.schedule(
            initial_delay, self._fire
        )
        return self

    def _fire(self) -> None:
        if self._stopped:
            return
        scheduler = self._scheduler
        try:
            self._callback(*self._args)
        except Exception as exc:
            self.errors += 1
            scheduler.periodic_task_errors += 1
            hook = scheduler.on_periodic_error
            if hook is not None:
                hook(self, exc)
        finally:
            if not self._stopped:
                self._handle = scheduler.schedule(self._period, self._fire)

    def stop(self) -> None:
        """Stop future firings; an in-flight firing still completes."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped


class Scheduler:
    """Priority-queue discrete-event scheduler over a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None,
                 reference: bool = False):
        self.clock = clock if clock is not None else SimClock()
        #: heap of (time, seq, _Event) — tuple comparison never reaches
        #: the event because seq is unique
        self._queue: List[Tuple[float, int, _Event]] = []
        self._counter = itertools.count()
        self._events_processed = 0
        #: cancelled events still occupying heap slots
        self._tombstones = 0
        #: tombstones tolerated before a compaction is considered
        self.compact_threshold = 512
        #: heap rebuilds performed to evict tombstones
        self.compactions = 0
        #: periodic-task callback exceptions absorbed fleet-wide
        self.periodic_task_errors = 0
        #: optional ``f(task, exc)`` hook fired on each absorbed periodic
        #: error; the Network wires it to a ``periodic_task_error``
        #: trace event
        self.on_periodic_error: Optional[Callable] = None
        #: run the seed's unfused dispatch loop without compaction (the
        #: determinism-twin comparison path; semantics are identical)
        self.reference = reference
        #: hot-loop profiler attachment point (None = disabled, the
        #: default): a repro.observability.profiler.SimProfiler set by
        #: install_profiler().  step() pays one attribute load + None
        #: check when off — the entire disabled-mode cost.
        self.profiler = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of **live** events still queued.

        Cancelled-but-unfired tombstones are excluded — the seed
        overcounted them until their due time.
        """
        return len(self._queue) - self._tombstones

    def schedule(self, delay: float, callback: Callable, *args: Any
                 ) -> EventHandle:
        """Schedule *callback(*args)* after *delay* simulated seconds."""
        if delay < 0:
            raise ConfigurationError(f"cannot schedule in the past ({delay})")
        time = self.clock._now + delay
        event = _Event(time, callback, args, self)
        heapq.heappush(self._queue, (time, next(self._counter), event))
        return event

    def schedule_at(self, time: float, callback: Callable, *args: Any
                    ) -> EventHandle:
        """Schedule *callback(*args)* at absolute simulated time *time*."""
        if time < self.clock._now:
            raise ConfigurationError(
                f"cannot schedule in the past ({time} < {self.clock._now})"
            )
        event = _Event(time, callback, args, self)
        heapq.heappush(self._queue, (time, next(self._counter), event))
        return event

    def every(self, period: float, callback: Callable, *args: Any,
              initial_delay: Optional[float] = None) -> PeriodicTask:
        """Create and start a periodic task firing every *period* seconds."""
        task = PeriodicTask(self, period, callback, args)
        first = period if initial_delay is None else initial_delay
        return task.start(first)

    # -- tombstone compaction ----------------------------------------------

    def _note_tombstone(self) -> None:
        """Account one cancelled-in-queue event; compact past threshold."""
        self._tombstones += 1
        if (not self.reference
                and self._tombstones > self.compact_threshold
                and self._tombstones * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (O(live) heapify).

        In place — the dispatch loops hold a local alias to the queue
        list across callbacks, so the list object must stay the same.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        self._tombstones = 0
        self.compactions += 1

    # -- dispatch ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if queue empty."""
        profiler = self.profiler
        if profiler is not None and profiler.enabled:
            return self._step_profiled(profiler)
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time, _seq, event = pop(queue)
            if event.cancelled:
                self._tombstones -= 1
                continue
            event.queued = False
            self.clock.advance_to(time)
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def _step_profiled(self, profiler) -> bool:
        """The profiled twin of :meth:`step`.

        Identical event semantics; additionally opens one profiler frame
        per dispatched event and accounts the whole iteration — heap
        pops and cancelled-event skips included — into the profiler's
        ``loop_wall``, so unattributed loop overhead is visible.  Nested
        ``step`` calls (a synchronous client driving the scheduler from
        inside a handler) are inside an open frame and charge the outer
        event, not ``loop_wall``, to keep attribution double-count free.
        """
        top_level = not profiler.in_frame
        t0 = profiler._time()
        queue = self._queue
        while queue:
            time, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                self._tombstones -= 1
                continue
            event.queued = False
            previous = self.clock._now
            self.clock.advance_to(time)
            self._events_processed += 1
            frame = profiler.enter_event(event.callback,
                                         time - previous, start=t0)
            try:
                event.callback(*event.args)
            finally:
                profiler.exit(frame)
                if top_level:
                    profiler.loop_wall += profiler._time() - t0
            return True
        if top_level:
            profiler.loop_wall += profiler._time() - t0
        return False

    def run_until(self, time: float) -> None:
        """Run all events due at or before *time*, then advance to it."""
        queue = self._queue
        profiler = self.profiler
        if self.reference or (profiler is not None and profiler.enabled):
            # unfused peek-then-step loop (seed shape; also keeps the
            # profiled path's per-step loop_wall accounting intact)
            while queue:
                head = queue[0]
                if head[2].cancelled:
                    heapq.heappop(queue)
                    self._tombstones -= 1
                    continue
                if head[0] > time:
                    break
                self.step()
        else:
            clock = self.clock
            pop = heapq.heappop
            while queue:
                head = queue[0]
                event = head[2]
                if event.cancelled:
                    pop(queue)
                    self._tombstones -= 1
                    continue
                due = head[0]
                if due > time:
                    break
                pop(queue)
                event.queued = False
                clock.advance_to(due)
                self._events_processed += 1
                event.callback(*event.args)
        if time > self.clock._now:
            self.clock.advance_to(time)

    def run_for(self, duration: float) -> None:
        """Run the simulation forward by *duration* seconds."""
        self.run_until(self.clock._now + duration)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the queue; returns the number of events executed.

        Guards against runaway periodic tasks via *max_events*.
        """
        executed = 0
        profiler = self.profiler
        if self.reference or (profiler is not None and profiler.enabled):
            while executed < max_events and self.step():
                executed += 1
        else:
            queue = self._queue
            clock = self.clock
            pop = heapq.heappop
            while queue and executed < max_events:
                _time, _seq, event = pop(queue)
                if event.cancelled:
                    self._tombstones -= 1
                    continue
                event.queued = False
                clock.advance_to(_time)
                self._events_processed += 1
                event.callback(*event.args)
                executed += 1
        if executed >= max_events:
            raise ConfigurationError(
                "run_until_idle exceeded max_events; "
                "is a periodic task still running?"
            )
        return executed
