"""Discrete-event network substrate: scheduler, transport, web services.

The simulated equivalent of the paper's IP network and HTTP services.
All latency, loss and service-time behaviour is modelled here so the
benchmarks measure architecture (redirect vs relay, distributed vs
central) rather than Python overheads.
"""

from repro.network.futures import Future
from repro.network.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
    default_policy,
)
from repro.network.scheduler import EventHandle, PeriodicTask, Scheduler
from repro.network.transport import (
    Host,
    LatencyModel,
    Message,
    Network,
    NetworkStats,
    estimate_size,
)
from repro.network.webservice import (
    GET,
    POST,
    HttpClient,
    Request,
    Response,
    Router,
    WebService,
    error,
    ok,
)

__all__ = [
    "CircuitBreaker",
    "EventHandle",
    "Future",
    "GET",
    "Host",
    "HttpClient",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkStats",
    "POST",
    "PeriodicTask",
    "Request",
    "ResiliencePolicy",
    "Response",
    "RetryPolicy",
    "Router",
    "Scheduler",
    "WebService",
    "default_policy",
    "error",
    "estimate_size",
    "ok",
]
