"""Simulated REST-style Web Services over the transport layer.

Every architectural box in the paper exposes a Web Service: the master
node, each Device-proxy and each Database-proxy.  :class:`WebService`
implements a small REST router (path templates with ``{param}``
placeholders) bound to a simulated host; :class:`HttpClient` issues
requests with timeouts and returns futures.

Requests and responses travel as transport messages, so they pay
realistic network latency, can be dropped by failure injection, and the
client's timeout converts a lost message into
:class:`~repro.errors.RequestTimeoutError` — exactly what a real HTTP
client would observe.
"""

from __future__ import annotations

import itertools
import re
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.common.identifiers import ServiceUri
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    RequestTimeoutError,
    ServiceError,
)
from repro.network.futures import Future
from repro.network.resilience import ResiliencePolicy
from repro.network.transport import Host, Message, presized_estimate
from repro.observability.tracing import CLIENT, SERVER, TraceContext, emit

_SERVER_PORT = "http"
_PARAM_RE = re.compile(r"\{([A-Za-z_][A-Za-z0-9_]*)\}")

GET = "GET"
POST = "POST"
METHODS = (GET, POST)


@dataclass(frozen=True)
class Request:
    """An in-flight web-service request."""

    method: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    body: Any = None
    path_params: Dict[str, str] = field(default_factory=dict)
    sender: str = ""
    #: the caller's propagated trace context (None when untraced)
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class Response:
    """A web-service response; ``body`` is a JSON-able payload."""

    status: int
    body: Any = None
    reason: str = ""
    #: optional pre-measured estimate_size of ``body`` — handlers that
    #: answer with a structurally constant body (heartbeat renewals)
    #: set it so the reply send skips re-measuring the payload
    body_size: Optional[int] = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def ok(body: Any = None) -> Response:
    """Build a 200 response."""
    return Response(200, body)


def error(status: int, reason: str) -> Response:
    """Build an error response with a reason string."""
    return Response(status, None, reason)


RouteHandler = Callable[[Request], Response]


class _Route:
    def __init__(self, method: str, template: str, handler: RouteHandler):
        if method not in METHODS:
            raise ConfigurationError(f"unsupported method {method!r}")
        self.method = method
        self.template = template
        self.handler = handler
        pattern = _PARAM_RE.sub(r"(?P<\1>[^/]+)", template)
        self._regex = re.compile(f"^{pattern}$")

    def match(self, method: str, path: str) -> Optional[Dict[str, str]]:
        if method != self.method:
            return None
        match = self._regex.match(path)
        return match.groupdict() if match else None


class Router:
    """Dispatches (method, path) to handlers with path parameters.

    Parameter-free routes land in an exact ``(method, path)`` dispatch
    table consulted first — one dict lookup instead of a regex scan —
    with the template scan as fallback for parameterised paths.  First
    registration still wins: a literal route whose path is already
    matched by an earlier-registered template stays off the exact table
    so the scan order decides, exactly as the seed router did.
    """

    def __init__(self) -> None:
        self._routes: List[_Route] = []
        self._exact: Dict[tuple, _Route] = {}

    def add(self, method: str, template: str, handler: RouteHandler) -> None:
        """Register *handler* for *method* on *template* (e.g. ``/d/{id}``)."""
        route = _Route(method, template, handler)
        if not _PARAM_RE.search(template):
            shadowed = any(
                earlier.match(method, template) is not None
                for earlier in self._routes
            )
            if not shadowed:
                self._exact[(method, sys.intern(template))] = route
        self._routes.append(route)

    def dispatch(self, request: Request, profiler=None, node: str = ""
                 ) -> Response:
        """Route a request; 404 if no template matches.

        With a *profiler*, the matched handler runs inside a
        ``(node, "http", "METHOD /template")`` frame — the route
        template, not the concrete path, so profile buckets stay
        low-cardinality.
        """
        route = self._exact.get((request.method, request.path))
        if route is not None:
            # exact routes bind no path params — the request is already
            # fully formed, no rebuild needed
            if profiler is None:
                return route.handler(request)
            frame = profiler.enter(
                node, "http", f"{route.method} {route.template}"
            )
            try:
                return route.handler(request)
            finally:
                profiler.exit(frame)
        for route in self._routes:
            params = route.match(request.method, request.path)
            if params is not None:
                bound = Request(
                    method=request.method,
                    path=request.path,
                    params=request.params,
                    body=request.body,
                    path_params=params,
                    sender=request.sender,
                    trace=request.trace,
                )
                if profiler is None:
                    return route.handler(bound)
                frame = profiler.enter(
                    node, "http", f"{route.method} {route.template}"
                )
                try:
                    return route.handler(bound)
                finally:
                    profiler.exit(frame)
        return error(404, f"no route for {request.method} {request.path}")


class WebService:
    """A REST service bound to a simulated host.

    *processing_delay* models server-side compute per request: either a
    constant (seconds) or a callable ``f(request) -> seconds``.
    """

    def __init__(
        self,
        host: Host,
        processing_delay: Union[float, Callable[[Request], float]] = 1e-4,
    ):
        self.host = host
        self.router = Router()
        self.requests_served = 0
        self.requests_failed = 0
        self._processing_delay = processing_delay
        host.bind(_SERVER_PORT, self._on_message)

    @property
    def base_uri(self) -> str:
        """The ``svc://host/`` URI of this service."""
        return str(ServiceUri(self.host.name, "/"))

    def route(self, method: str, template: str) -> Callable:
        """Decorator form of :meth:`Router.add`."""
        def register(handler: RouteHandler) -> RouteHandler:
            self.router.add(method, template, handler)
            return handler
        return register

    def add_route(self, method: str, template: str,
                  handler: RouteHandler) -> None:
        self.router.add(method, template, handler)

    def close(self) -> None:
        """Unbind from the host (service goes dark; requests time out)."""
        self.host.unbind(_SERVER_PORT)

    def _delay_for(self, request: Request) -> float:
        if callable(self._processing_delay):
            return self._processing_delay(request)
        return self._processing_delay

    def _on_message(self, message: Message) -> None:
        payload = message.payload
        header = payload.get("trace")
        context = TraceContext.from_dict(header) \
            if header is not None else None
        request = Request(
            method=payload["method"],
            path=payload["path"],
            params=dict(payload.get("params", {})),
            body=payload.get("body"),
            sender=message.sender,
            trace=context,
        )
        span = None
        tracer = self.host.network.tracer
        if tracer is not None and tracer.enabled and context is not None:
            # server span: opened at request arrival, parented to the
            # caller's client span, closed when the response is sent —
            # it covers the modelled processing delay plus dispatch
            span = tracer.start_span(
                f"{request.method} {request.path}", kind=SERVER,
                host=self.host.name, parent=context,
            )
        delay = self._delay_for(request)
        self.host.network.scheduler.schedule(
            delay, self._respond, message, request, span
        )

    def _respond(self, message: Message, request: Request, span=None
                 ) -> None:
        tracer = self.host.network.tracer if span is not None else None
        profiler = self.host.network.profiler
        try:
            if tracer is not None:
                # activate so handler-side child spans and events nest
                # under this hop
                tracer.push(span)
                try:
                    response = self.router.dispatch(request, profiler,
                                                    self.host.name)
                finally:
                    tracer.pop()
            else:
                response = self.router.dispatch(request, profiler,
                                                self.host.name)
        except Exception as exc:  # handler bug -> 500, like a real server
            response = error(500, f"{type(exc).__name__}: {exc}")
        # 3xx answers (e.g. the resolve fast path's 304 not-modified)
        # are successfully served, not failures: they must not burn the
        # availability SLOs built on requests_served/requests_failed
        served = 200 <= response.status < 400
        if tracer is not None:
            span.attributes["status"] = response.status
            tracer.finish(span,
                          status="ok" if served else "error")
        if served:
            self.requests_served += 1
        else:
            self.requests_failed += 1
        reply = {
            "request_id": message.payload["request_id"],
            "status": response.status,
            "body": response.body,
            "reason": response.reason,
        }
        body_size = response.body_size
        size = None if body_size is None \
            else presized_estimate(reply, "body", body_size)
        self.host.send(
            message.sender,
            message.payload["reply_port"],
            reply,
            size=size,
        )


class HttpClient:
    """Issues web-service requests from a simulated host.

    :meth:`request` is asynchronous and returns a :class:`Future`;
    :meth:`call` is the synchronous convenience used by client
    applications — it steps the scheduler until the response (or the
    timeout) arrives.

    An optional :class:`~repro.network.resilience.ResiliencePolicy`
    hardens the client: its circuit breaker fast-fails requests to hosts
    that keep failing (:class:`~repro.errors.CircuitOpenError`, no
    network traffic), and its retry policy makes :meth:`call` retry
    timeouts and 5xx answers with exponential backoff spent on the
    simulated clock.
    """

    _ids = itertools.count(1)

    def __init__(self, host: Host, timeout: float = 5.0,
                 policy: Optional[ResiliencePolicy] = None):
        self.host = host
        self.timeout = timeout
        self.policy = policy
        self.requests_sent = 0
        self._reply_port = f"http-reply-{next(self._ids)}"
        self._pending: Dict[int, Future] = {}
        # request_id -> open client span, finished on reply or expiry
        self._pending_spans: Dict[int, Any] = {}
        self._req_counter = itertools.count(1)
        host.bind(self._reply_port, self._on_reply)

    def request(
        self,
        uri: Union[str, ServiceUri],
        method: str = GET,
        params: Optional[Dict[str, str]] = None,
        body: Any = None,
        timeout: Optional[float] = None,
        body_size: Optional[int] = None,
    ) -> Future:
        """Send a request; the future resolves to a :class:`Response`.

        A lost request or response resolves the future with
        :class:`RequestTimeoutError` after the timeout.  With a breaker
        in the client's policy, a request to an open-circuit host
        resolves immediately with :class:`CircuitOpenError`.

        *body_size* is an optional already-measured
        :func:`~repro.network.transport.estimate_size` of *body*:
        callers that re-send a structurally constant body (heartbeat
        registrations) measure it once and the client only re-measures
        the small request envelope around it.
        """
        target = uri if isinstance(uri, ServiceUri) else ServiceUri.parse(uri)
        breaker = self.policy.breaker if self.policy is not None else None
        future = Future()
        tracer = self.host.network.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start_span(
                f"{method} {target.path}", kind=CLIENT,
                host=self.host.name,
                attributes={"target": target.host},
            )
        if breaker is not None:
            now = self.host.network.scheduler.now
            before = breaker.state(target.host)
            allowed = breaker.allow(target.host, now)
            after = breaker.state(target.host)
            if after != before:
                self._breaker_event(target.host, before, after)
            if not allowed:
                future.set_exception(CircuitOpenError(
                    f"circuit open for host {target.host!r}"
                ))
                if span is not None:
                    span.attributes["error"] = "CircuitOpenError"
                    tracer.finish(span, status="error")
                return future
            future.add_done_callback(
                lambda fut: self._observe(target.host, fut)
            )
        request_id = next(self._req_counter)
        self._pending[request_id] = future
        if span is not None:
            self._pending_spans[request_id] = span
        self.requests_sent += 1
        payload = {
            "method": method,
            "path": target.path,
            "params": dict(params or {}),
            "body": body,
            "reply_port": self._reply_port,
            "request_id": request_id,
        }
        if span is not None:
            payload["trace"] = {"trace_id": span.trace_id,
                                "span_id": span.span_id}
        size = None if body_size is None \
            else presized_estimate(payload, "body", body_size)
        self.host.send(target.host, _SERVER_PORT, payload, size=size)
        deadline = timeout if timeout is not None else self.timeout
        self.host.network.scheduler.schedule(
            deadline, self._expire, request_id, target
        )
        return future

    def call(
        self,
        uri: Union[str, ServiceUri],
        method: str = GET,
        params: Optional[Dict[str, str]] = None,
        body: Any = None,
        timeout: Optional[float] = None,
        check: bool = True,
        body_size: Optional[int] = None,
    ) -> Response:
        """Synchronous request: drives the scheduler until resolution.

        With *check* (default) a non-2xx response raises
        :class:`ServiceError`; otherwise the raw :class:`Response` is
        returned for the caller to inspect.  With a retry policy,
        timeouts and 5xx answers are retried with backoff, and 429
        answers are retried after the server's advised ``retry_after``,
        before the last error is surfaced.
        """
        policy = self.policy
        retry = policy.retry if policy is not None else None
        attempts = retry.max_attempts if retry is not None else 1
        attempt = 0
        while True:
            attempt += 1
            try:
                response = self._call_once(uri, method, params, body,
                                           timeout, body_size)
            except RequestTimeoutError:
                if attempt < attempts:
                    policy.retries += 1
                    self._retry_event(uri, attempt, "timeout")
                    self._sleep(retry.backoff(attempt))
                    continue
                if retry is not None:
                    policy.exhausted += 1
                    self._retry_event(uri, attempt, "timeout",
                                      exhausted=True)
                raise
            if response.status == 429 and attempt < attempts:
                # server-side backpressure: honour the advised
                # Retry-After instead of the client's own backoff (which
                # could come back before the server has drained)
                retry_after = retry.backoff(attempt)
                if isinstance(response.body, dict):
                    retry_after = float(
                        response.body.get("retry_after", retry_after)
                    )
                policy.retries += 1
                self._retry_event(uri, attempt, "http 429 backpressure")
                self._sleep(retry_after)
                continue
            if response.status >= 500 and attempt < attempts:
                policy.retries += 1
                self._retry_event(uri, attempt, f"http {response.status}")
                self._sleep(retry.backoff(attempt))
                continue
            if response.status >= 500 and retry is not None:
                policy.exhausted += 1
                self._retry_event(uri, attempt, f"http {response.status}",
                                  exhausted=True)
            if check and not response.ok:
                raise ServiceError(response.status, response.reason)
            return response

    def _call_once(self, uri, method, params, body, timeout,
                   body_size=None) -> Response:
        future = self.request(uri, method, params, body, timeout,
                              body_size=body_size)
        scheduler = self.host.network.scheduler
        while not future.done:
            if not scheduler.step():
                raise ConfigurationError(
                    "scheduler drained with request still pending"
                )
        return future.result()

    def _retry_event(self, uri, attempt: int, cause: str,
                     exhausted: bool = False) -> None:
        """Report one retry decision as a structured trace event."""
        emit(self.host.network,
             "retry_exhausted" if exhausted else "retry",
             host=self.host.name,
             uri=str(uri), attempt=attempt, cause=cause,
             client=self.host.name)

    def _sleep(self, delay: float) -> None:
        """Spend *delay* simulated seconds (backoff between retries)."""
        woken = Future()
        scheduler = self.host.network.scheduler
        scheduler.schedule(delay, woken.set_result, None)
        while not woken.done:
            scheduler.step()

    def _observe(self, target_host: str, future: Future) -> None:
        """Feed one resolved request into the breaker's state machine."""
        breaker = self.policy.breaker
        now = self.host.network.scheduler.now
        before = breaker.state(target_host)
        try:
            response = future.result()
        except Exception:
            breaker.record_failure(target_host, now)
        else:
            if response.status >= 500:
                breaker.record_failure(target_host, now)
            else:
                breaker.record_success(target_host)
        after = breaker.state(target_host)
        if after != before:
            self._breaker_event(target_host, before, after)

    def _breaker_event(self, target_host: str, before: str, after: str
                       ) -> None:
        """Report a circuit state change as a structured trace event."""
        emit(self.host.network, "breaker_state", host=self.host.name,
             target=target_host, previous=before, state=after,
             client=self.host.name)

    def get(self, uri, params: Optional[Dict[str, str]] = None, **kw
            ) -> Response:
        """Synchronous GET."""
        return self.call(uri, GET, params=params, **kw)

    def post(self, uri, body: Any = None, **kw) -> Response:
        """Synchronous POST."""
        return self.call(uri, POST, body=body, **kw)

    def _on_reply(self, message: Message) -> None:
        payload = message.payload
        request_id = payload["request_id"]
        future = self._pending.pop(request_id, None)
        if future is None or future.done:
            return  # response arrived after its timeout fired
        status = payload["status"]
        if self._pending_spans:
            span = self._pending_spans.pop(request_id, None)
            tracer = self.host.network.tracer
            if span is not None and tracer is not None:
                span.attributes["status"] = status
                tracer.finish(
                    span,
                    status="ok" if 200 <= status < 400 else "error",
                )
        future.set_result(
            Response(
                status=status,
                body=payload.get("body"),
                reason=payload.get("reason", ""),
            )
        )

    def _expire(self, request_id: int, target: ServiceUri) -> None:
        future = self._pending.pop(request_id, None)
        if future is None or future.done:
            return
        if self._pending_spans:
            span = self._pending_spans.pop(request_id, None)
            tracer = self.host.network.tracer
            if span is not None and tracer is not None:
                span.attributes["error"] = "RequestTimeoutError"
                tracer.finish(span, status="error")
        future.set_exception(
            RequestTimeoutError(f"request to {target} timed out")
        )
