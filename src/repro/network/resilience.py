"""Client-side resilience: retry policies and circuit breakers.

Production district deployments see device churn and partial outage as
the *default* operating condition, not the exception.  This module
provides the two client-side mechanisms the request path needs to ride
through them:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  seeded deterministic jitter.  Backoff waits are spent on the simulated
  clock (the caller schedules them on the DES scheduler), so retried
  requests pay realistic wall time inside experiments and remain fully
  reproducible for a fixed seed.
* :class:`FailoverSet` — an ordered set of equivalent service URIs (a
  master replica set, see :mod:`repro.core.replication`) with a rotating
  cursor: callers talk to :attr:`FailoverSet.current` and
  :meth:`FailoverSet.advance` to the next replica when it fails, so a
  dead or deposed master costs one failed call, not an outage.
* :class:`CircuitBreaker` — a per-target-host closed/open/half-open
  state machine.  After ``failure_threshold`` consecutive failures the
  circuit *opens* and requests to that host fail fast with
  :class:`~repro.errors.CircuitOpenError` (no network traffic); after
  ``recovery_timeout`` simulated seconds it goes *half-open* and admits
  a limited number of probe requests — one success closes it again, one
  failure re-opens it.

Both are bundled by :class:`ResiliencePolicy`, the opt-in object a
:class:`~repro.network.webservice.HttpClient` accepts.  Counters on the
policy (retries, breaker trips, fast-fail rejections) feed the
resilience benchmarks through
:func:`repro.simulation.metrics.resilience_counters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class FailoverSet:
    """An ordered set of equivalent service URIs with a rotating cursor.

    Built from one URI, a sequence of URIs, or another
    :class:`FailoverSet` (shared so several call sites — registration
    and heartbeat, say — remember the same working replica).  The
    cursor sticks to the last URI that worked: :meth:`advance` rotates
    to the next replica and counts a failover.
    """

    def __init__(self, uris: Union[str, Sequence[str], "FailoverSet"]):
        self._index = 0
        self.failovers = 0
        if isinstance(uris, FailoverSet):
            self._uris = list(uris.uris)
            self._index = uris._index  # keep pointing at the working one
        elif isinstance(uris, str):
            self._uris = [uris.rstrip("/")]
        else:
            self._uris = [uri.rstrip("/") for uri in uris]
        if not self._uris:
            raise ConfigurationError("failover set needs at least one URI")

    @property
    def uris(self) -> List[str]:
        """Every URI in the set, in seniority order."""
        return list(self._uris)

    @property
    def current(self) -> str:
        """The URI calls should currently target."""
        return self._uris[self._index]

    def advance(self) -> str:
        """Rotate to the next replica after a failure; returns it."""
        self._index = (self._index + 1) % len(self._uris)
        if len(self._uris) > 1:
            self.failovers += 1
        return self.current

    def __len__(self) -> int:
        return len(self._uris)

    def __iter__(self) -> Iterator[str]:
        return iter(self._uris)

    def __repr__(self) -> str:
        return f"FailoverSet({self._uris!r}, current={self.current!r})"


class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``backoff(attempt)`` returns the wait before retry *attempt*
    (1-based): ``base_delay * multiplier**(attempt-1)`` capped at
    ``max_delay``, multiplied by a jitter factor drawn uniformly from
    ``[1-jitter, 1+jitter]`` with a seeded RNG — deterministic for a
    fixed seed, like everything else in the simulation.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.2,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ConfigurationError("retry policy needs >= 1 attempt")
        if base_delay < 0 or max_delay < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = np.random.RandomState(seed)

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number *attempt* (1-based)."""
        if attempt < 1:
            raise ConfigurationError("retry attempts are numbered from 1")
        nominal = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if self.jitter <= 0:
            return nominal
        factor = 1.0 + self.jitter * float(self._rng.uniform(-1.0, 1.0))
        return nominal * factor


@dataclass
class _TargetState:
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    half_open_in_flight: int = 0


class CircuitBreaker:
    """Per-target-host circuit breaker (closed / open / half-open)."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_timeout: float = 30.0,
        half_open_probes: int = 1,
    ):
        if failure_threshold < 1:
            raise ConfigurationError("failure threshold must be >= 1")
        if recovery_timeout <= 0:
            raise ConfigurationError("recovery timeout must be positive")
        if half_open_probes < 1:
            raise ConfigurationError("half-open probe budget must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.half_open_probes = half_open_probes
        self.trips = 0
        self.rejections = 0
        self._targets: Dict[str, _TargetState] = {}

    def _state_of(self, target: str) -> _TargetState:
        return self._targets.setdefault(target, _TargetState())

    def state(self, target: str) -> str:
        """Current state name for *target* (closed if never used)."""
        return self._state_of(target).state

    def allow(self, target: str, now: float) -> bool:
        """Whether a request to *target* may proceed at time *now*.

        Returning False counts as a fast-fail rejection; an open
        circuit transitions to half-open once the recovery timeout has
        elapsed, admitting up to ``half_open_probes`` probe requests.
        """
        state = self._state_of(target)
        if state.state == CLOSED:
            return True
        if state.state == OPEN:
            if now - state.opened_at >= self.recovery_timeout:
                state.state = HALF_OPEN
                state.half_open_in_flight = 0
            else:
                self.rejections += 1
                return False
        if state.half_open_in_flight < self.half_open_probes:
            state.half_open_in_flight += 1
            return True
        self.rejections += 1
        return False

    def record_success(self, target: str) -> None:
        """A request to *target* succeeded: close its circuit."""
        state = self._state_of(target)
        state.state = CLOSED
        state.consecutive_failures = 0
        state.half_open_in_flight = 0

    def record_failure(self, target: str, now: float) -> None:
        """A request to *target* failed: trip the circuit if warranted."""
        state = self._state_of(target)
        if state.state == HALF_OPEN:
            self._trip(state, now)
            return
        state.consecutive_failures += 1
        if state.state == CLOSED and \
                state.consecutive_failures >= self.failure_threshold:
            self._trip(state, now)

    def _trip(self, state: _TargetState, now: float) -> None:
        state.state = OPEN
        state.opened_at = now
        state.consecutive_failures = 0
        state.half_open_in_flight = 0
        self.trips += 1


@dataclass
class ResiliencePolicy:
    """Bundle of retry + breaker applied by an opt-in HttpClient.

    Either part may be None: retry-only, breaker-only, or both.
    """

    retry: Optional[RetryPolicy] = None
    breaker: Optional[CircuitBreaker] = None
    #: retries actually performed (not counting first attempts)
    retries: int = 0
    #: requests that exhausted every attempt and re-raised
    exhausted: int = 0

    def counters(self) -> Dict[str, int]:
        """Counter snapshot for metrics/benchmark reports."""
        counts = {"retries": self.retries, "retry_exhausted": self.exhausted}
        if self.breaker is not None:
            counts["breaker_trips"] = self.breaker.trips
            counts["breaker_rejections"] = self.breaker.rejections
        return counts


def default_policy(seed: int = 0) -> ResiliencePolicy:
    """The stock policy used by resilient deployments and benchmarks."""
    return ResiliencePolicy(
        retry=RetryPolicy(seed=seed),
        breaker=CircuitBreaker(),
    )
