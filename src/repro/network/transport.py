"""Simulated message transport: hosts, links, latency, loss.

The paper's infrastructure is a set of networked services (master node,
proxies, clients) exchanging messages over IP.  Here the IP network is a
:class:`Network` on a discrete-event scheduler: each host binds named
ports to handlers, and :meth:`Network.send` schedules delivery after a
latency computed by a :class:`LatencyModel` (base + per-byte + jitter).

Failure injection: hosts can be taken offline (messages to them are
dropped) and links can be given a drop probability, both deterministic
for a fixed seed — used by the churn/robustness tests and benches.

Hot-path design (the PR 10 fast path):

* :func:`estimate_size` no longer serialises every payload — a
  structural walk computes the exact ``json.dumps`` byte length for the
  framework's envelope shapes (str/bytes/None fast paths, dicts/lists of
  ASCII strings and numbers) and only falls back to real ``json.dumps``
  for exotic values (non-ASCII, escapes, NaN, non-str dict keys,
  arbitrary objects).  The computed length is **value-exact** against
  the seed implementation because size feeds bandwidth latency, and
  latency feeds event ordering.
* Callers that already know the wire size (the broker's publish fan-out
  computes one base size per event plus an exact per-subscriber delta)
  pass it via ``send(..., size=...)`` and skip estimation entirely.
* :meth:`Network.send` takes fast exits: the partition / drop
  probability / flaky machinery is only consulted when actually
  configured, and jitter draws are batched (stream-identical to the
  seed's scalar draws) so the RNG is entered once per 256 sends.
* Host names and port names are interned, so the hot dict lookups hash
  by pointer.
"""

from __future__ import annotations

import json
import re
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import (
    ConfigurationError,
    EndpointNotFoundError,
    UnknownHostError,
)
from repro.network.scheduler import Scheduler

Handler = Callable[["Message"], None]


class _Exotic(Exception):
    """Internal: payload needs the real ``json.dumps`` fallback."""


#: characters that make a string non-trivial to JSON-encode: anything
#: outside printable ASCII (multi-byte UTF-8 or ``\uXXXX`` escapes under
#: ``ensure_ascii``) plus the two escaped printables ``"`` and ``\``.
_NEEDS_ESCAPE = re.compile(r'[^ -~]|["\\]').search

_JITTER_BATCH = 256

_INF = float("inf")

#: string -> its quoted JSON-encoded length.  Envelope keys, topics,
#: host names and device ids repeat endlessly, so the escape scan runs
#: once per distinct string; bounded against id-cardinality explosions.
_STR_LEN_CACHE: Dict[str, int] = {}
_STR_LEN_CACHE_CAP = 8192


def _json_str_len(value: str) -> int:
    cache = _STR_LEN_CACHE
    length = cache.get(value)
    if length is None:
        if _NEEDS_ESCAPE(value):
            raise _Exotic
        length = len(value) + 2
        if len(cache) >= _STR_LEN_CACHE_CAP:
            cache.clear()
        cache[value] = length
    return length


def _json_len(value: Any) -> int:
    """Exact ``len(json.dumps(value).encode("utf-8"))`` without encoding.

    Mirrors ``json.dumps`` defaults (``", "``/``": "`` separators,
    ``ensure_ascii``, ``float.__repr__`` for floats; ``repr(nan)`` and
    ``"NaN"`` happen to have equal length, so NaN needs no special
    case).  Raises :class:`_Exotic` for anything whose encoding is not
    trivially computable — strings needing escapes, infinities,
    non-``str`` dict keys (json stringifies those), subclasses,
    arbitrary objects — so the caller falls back to the real encoder.
    """
    kind = type(value)
    if kind is str:
        length = _STR_LEN_CACHE.get(value)
        return length if length is not None else _json_str_len(value)
    if kind is float:
        if value == _INF or value == -_INF:
            raise _Exotic
        return len(repr(value))
    if kind is bool:
        return 4 if value else 5
    if kind is int:
        return len(str(value))
    if value is None:
        return 4
    if kind is dict:
        count = len(value)
        if count == 0:
            return 2
        total = 2 + 2 * (count - 1)
        cache_get = _STR_LEN_CACHE.get
        for key, item in value.items():
            key_len = cache_get(key)
            if key_len is None:
                if type(key) is not str:
                    raise _Exotic
                key_len = _json_str_len(key)
            total += key_len + 2 + _json_len(item)
        return total
    if kind is list or kind is tuple:
        count = len(value)
        if count == 0:
            return 2
        total = 2 + 2 * (count - 1)
        for item in value:
            total += _json_len(item)
        return total
    raise _Exotic


def estimate_size(payload: Any) -> int:
    """Approximate on-the-wire size in bytes of a message payload.

    Value-identical to serialising with ``json.dumps(payload,
    default=str)`` (the seed behaviour) but computed structurally for
    the common payload shapes, so the hot send path never builds a JSON
    string just to measure it.
    """
    if payload is None:
        return 1
    kind = type(payload)
    if kind is str:
        if payload.isascii():
            return len(payload)
        return len(payload.encode("utf-8"))
    if kind is bytes or kind is bytearray:
        return len(payload)
    try:
        return _json_len(payload)
    except _Exotic:
        pass
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    try:
        return len(json.dumps(payload, default=str).encode("utf-8"))
    except (TypeError, ValueError):
        return 256  # opaque object: charge a flat envelope size


def presized_estimate(payload: Dict, key: str, inner_size: int) -> int:
    """:func:`estimate_size` of *payload* given ``payload[key]``'s size.

    For envelope dicts wrapping one large field whose size the caller
    already knows (a registration body measured once and re-sent every
    heartbeat, say), re-measuring the envelope only needs the cheap
    outer walk: JSON sizes are additive, so measuring with the field
    swapped for ``0`` (one character) and adding *inner_size* back is
    value-identical to measuring the whole payload — for the structural
    path and the ``json.dumps`` fallback alike.
    """
    saved = payload[key]
    payload[key] = 0
    try:
        outer = estimate_size(payload)
    finally:
        payload[key] = saved
    return outer - 1 + inner_size


@dataclass(slots=True)
class Message:
    """A delivered transport message.

    Treated as immutable by convention; built once per delivery, so the
    constructor stays on the plain (non-``frozen``) dataclass path —
    ``frozen=True`` pays ``object.__setattr__`` per field per message.
    """

    sender: str
    recipient: str
    port: str
    payload: Any
    size: int
    sent_at: float
    delivered_at: float


class LatencyModel:
    """Base-plus-bandwidth latency with deterministic jitter.

    ``delay = base + size/bandwidth`` multiplied by a log-normal jitter
    factor.  Messages a host sends to itself use *loopback* latency.

    Jitter factors are drawn in batches of ``256`` — batch draws from
    ``RandomState.normal`` are stream-identical to scalar draws, and
    ``np.exp`` over the batch is elementwise-identical, so the factors
    a run sees match the seed implementation draw for draw.  (Changing
    :attr:`jitter` mid-run discards the current batch.)
    """

    def __init__(
        self,
        base: float = 0.002,
        bandwidth: float = 1.25e6,  # bytes/second (~10 Mbit/s district WAN)
        jitter: float = 0.1,
        loopback: float = 2e-5,
        seed: int = 0,
    ):
        if base < 0 or loopback < 0:
            raise ConfigurationError("latencies must be non-negative")
        if bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.base = base
        self.bandwidth = bandwidth
        self.jitter = jitter
        self.loopback = loopback
        self._rng = np.random.RandomState(seed)
        self._jitter_buf: List[float] = []
        self._jitter_pos = 0
        self._jitter_sigma = jitter

    def delay(self, src: str, dst: str, size: int) -> float:
        """Latency in seconds for a *size*-byte message src -> dst."""
        if src == dst:
            return self.loopback
        nominal = self.base + size / self.bandwidth
        sigma = self.jitter
        if sigma <= 0:
            return nominal
        pos = self._jitter_pos
        buf = self._jitter_buf
        if pos >= len(buf) or sigma != self._jitter_sigma:
            buf = self._jitter_buf = np.exp(
                self._rng.normal(0.0, sigma, _JITTER_BATCH)
            ).tolist()
            self._jitter_sigma = sigma
            pos = 0
        self._jitter_pos = pos + 1
        return nominal * buf[pos]


class Host:
    """A named node on the simulated network."""

    def __init__(self, name: str, network: "Network"):
        self.name = name
        self.network = network
        self._ports: Dict[str, Handler] = {}
        self.online = True

    def bind(self, port: str, handler: Handler) -> None:
        """Attach *handler* to *port*; rebinding an open port is an error."""
        port = sys.intern(port)
        if port in self._ports:
            raise ConfigurationError(
                f"port {port!r} already bound on host {self.name!r}"
            )
        self._ports[port] = handler

    def unbind(self, port: str) -> None:
        """Detach the handler from *port* (no-op if not bound)."""
        self._ports.pop(port, None)

    def handler_for(self, port: str) -> Handler:
        try:
            return self._ports[port]
        except KeyError:
            raise EndpointNotFoundError(
                f"no endpoint {port!r} on host {self.name!r}"
            ) from None

    def send(self, recipient: str, port: str, payload: Any,
             size: Optional[int] = None) -> None:
        """Send *payload* to *recipient*:*port* over the network.

        *size* lets callers that already know the wire size (the
        broker's fan-out) skip :func:`estimate_size`.
        """
        self.network.send(self.name, recipient, port, payload, size=size)


@dataclass
class NetworkStats:
    """Aggregate transport counters, reset per experiment run.

    Counter semantics — "attempted" vs "delivered":

    * ``messages_sent`` / ``bytes_sent`` count messages that **left the
      sending host** — the sender was online, whatever happened next
      (partition, drop, recipient offline).  A message sent while its
      *sender* is offline never leaves the host and is **not** counted
      here (it only counts as dropped).
    * ``messages_delivered`` counts handler invocations on the
      recipient.
    * ``messages_dropped`` counts every message that failed to reach a
      handler, whatever the cause; the ``messages_dropped_*`` splits
      attribute causes (offline endpoint, flaky profile, partition) and
      each dropped message increments at most one split.

    So availability math reads: attempted = ``messages_sent`` +
    sender-offline drops, and ``messages_delivered + messages_dropped``
    accounts for every attempt.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_dropped_offline: int = 0
    messages_dropped_flaky: int = 0
    messages_dropped_partition: int = 0
    latency_spikes: int = 0
    bytes_sent: int = 0
    per_host_received: Dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_dropped_offline = 0
        self.messages_dropped_flaky = 0
        self.messages_dropped_partition = 0
        self.latency_spikes = 0
        self.bytes_sent = 0
        self.per_host_received.clear()


@dataclass(frozen=True)
class FlakyProfile:
    """Degraded-but-alive behaviour of one host (fault injection).

    Unlike taking a host offline, a flaky host stays reachable: each
    message to or from it is dropped with *drop_probability*, and with
    *spike_probability* its delivery pays *latency_spike* extra seconds
    — the brown-out failure mode real district gateways exhibit.
    """

    drop_probability: float = 0.0
    latency_spike: float = 0.0
    spike_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ConfigurationError("drop probability must be in [0, 1]")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ConfigurationError("spike probability must be in [0, 1]")
        if self.latency_spike < 0:
            raise ConfigurationError("latency spike must be non-negative")


class Network:
    """The simulated district network fabric."""

    def __init__(
        self,
        scheduler: Scheduler,
        latency: Optional[LatencyModel] = None,
        drop_probability: float = 0.0,
        seed: int = 0,
    ):
        if not 0.0 <= drop_probability < 1.0:
            raise ConfigurationError("drop probability must be in [0, 1)")
        self.scheduler = scheduler
        self.latency = latency if latency is not None else LatencyModel(seed=seed)
        self.drop_probability = drop_probability
        self.stats = NetworkStats()
        #: observability attachment points (None = disabled, the
        #: default): a repro.observability Tracer and MetricsRegistry,
        #: set by repro.observability.install().  Instrumented
        #: components reach both through host.network, so one check
        #: against None is the entire disabled-mode cost.
        self.tracer = None
        self.metrics = None
        #: hot-loop profiler attachment point (None = disabled), set by
        #: repro.observability.profiler.install_profiler() alongside
        #: scheduler.profiler; _deliver pays one None check when off
        self.profiler = None
        self._hosts: Dict[str, Host] = {}
        self._flaky: Dict[str, FlakyProfile] = {}
        #: active partitions: frozensets of isolated host names.  A
        #: message is dropped (both directions) when exactly one of its
        #: endpoints belongs to a partition's isolated side, so hosts
        #: added after the cut land on the majority side.
        self._partitions: list = []
        self._drop_rng = np.random.RandomState(seed + 1)
        # surface periodic-task callback failures as trace events
        scheduler.on_periodic_error = self._periodic_task_error

    def _periodic_task_error(self, task, exc: BaseException) -> None:
        """Scheduler hook: a periodic task's callback raised (and was
        re-armed).  Emitted as a trace event so soak runs show silent
        failures that previously killed heartbeats."""
        tracer = self.tracer
        if tracer is not None:
            callback = getattr(task, "_callback", None)
            handler = getattr(callback, "__qualname__", None) or repr(callback)
            tracer.event(
                "periodic_task_error",
                handler=handler,
                error=f"{type(exc).__name__}: {exc}",
            )

    def add_host(self, name: str) -> Host:
        """Create and register a host; duplicate names are an error."""
        name = sys.intern(name)
        if name in self._hosts:
            raise ConfigurationError(f"host {name!r} already on network")
        host = Host(name, self)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise UnknownHostError(f"no host named {name!r}") from None

    def has_host(self, name: str) -> bool:
        return name in self._hosts

    def hosts(self):
        """Iterate over registered hosts."""
        return iter(self._hosts.values())

    def set_host_online(self, name: str, online: bool) -> None:
        """Failure injection: take a host off the network (or restore it)."""
        self.host(name).online = online

    def set_host_flaky(self, name: str, profile: FlakyProfile) -> None:
        """Failure injection: degrade every message to/from *name*."""
        self.host(name)  # raises UnknownHostError
        self._flaky[name] = profile

    def clear_host_flaky(self, name: str) -> None:
        """Remove a host's flaky profile (no-op if it has none)."""
        self._flaky.pop(name, None)

    def flaky_hosts(self) -> Dict[str, FlakyProfile]:
        """Currently degraded hosts and their profiles."""
        return dict(self._flaky)

    # -- partitions ---------------------------------------------------------

    def partition(self, hosts) -> None:
        """Cut the links between *hosts* and everyone else, symmetrically.

        Both sides stay alive and keep talking within themselves; every
        message crossing the cut is dropped in **both** directions until
        :meth:`heal_partition`.  Unlike :meth:`set_host_online`, a
        partitioned host keeps serving the peers on its own side.
        """
        isolated = frozenset(hosts)
        if not isolated:
            raise ConfigurationError("partition needs at least one host")
        for name in isolated:
            self.host(name)  # raises UnknownHostError
        self._partitions.append(isolated)

    def heal_partition(self) -> None:
        """Remove every active partition (no-op when none exist)."""
        self._partitions.clear()

    @property
    def partitioned(self) -> bool:
        """Whether any partition is currently active."""
        return bool(self._partitions)

    def partition_blocks(self, sender: str, recipient: str) -> bool:
        """Whether an active partition severs the sender->recipient link."""
        for isolated in self._partitions:
            if (sender in isolated) != (recipient in isolated):
                return True
        return False

    def send(self, sender: str, recipient: str, port: str, payload: Any,
             size: Optional[int] = None) -> None:
        """Schedule delivery of *payload* from *sender* to *recipient*.

        Messages to offline hosts, or unlucky under the drop
        probability, are silently dropped — callers that need
        reliability layer timeouts on top (as the web-service client
        does).  *size* overrides :func:`estimate_size` for callers that
        already know the wire size.

        A message whose **sender** is offline never leaves the host: it
        is dropped without charging ``messages_sent``/``bytes_sent`` (or
        paying size estimation).  A message to an offline **recipient**
        did leave the host, so it counts as sent *and* dropped.  See
        :class:`NetworkStats` for the full attempted-vs-delivered
        contract.
        """
        hosts = self._hosts
        src = hosts.get(sender)
        if src is None:
            raise UnknownHostError(f"unknown sending host {sender!r}")
        dst = hosts.get(recipient)
        if dst is None:
            raise UnknownHostError(f"no host named {recipient!r}")
        stats = self.stats
        if not src.online:
            stats.messages_dropped += 1
            stats.messages_dropped_offline += 1
            return
        if size is None:
            size = estimate_size(payload)
        stats.messages_sent += 1
        stats.bytes_sent += size
        if not dst.online:
            stats.messages_dropped += 1
            stats.messages_dropped_offline += 1
            return
        if self._partitions and self.partition_blocks(sender, recipient):
            stats.messages_dropped += 1
            stats.messages_dropped_partition += 1
            return
        if (
            self.drop_probability > 0.0
            and self._drop_rng.random_sample() < self.drop_probability
        ):
            stats.messages_dropped += 1
            return
        extra_delay = 0.0
        if self._flaky:
            for endpoint in (sender, recipient) if sender != recipient \
                    else (sender,):
                profile = self._flaky.get(endpoint)
                if profile is None:
                    continue
                if profile.drop_probability > 0.0 and \
                        self._drop_rng.random_sample() < profile.drop_probability:
                    stats.messages_dropped += 1
                    stats.messages_dropped_flaky += 1
                    return
                if profile.spike_probability > 0.0 and \
                        self._drop_rng.random_sample() < profile.spike_probability:
                    extra_delay += profile.latency_spike
                    stats.latency_spikes += 1
        delay = self.latency.delay(sender, recipient, size) + extra_delay
        scheduler = self.scheduler
        scheduler.schedule(
            delay, self._deliver, sender, recipient, port, payload, size,
            scheduler.clock._now,
        )

    def _deliver(self, sender: str, recipient: str, port: str, payload: Any,
                 size: int, sent_at: float) -> None:
        dst = self._hosts.get(recipient)
        if dst is None or not dst.online:
            self.stats.messages_dropped += 1
            return
        try:
            handler = dst._ports[port]
        except KeyError:
            self.stats.messages_dropped += 1
            return
        stats = self.stats
        stats.messages_delivered += 1
        received = stats.per_host_received
        received[recipient] = received.get(recipient, 0) + 1
        message = Message(
            sender=sender,
            recipient=recipient,
            port=port,
            payload=payload,
            size=size,
            sent_at=sent_at,
            delivered_at=self.scheduler.clock._now,
        )
        profiler = self.profiler
        if profiler is None:
            handler(message)
            return
        frame = profiler.enter_delivery(recipient, port)
        try:
            handler(message)
        finally:
            profiler.exit(frame)
