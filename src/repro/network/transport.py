"""Simulated message transport: hosts, links, latency, loss.

The paper's infrastructure is a set of networked services (master node,
proxies, clients) exchanging messages over IP.  Here the IP network is a
:class:`Network` on a discrete-event scheduler: each host binds named
ports to handlers, and :meth:`Network.send` schedules delivery after a
latency computed by a :class:`LatencyModel` (base + per-byte + jitter).

Failure injection: hosts can be taken offline (messages to them are
dropped) and links can be given a drop probability, both deterministic
for a fixed seed — used by the churn/robustness tests and benches.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.errors import (
    ConfigurationError,
    EndpointNotFoundError,
    UnknownHostError,
)
from repro.network.scheduler import Scheduler

Handler = Callable[["Message"], None]


def estimate_size(payload: Any) -> int:
    """Approximate on-the-wire size in bytes of a message payload."""
    if payload is None:
        return 1
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    try:
        return len(json.dumps(payload, default=str).encode("utf-8"))
    except (TypeError, ValueError):
        return 256  # opaque object: charge a flat envelope size


@dataclass(frozen=True)
class Message:
    """A delivered transport message."""

    sender: str
    recipient: str
    port: str
    payload: Any
    size: int
    sent_at: float
    delivered_at: float


class LatencyModel:
    """Base-plus-bandwidth latency with deterministic jitter.

    ``delay = base + size/bandwidth`` multiplied by a log-normal jitter
    factor.  Messages a host sends to itself use *loopback* latency.
    """

    def __init__(
        self,
        base: float = 0.002,
        bandwidth: float = 1.25e6,  # bytes/second (~10 Mbit/s district WAN)
        jitter: float = 0.1,
        loopback: float = 2e-5,
        seed: int = 0,
    ):
        if base < 0 or loopback < 0:
            raise ConfigurationError("latencies must be non-negative")
        if bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.base = base
        self.bandwidth = bandwidth
        self.jitter = jitter
        self.loopback = loopback
        self._rng = np.random.RandomState(seed)

    def delay(self, src: str, dst: str, size: int) -> float:
        """Latency in seconds for a *size*-byte message src -> dst."""
        if src == dst:
            return self.loopback
        nominal = self.base + size / self.bandwidth
        if self.jitter <= 0:
            return nominal
        factor = float(np.exp(self._rng.normal(0.0, self.jitter)))
        return nominal * factor


class Host:
    """A named node on the simulated network."""

    def __init__(self, name: str, network: "Network"):
        self.name = name
        self.network = network
        self._ports: Dict[str, Handler] = {}
        self.online = True

    def bind(self, port: str, handler: Handler) -> None:
        """Attach *handler* to *port*; rebinding an open port is an error."""
        if port in self._ports:
            raise ConfigurationError(
                f"port {port!r} already bound on host {self.name!r}"
            )
        self._ports[port] = handler

    def unbind(self, port: str) -> None:
        """Detach the handler from *port* (no-op if not bound)."""
        self._ports.pop(port, None)

    def handler_for(self, port: str) -> Handler:
        try:
            return self._ports[port]
        except KeyError:
            raise EndpointNotFoundError(
                f"no endpoint {port!r} on host {self.name!r}"
            ) from None

    def send(self, recipient: str, port: str, payload: Any) -> None:
        """Send *payload* to *recipient*:*port* over the network."""
        self.network.send(self.name, recipient, port, payload)


@dataclass
class NetworkStats:
    """Aggregate transport counters, reset per experiment run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_dropped_flaky: int = 0
    messages_dropped_partition: int = 0
    latency_spikes: int = 0
    bytes_sent: int = 0
    per_host_received: Dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_dropped_flaky = 0
        self.messages_dropped_partition = 0
        self.latency_spikes = 0
        self.bytes_sent = 0
        self.per_host_received.clear()


@dataclass(frozen=True)
class FlakyProfile:
    """Degraded-but-alive behaviour of one host (fault injection).

    Unlike taking a host offline, a flaky host stays reachable: each
    message to or from it is dropped with *drop_probability*, and with
    *spike_probability* its delivery pays *latency_spike* extra seconds
    — the brown-out failure mode real district gateways exhibit.
    """

    drop_probability: float = 0.0
    latency_spike: float = 0.0
    spike_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ConfigurationError("drop probability must be in [0, 1]")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ConfigurationError("spike probability must be in [0, 1]")
        if self.latency_spike < 0:
            raise ConfigurationError("latency spike must be non-negative")


class Network:
    """The simulated district network fabric."""

    def __init__(
        self,
        scheduler: Scheduler,
        latency: Optional[LatencyModel] = None,
        drop_probability: float = 0.0,
        seed: int = 0,
    ):
        if not 0.0 <= drop_probability < 1.0:
            raise ConfigurationError("drop probability must be in [0, 1)")
        self.scheduler = scheduler
        self.latency = latency if latency is not None else LatencyModel(seed=seed)
        self.drop_probability = drop_probability
        self.stats = NetworkStats()
        #: observability attachment points (None = disabled, the
        #: default): a repro.observability Tracer and MetricsRegistry,
        #: set by repro.observability.install().  Instrumented
        #: components reach both through host.network, so one check
        #: against None is the entire disabled-mode cost.
        self.tracer = None
        self.metrics = None
        #: hot-loop profiler attachment point (None = disabled), set by
        #: repro.observability.profiler.install_profiler() alongside
        #: scheduler.profiler; _deliver pays one None check when off
        self.profiler = None
        self._hosts: Dict[str, Host] = {}
        self._flaky: Dict[str, FlakyProfile] = {}
        #: active partitions: frozensets of isolated host names.  A
        #: message is dropped (both directions) when exactly one of its
        #: endpoints belongs to a partition's isolated side, so hosts
        #: added after the cut land on the majority side.
        self._partitions: list = []
        self._drop_rng = np.random.RandomState(seed + 1)

    def add_host(self, name: str) -> Host:
        """Create and register a host; duplicate names are an error."""
        if name in self._hosts:
            raise ConfigurationError(f"host {name!r} already on network")
        host = Host(name, self)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise UnknownHostError(f"no host named {name!r}") from None

    def has_host(self, name: str) -> bool:
        return name in self._hosts

    def hosts(self):
        """Iterate over registered hosts."""
        return iter(self._hosts.values())

    def set_host_online(self, name: str, online: bool) -> None:
        """Failure injection: take a host off the network (or restore it)."""
        self.host(name).online = online

    def set_host_flaky(self, name: str, profile: FlakyProfile) -> None:
        """Failure injection: degrade every message to/from *name*."""
        self.host(name)  # raises UnknownHostError
        self._flaky[name] = profile

    def clear_host_flaky(self, name: str) -> None:
        """Remove a host's flaky profile (no-op if it has none)."""
        self._flaky.pop(name, None)

    def flaky_hosts(self) -> Dict[str, FlakyProfile]:
        """Currently degraded hosts and their profiles."""
        return dict(self._flaky)

    # -- partitions ---------------------------------------------------------

    def partition(self, hosts) -> None:
        """Cut the links between *hosts* and everyone else, symmetrically.

        Both sides stay alive and keep talking within themselves; every
        message crossing the cut is dropped in **both** directions until
        :meth:`heal_partition`.  Unlike :meth:`set_host_online`, a
        partitioned host keeps serving the peers on its own side.
        """
        isolated = frozenset(hosts)
        if not isolated:
            raise ConfigurationError("partition needs at least one host")
        for name in isolated:
            self.host(name)  # raises UnknownHostError
        self._partitions.append(isolated)

    def heal_partition(self) -> None:
        """Remove every active partition (no-op when none exist)."""
        self._partitions.clear()

    @property
    def partitioned(self) -> bool:
        """Whether any partition is currently active."""
        return bool(self._partitions)

    def partition_blocks(self, sender: str, recipient: str) -> bool:
        """Whether an active partition severs the sender->recipient link."""
        for isolated in self._partitions:
            if (sender in isolated) != (recipient in isolated):
                return True
        return False

    def send(self, sender: str, recipient: str, port: str, payload: Any
             ) -> None:
        """Schedule delivery of *payload* from *sender* to *recipient*.

        Messages to offline hosts, or unlucky under the drop
        probability, are silently dropped — callers that need
        reliability layer timeouts on top (as the web-service client
        does).
        """
        if sender not in self._hosts:
            raise UnknownHostError(f"unknown sending host {sender!r}")
        dst = self.host(recipient)  # raises UnknownHostError
        size = estimate_size(payload)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size
        if not dst.online or not self._hosts[sender].online:
            self.stats.messages_dropped += 1
            return
        if self._partitions and self.partition_blocks(sender, recipient):
            self.stats.messages_dropped += 1
            self.stats.messages_dropped_partition += 1
            return
        if (
            self.drop_probability > 0.0
            and self._drop_rng.random_sample() < self.drop_probability
        ):
            self.stats.messages_dropped += 1
            return
        extra_delay = 0.0
        for endpoint in (sender, recipient) if sender != recipient \
                else (sender,):
            profile = self._flaky.get(endpoint)
            if profile is None:
                continue
            if profile.drop_probability > 0.0 and \
                    self._drop_rng.random_sample() < profile.drop_probability:
                self.stats.messages_dropped += 1
                self.stats.messages_dropped_flaky += 1
                return
            if profile.spike_probability > 0.0 and \
                    self._drop_rng.random_sample() < profile.spike_probability:
                extra_delay += profile.latency_spike
                self.stats.latency_spikes += 1
        delay = self.latency.delay(sender, recipient, size) + extra_delay
        sent_at = self.scheduler.now
        self.scheduler.schedule(
            delay, self._deliver, sender, recipient, port, payload, size,
            sent_at,
        )

    def _deliver(self, sender: str, recipient: str, port: str, payload: Any,
                 size: int, sent_at: float) -> None:
        dst = self._hosts.get(recipient)
        if dst is None or not dst.online:
            self.stats.messages_dropped += 1
            return
        try:
            handler = dst.handler_for(port)
        except EndpointNotFoundError:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        received = self.stats.per_host_received
        received[recipient] = received.get(recipient, 0) + 1
        message = Message(
            sender=sender,
            recipient=recipient,
            port=port,
            payload=payload,
            size=size,
            sent_at=sent_at,
            delivered_at=self.scheduler.now,
        )
        profiler = self.profiler
        if profiler is None:
            handler(message)
            return
        frame = profiler.enter_delivery(recipient, port)
        try:
            handler(message)
        finally:
            profiler.exit(frame)
