"""Distribution-network flow analysis built on the integrated data."""

from repro.gridsim.flow import (
    FlowSolver,
    NetworkState,
    SegmentFlow,
    demands_from_model,
)

__all__ = [
    "FlowSolver",
    "NetworkState",
    "SegmentFlow",
    "demands_from_model",
]
