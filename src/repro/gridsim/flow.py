"""Distribution-network flow analysis on SIM models.

The paper's introduction motivates the infrastructure with "tracing
energy consumption at different levels of detail is crucial to increase
distribution networks efficiency".  This module closes that loop: given
a network's SIM export and the measured building demands retrieved
through the framework, it computes per-segment flows, losses,
utilisation and the network's delivery efficiency.

The model is a radial (tree) network: each consumer's demand is routed
along its unique path to the plant; segment losses are quadratic in
utilisation (I²R-like for cables, friction-like for pipes)::

    loss_kw = loss_coeff * (length_m / 1000) * rating * utilisation²

A one-pass solve (no loss feedback into flows) keeps results exact for
the reported quantities and is standard for screening studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.integration import IntegratedModel
from repro.datasources.sim import NODE_CONSUMER, SimStore
from repro.errors import IntegrationError, QueryError


@dataclass(frozen=True)
class SegmentFlow:
    """Computed state of one network segment."""

    edge_id: str
    source: str
    target: str
    flow_kw: float
    rating_kw: float
    loss_kw: float

    @property
    def utilisation(self) -> float:
        """Flow as a fraction of the segment rating."""
        if self.rating_kw <= 0:
            return 0.0
        return self.flow_kw / self.rating_kw

    @property
    def overloaded(self) -> bool:
        return self.utilisation > 1.0


@dataclass
class NetworkState:
    """Solved flow state of one distribution network."""

    network_name: str
    demands_kw: Dict[str, float]
    segments: Dict[str, SegmentFlow] = field(default_factory=dict)

    @property
    def delivered_kw(self) -> float:
        """Total demand served at the consumers."""
        return sum(self.demands_kw.values())

    @property
    def losses_kw(self) -> float:
        """Total segment losses."""
        return sum(s.loss_kw for s in self.segments.values())

    @property
    def injected_kw(self) -> float:
        """Power the plant must inject (demand plus losses)."""
        return self.delivered_kw + self.losses_kw

    @property
    def efficiency(self) -> float:
        """Delivered over injected; 1.0 for a lossless or idle network."""
        injected = self.injected_kw
        if injected <= 0:
            return 1.0
        return self.delivered_kw / injected

    @property
    def overloaded_segments(self) -> List[SegmentFlow]:
        """Segments above rating, worst first."""
        return sorted(
            (s for s in self.segments.values() if s.overloaded),
            key=lambda s: -s.utilisation,
        )

    def worst_segments(self, count: int = 3) -> List[SegmentFlow]:
        """Highest-utilisation segments, for reinforcement planning."""
        return sorted(self.segments.values(),
                      key=lambda s: -s.utilisation)[:count]


class FlowSolver:
    """Routes consumer demands to the plant over a radial SIM network."""

    def __init__(self, sim: SimStore):
        self.sim = sim
        self._edge_rows = {e["edge_id"]: e for e in sim.edges()}

    def solve(self, demands_kw: Dict[str, float]) -> NetworkState:
        """Compute segment flows and losses for the given demands.

        *demands_kw* maps consumer node ids to their demand; unknown
        nodes raise, negative demands (distributed generation at a
        service point) are allowed and reduce upstream flow.
        """
        flows: Dict[str, float] = {e: 0.0 for e in self._edge_rows}
        for consumer, demand in demands_kw.items():
            node = self.sim.node(consumer)
            if node["kind"] != NODE_CONSUMER:
                raise QueryError(
                    f"{consumer!r} is not a consumer node"
                )
            path = self.sim.path_to_plant(consumer)
            for upstream, downstream in zip(path[1:], path[:-1]):
                edge = self._edge_between(upstream, downstream)
                flows[edge] += demand
        state = NetworkState(self.sim.network_name, dict(demands_kw))
        for edge_id, flow in flows.items():
            row = self._edge_rows[edge_id]
            rating = float(row["rating"])
            utilisation = abs(flow) / rating if rating > 0 else 0.0
            loss = (float(row["loss_coeff"])
                    * (float(row["length_m"]) / 1000.0)
                    * rating * utilisation ** 2)
            state.segments[edge_id] = SegmentFlow(
                edge_id=edge_id,
                source=row["source"],
                target=row["target"],
                flow_kw=flow,
                rating_kw=rating,
                loss_kw=loss,
            )
        return state

    def _edge_between(self, a: str, b: str) -> str:
        for edge in self.sim.edges_at(a):
            if edge["source"] in (a, b) and edge["target"] in (a, b):
                return edge["edge_id"]
        raise QueryError(f"no edge between {a!r} and {b!r}")


def demands_from_model(model: IntegratedModel, network_id: str,
                       sim: SimStore,
                       load_fraction: float = 1.0
                       ) -> Dict[str, float]:
    """Derive consumer demands from an integrated model's measurements.

    Each building's latest feeder power (the device sensing both power
    and energy) becomes the demand at the consumer node serving its
    cadastral parcel; *load_fraction* scales electrical load to the
    network's commodity (e.g. the thermal share on a heat network).
    """
    if not 0.0 < load_fraction <= 1.0:
        raise QueryError("load fraction must be in (0, 1]")
    model.entity(network_id)  # validates the network is in the model
    demands: Dict[str, float] = {}
    for building in model.buildings:
        cadastral = building.properties.get("cadastral_id")
        if not cadastral:
            continue
        try:
            consumer = sim.consumer_for_parcel(str(cadastral))
        except Exception:
            continue  # this network does not serve the parcel
        watts: Optional[float] = None
        for device in building.devices:
            if "power" in device.quantities and \
                    "energy" in device.quantities:
                samples = building.samples(device.device_id, "power")
                if samples:
                    watts = samples[-1][1]
                break
        if watts is None:
            continue
        demands[consumer] = demands.get(consumer, 0.0) + \
            watts / 1000.0 * load_fraction
    if not demands:
        raise IntegrationError(
            f"no measured demands found for network {network_id!r}"
        )
    return demands
