"""Persistence: ontology snapshots and measurement archives.

Two durable artifacts keep a production deployment restartable and
auditable:

* **ontology snapshots** — the master's district forest as a JSON file;
  an alternative recovery path to proxy re-registration after a master
  restart (see :class:`~repro.simulation.faults.FaultInjector`);
* **measurement archives** — a :class:`~repro.storage.localdb.
  LocalDatabase` dumped to JSON, so collected data survives a proxy or
  measurement-DB restart and can be analysed offline.

Formats are versioned; loading a file with an unknown version fails
loudly rather than guessing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SerializationError
from repro.ontology.model import DistrictOntology
from repro.storage.localdb import LocalDatabase

_ONTOLOGY_VERSION = 1
_ARCHIVE_VERSION = 1
#: v1: row-per-series LocalDatabase dump; v2: columnar BlockStore dump
#: ("engine": "blocks") carrying sealed blocks + rollup state verbatim.
#: Writers pick the version matching the live engine; the loader
#: accepts both.
_MDB_STATE_VERSION = 1
_MDB_STATE_VERSION_BLOCKS = 2
_BROKER_STATE_VERSION = 1


def _write_json(path: str, payload: Dict) -> None:
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp_path, path)  # atomic on POSIX


def _read_json(path: str) -> Dict:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot load {path!r}: {exc}") from exc


# --------------------------------------------------------------------------
# ontology snapshots


@dataclass
class OntologySnapshot:
    """A loaded master-state snapshot: the forest plus lease metadata.

    *leases* maps registered proxy URIs to their absolute lease-expiry
    times on the simulated clock (empty for permanent registrations and
    for snapshots written before leases existed).  *ontology_epoch* is
    the master's forest version at snapshot time (0 for snapshots
    written before epochs existed), restored so resolve-cache
    validators stay monotone across a master restart.
    """

    ontology: DistrictOntology
    leases: Dict[str, float] = field(default_factory=dict)
    ontology_epoch: int = 0


def save_ontology(ontology: DistrictOntology, path: str,
                  leases: Optional[Dict[str, float]] = None,
                  epoch: int = 0) -> None:
    """Write the ontology forest to *path* as a versioned JSON snapshot.

    *leases* (proxy URI -> absolute expiry, simulated seconds) rides
    along so a restarted master can restore its lease table too — see
    :meth:`repro.core.master.MasterNode.recover_from_snapshot`.
    *epoch* persists the master's ontology epoch for the same reason.
    """
    _write_json(path, {
        "format": "repro-ontology",
        "version": _ONTOLOGY_VERSION,
        "ontology": ontology.to_dict(),
        "leases": {uri: float(expiry)
                   for uri, expiry in (leases or {}).items()},
        "ontology_epoch": int(epoch),
    })


def _check_ontology_header(path: str, payload: Dict) -> None:
    if payload.get("format") != "repro-ontology":
        raise SerializationError(f"{path!r} is not an ontology snapshot")
    if payload.get("version") != _ONTOLOGY_VERSION:
        raise SerializationError(
            f"unsupported ontology snapshot version "
            f"{payload.get('version')!r}"
        )


def load_ontology(path: str) -> DistrictOntology:
    """Load an ontology snapshot written by :func:`save_ontology`."""
    payload = _read_json(path)
    _check_ontology_header(path, payload)
    return DistrictOntology.from_dict(payload["ontology"])


def load_ontology_snapshot(path: str) -> OntologySnapshot:
    """Load an ontology snapshot *with* its lease metadata.

    Snapshots written before leases were persisted load with an empty
    lease table (every registration treated as permanent).
    """
    payload = _read_json(path)
    _check_ontology_header(path, payload)
    return OntologySnapshot(
        ontology=DistrictOntology.from_dict(payload["ontology"]),
        leases={uri: float(expiry)
                for uri, expiry in payload.get("leases", {}).items()},
        ontology_epoch=int(payload.get("ontology_epoch", 0)),
    )


# --------------------------------------------------------------------------
# measurement archives


def save_measurements(database: LocalDatabase, path: str) -> None:
    """Archive every series of a measurement store to *path*."""
    series = []
    for device_id in database.devices():
        for quantity in database.quantities(device_id):
            pairs = database.series(device_id, quantity).to_pairs()
            series.append({
                "device_id": device_id,
                "quantity": quantity,
                "samples": [[t, v] for t, v in pairs],
            })
    _write_json(path, {
        "format": "repro-measurements",
        "version": _ARCHIVE_VERSION,
        "series": series,
    })


def load_measurements(path: str,
                      entity_for_device: Dict[str, str] = None
                      ) -> LocalDatabase:
    """Rebuild a measurement store from an archive.

    *entity_for_device* optionally restores device -> entity ownership;
    unknown devices get an empty entity id (the archive itself does not
    store ownership — that lives in the ontology).
    """
    from repro.common.cdf import Measurement

    payload = _read_json(path)
    if payload.get("format") != "repro-measurements":
        raise SerializationError(f"{path!r} is not a measurement archive")
    if payload.get("version") != _ARCHIVE_VERSION:
        raise SerializationError(
            f"unsupported archive version {payload.get('version')!r}"
        )
    entity_for_device = entity_for_device or {}
    database = LocalDatabase(retention=None)
    for record in payload.get("series", []):
        device_id = record["device_id"]
        entity_id = entity_for_device.get(device_id, "bld-0000")
        for t, value in record["samples"]:
            database.insert(Measurement(
                device_id=device_id,
                entity_id=entity_id,
                quantity=record["quantity"],
                value=float(value),
                timestamp=float(t),
                source="archive",
            ))
    return database


# --------------------------------------------------------------------------
# measurement-DB state snapshots (durable data plane)


@dataclass
class MeasurementState:
    """A loaded measurement-DB snapshot: store plus ingest bookkeeping.

    The companion of the write-ahead log (see
    :mod:`repro.storage.durability`): *database* holds every series at
    snapshot time, *freshness* the per-device newest-sample timestamps,
    *dedup_keys* the idempotent-ingest window (so redeliveries of
    samples already in the snapshot stay deduplicated after recovery),
    and *entity_for_device* the device -> entity ownership needed to
    rebuild :class:`~repro.common.cdf.Measurement` rows.
    """

    database: object  # LocalDatabase or repro.storage.blocks.BlockStore
    freshness: Dict[str, float] = field(default_factory=dict)
    dedup_keys: list = field(default_factory=list)
    entity_for_device: Dict[str, str] = field(default_factory=dict)


def save_measurement_state(database, path: str,
                           freshness: Optional[Dict[str, float]] = None,
                           dedup_keys=None,
                           entity_for_device: Optional[Dict[str, str]]
                           = None) -> None:
    """Atomically snapshot a measurement store plus ingest bookkeeping.

    Unlike :func:`save_measurements` (the offline-analysis archive),
    this snapshot is a *recovery* artifact: it also persists the
    freshness table and the dedup window, so a restarted measurement DB
    resumes with exact idempotent-ingest state instead of re-counting
    redelivered samples.  A :class:`~repro.storage.blocks.BlockStore`
    snapshots as format version 2, carrying its sealed blocks and
    rollup state verbatim (recovery must not recompute rollups from
    raw data it may no longer retain).
    """
    from repro.storage.blocks import BlockStore

    common = {
        "freshness": {device: float(t)
                      for device, t in (freshness or {}).items()},
        "dedup_keys": [list(key) for key in (dedup_keys or [])],
        "entity_for_device": dict(entity_for_device or {}),
    }
    if isinstance(database, BlockStore):
        _write_json(path, {
            "format": "repro-mdb-state",
            "version": _MDB_STATE_VERSION_BLOCKS,
            "engine": "blocks",
            "tsdb": database.to_dict(),
            **common,
        })
        return
    series = []
    for device_id in database.devices():
        for quantity in database.quantities(device_id):
            pairs = database.series(device_id, quantity).to_pairs()
            series.append({
                "device_id": device_id,
                "quantity": quantity,
                "samples": [[t, v] for t, v in pairs],
            })
    _write_json(path, {
        "format": "repro-mdb-state",
        "version": _MDB_STATE_VERSION,
        "series": series,
        **common,
    })


def load_measurement_state(path: str) -> MeasurementState:
    """Load a recovery snapshot written by :func:`save_measurement_state`."""
    from repro.common.cdf import Measurement
    from repro.storage.blocks import BlockStore

    payload = _read_json(path)
    if payload.get("format") != "repro-mdb-state":
        raise SerializationError(f"{path!r} is not a measurement-DB "
                                 f"state snapshot")
    version = payload.get("version")
    if version not in (_MDB_STATE_VERSION, _MDB_STATE_VERSION_BLOCKS):
        raise SerializationError(
            f"unsupported measurement-DB state version {version!r}"
        )
    entity_for_device = dict(payload.get("entity_for_device", {}))
    if version == _MDB_STATE_VERSION_BLOCKS:
        if payload.get("engine") != "blocks":
            raise SerializationError(
                f"unknown storage engine {payload.get('engine')!r} in "
                f"{path!r}"
            )
        return MeasurementState(
            database=BlockStore.from_dict(payload["tsdb"]),
            freshness={device: float(t) for device, t
                       in payload.get("freshness", {}).items()},
            dedup_keys=[tuple(key)
                        for key in payload.get("dedup_keys", [])],
            entity_for_device=entity_for_device,
        )
    database = LocalDatabase(retention=None)
    for record in payload.get("series", []):
        device_id = record["device_id"]
        entity_id = entity_for_device.get(device_id, "bld-0000")
        for t, value in record["samples"]:
            database.insert(Measurement(
                device_id=device_id,
                entity_id=entity_id,
                quantity=record["quantity"],
                value=float(value),
                timestamp=float(t),
                source="snapshot",
            ))
    return MeasurementState(
        database=database,
        freshness={device: float(t)
                   for device, t in payload.get("freshness", {}).items()},
        dedup_keys=[tuple(key) for key in payload.get("dedup_keys", [])],
        entity_for_device=entity_for_device,
    )

# --------------------------------------------------------------------------
# broker state snapshots (broker HA)


def save_broker_state(state: Dict, path: str) -> None:
    """Atomically snapshot the middleware broker's durable state.

    *state* is :meth:`repro.middleware.broker.Broker.state_snapshot` —
    retained events, subscription registry, pending acked deliveries,
    deferred pub-acks, the dead-letter queue and the id/op high-water
    marks.  Written with the same tmp + ``os.replace`` recipe as every
    other snapshot, so a crash mid-write leaves the previous snapshot
    intact.
    """
    _write_json(path, {
        "format": "repro-broker-state",
        "version": _BROKER_STATE_VERSION,
        "state": state,
    })


def load_broker_state(path: str) -> Dict:
    """Load a broker-state snapshot written by :func:`save_broker_state`."""
    payload = _read_json(path)
    if payload.get("format") != "repro-broker-state":
        raise SerializationError(f"{path!r} is not a broker-state snapshot")
    if payload.get("version") != _BROKER_STATE_VERSION:
        raise SerializationError(
            f"unsupported broker-state version {payload.get('version')!r}"
        )
    return dict(payload.get("state", {}))
