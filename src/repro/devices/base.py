"""Simulated field devices: sensors and actuators.

A :class:`SimulatedDevice` owns a set of sensed quantities (each backed
by a deterministic :class:`~repro.devices.profiles.Profile`) and,
optionally, actuation commands that mutate its state — and through it
the profiles.  Devices are protocol-agnostic here; the protocol binding
(address format, frame encoding) happens in
:mod:`repro.devices.firmware`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.cdf import (
    ActuatorCapability,
    DeviceDescription,
    SensorCapability,
)
from repro.devices.profiles import Profile
from repro.errors import ConfigurationError, UnsupportedCommandError


@dataclass
class SensorChannel:
    """One sensed quantity: its profile and native sampling period."""

    quantity: str
    profile: Profile
    sample_period: float

    def read(self, t: float) -> float:
        """Current value of the channel at simulated time *t*."""
        return self.profile.value(t)


CommandHandler = Callable[[Optional[float]], None]


@dataclass
class ActuatorChannel:
    """One accepted command with an optional legal value range."""

    command: str
    handler: CommandHandler
    value_range: Optional[Tuple[float, float]] = None


class SimulatedDevice:
    """A field device with sensor channels and actuator channels."""

    def __init__(
        self,
        device_id: str,
        protocol: str,
        address: str,
        entity_id: str,
        vendor: str = "STMicroelectronics",
        location: str = "",
    ):
        self.device_id = device_id
        self.protocol = protocol
        self.address = address
        self.entity_id = entity_id
        self.vendor = vendor
        self.location = location
        self.online = True
        self.commands_handled = 0
        self._sensors: Dict[str, SensorChannel] = {}
        self._actuators: Dict[str, ActuatorChannel] = {}

    # -- construction -------------------------------------------------------

    def add_sensor(self, quantity: str, profile: Profile,
                   sample_period: float) -> None:
        """Attach a sensed quantity; duplicate quantities are an error."""
        if quantity in self._sensors:
            raise ConfigurationError(
                f"device {self.device_id} already senses {quantity}"
            )
        if sample_period <= 0:
            raise ConfigurationError("sample period must be positive")
        self._sensors[quantity] = SensorChannel(quantity, profile,
                                                sample_period)

    def add_actuator(self, command: str, handler: CommandHandler,
                     value_range: Optional[Tuple[float, float]] = None
                     ) -> None:
        """Attach a command handler; duplicates are an error."""
        if command in self._actuators:
            raise ConfigurationError(
                f"device {self.device_id} already handles {command}"
            )
        self._actuators[command] = ActuatorChannel(command, handler,
                                                   value_range)

    # -- sensing --------------------------------------------------------------

    @property
    def quantities(self) -> List[str]:
        """Sorted sensed quantities."""
        return sorted(self._sensors)

    def channel(self, quantity: str) -> SensorChannel:
        try:
            return self._sensors[quantity]
        except KeyError:
            raise ConfigurationError(
                f"device {self.device_id} does not sense {quantity}"
            ) from None

    def channels(self) -> List[SensorChannel]:
        """All sensor channels, sorted by quantity."""
        return [self._sensors[q] for q in self.quantities]

    def read_all(self, t: float) -> List[Tuple[str, float]]:
        """Read every channel at time *t*."""
        return [(q, self._sensors[q].read(t)) for q in self.quantities]

    # -- actuation ------------------------------------------------------------

    @property
    def is_actuator(self) -> bool:
        return bool(self._actuators)

    def apply_command(self, command: str, value: Optional[float]) -> None:
        """Execute a command; raises :class:`UnsupportedCommandError`.

        Out-of-range values are rejected without side effects.
        """
        channel = self._actuators.get(command)
        if channel is None:
            raise UnsupportedCommandError(
                f"device {self.device_id} has no command {command!r}"
            )
        if channel.value_range is not None and value is not None:
            lo, hi = channel.value_range
            if not lo <= value <= hi:
                raise UnsupportedCommandError(
                    f"{command} value {value} outside [{lo}, {hi}]"
                )
        channel.handler(value)
        self.commands_handled += 1

    # -- description ------------------------------------------------------------

    def description(self) -> DeviceDescription:
        """The device's CDF description, as its proxy publishes it."""
        return DeviceDescription(
            device_id=self.device_id,
            protocol=self.protocol,
            entity_id=self.entity_id,
            sensors=tuple(
                SensorCapability(c.quantity, c.sample_period)
                for c in self.channels()
            ),
            actuators=tuple(
                ActuatorCapability(a.command, a.value_range)
                for a in sorted(self._actuators.values(),
                                key=lambda a: a.command)
            ),
            vendor=self.vendor,
            location=self.location,
            metadata={"address": self.address},
        )
