"""Synthetic energy and environment profiles.

The paper's testbed measures real buildings; here every sensed quantity
is a deterministic function of simulated time built from these profile
classes — daily/weekly load shapes, office and residential occupancy,
weather-driven HVAC power, photovoltaic generation — plus reproducible
pseudo-noise.  Determinism matters twice over: runs are repeatable for a
fixed seed, and the profiling benchmarks can compare roll-ups computed
through the infrastructure against ground truth evaluated directly.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

from repro.common.simtime import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    day_of_year,
    hour_of_day,
    is_weekend,
)
from repro.errors import ConfigurationError


def _hash_noise(t: float, seed: float) -> float:
    """Deterministic pseudo-noise in [-1, 1) as a pure function of (t, seed)."""
    x = math.sin(t * 12.9898e-3 + seed * 78.233) * 43758.5453
    return 2.0 * (x - math.floor(x)) - 1.0


class Profile(abc.ABC):
    """A deterministic scalar signal over simulated time."""

    @abc.abstractmethod
    def value(self, t: float) -> float:
        """Signal value at simulated time *t* (seconds since epoch)."""

    def __add__(self, other: "Profile") -> "Profile":
        return SumProfile((self, other))

    def scaled(self, factor: float) -> "Profile":
        """This profile multiplied by a constant factor."""
        return ScaledProfile(self, factor)


class ConstantProfile(Profile):
    """A flat signal."""

    def __init__(self, level: float):
        self.level = float(level)

    def value(self, t: float) -> float:
        return self.level


class SumProfile(Profile):
    """Pointwise sum of several profiles."""

    def __init__(self, parts: Sequence[Profile]):
        if not parts:
            raise ConfigurationError("sum of zero profiles")
        self.parts = tuple(parts)

    def value(self, t: float) -> float:
        return sum(p.value(t) for p in self.parts)


class ScaledProfile(Profile):
    """A profile multiplied by a constant."""

    def __init__(self, inner: Profile, factor: float):
        self.inner = inner
        self.factor = float(factor)

    def value(self, t: float) -> float:
        return self.inner.value(t) * self.factor


class NoisyProfile(Profile):
    """Adds deterministic pseudo-noise to an inner profile.

    The noise is piecewise-constant over *correlation_time* seconds
    (default one minute): real fluctuations have a time scale, and the
    quantisation also makes ``value(t)`` insensitive to the sub-second
    sampling offsets and integer-second frame timestamps of the device
    pipeline — so measured data can be validated against ground truth.
    """

    def __init__(self, inner: Profile, sigma: float, seed: int = 0,
                 correlation_time: float = 60.0):
        if sigma < 0:
            raise ConfigurationError("noise sigma must be non-negative")
        if correlation_time <= 0:
            raise ConfigurationError("correlation time must be positive")
        self.inner = inner
        self.sigma = sigma
        self.seed = float(seed)
        self.correlation_time = correlation_time

    def value(self, t: float) -> float:
        slot = math.floor(t / self.correlation_time) * self.correlation_time
        return self.inner.value(t) + self.sigma * _hash_noise(slot,
                                                              self.seed)


class ClampedProfile(Profile):
    """Clamps an inner profile to [lo, hi] (e.g. non-negative power)."""

    def __init__(self, inner: Profile, lo: float = 0.0,
                 hi: float = float("inf")):
        if hi < lo:
            raise ConfigurationError("clamp range reversed")
        self.inner = inner
        self.lo = lo
        self.hi = hi

    def value(self, t: float) -> float:
        return min(max(self.inner.value(t), self.lo), self.hi)


class DailyShapeProfile(Profile):
    """Base load plus a smooth daily bump centred on *peak_hour*."""

    def __init__(self, base: float, amplitude: float, peak_hour: float = 14.0,
                 width_hours: float = 5.0):
        if width_hours <= 0:
            raise ConfigurationError("daily shape width must be positive")
        self.base = base
        self.amplitude = amplitude
        self.peak_hour = peak_hour
        self.width_hours = width_hours

    def value(self, t: float) -> float:
        hour = hour_of_day(t)
        # circular distance in hours from the peak
        delta = min(abs(hour - self.peak_hour),
                    24.0 - abs(hour - self.peak_hour))
        bump = math.exp(-0.5 * (delta / self.width_hours) ** 2)
        return self.base + self.amplitude * bump


class OfficeOccupancyProfile(Profile):
    """Weekday office occupancy fraction in [0, 1]; near-zero weekends."""

    def __init__(self, open_hour: float = 8.0, close_hour: float = 18.0,
                 ramp_hours: float = 1.0, weekend_level: float = 0.03):
        if close_hour <= open_hour:
            raise ConfigurationError("office closes before it opens")
        self.open_hour = open_hour
        self.close_hour = close_hour
        self.ramp_hours = ramp_hours
        self.weekend_level = weekend_level

    def value(self, t: float) -> float:
        if is_weekend(t):
            return self.weekend_level
        hour = hour_of_day(t)
        if hour < self.open_hour or hour > self.close_hour:
            return self.weekend_level
        rise = min(1.0, (hour - self.open_hour) / self.ramp_hours)
        fall = min(1.0, (self.close_hour - hour) / self.ramp_hours)
        # mild lunch dip at 13:00
        lunch = 1.0 - 0.25 * math.exp(-0.5 * ((hour - 13.0) / 0.7) ** 2)
        return max(self.weekend_level, min(rise, fall) * lunch)


class ResidentialProfile(Profile):
    """Household electrical load: morning and evening peaks, night trough."""

    def __init__(self, base_watts: float = 150.0, peak_watts: float = 900.0):
        self.base_watts = base_watts
        self.peak_watts = peak_watts

    def value(self, t: float) -> float:
        hour = hour_of_day(t)
        morning = 0.85 * math.exp(-0.5 * ((hour - 7.5) / 1.2) ** 2)
        evening = math.exp(-0.5 * ((hour - 19.5) / 2.0) ** 2)
        weekend_boost = 1.15 if is_weekend(t) else 1.0
        return self.base_watts + \
            self.peak_watts * weekend_boost * max(morning, evening)


class WeatherProfile(Profile):
    """Outdoor temperature: seasonal sinusoid plus diurnal swing (degC)."""

    def __init__(self, annual_mean: float = 12.0, annual_swing: float = 10.0,
                 diurnal_swing: float = 4.0, seed: int = 0):
        self.annual_mean = annual_mean
        self.annual_swing = annual_swing
        self.diurnal_swing = diurnal_swing
        self.seed = seed

    def value(self, t: float) -> float:
        yday = day_of_year(t)
        # coldest around mid January (day 15), warmest mid July
        seasonal = -math.cos(2.0 * math.pi * (yday - 15) / 365.0)
        hour = hour_of_day(t)
        diurnal = -math.cos(2.0 * math.pi * (hour - 4.0) / 24.0)
        weather_noise = 2.0 * _hash_noise(
            math.floor(t / SECONDS_PER_DAY) * SECONDS_PER_DAY, self.seed
        )
        return (self.annual_mean + self.annual_swing * seasonal
                + 0.5 * self.diurnal_swing * diurnal + weather_noise)


class HvacProfile(Profile):
    """Electrical power of a heat pump holding *setpoint* against weather.

    A simple steady-state model: thermal demand is ``ua_watts_per_k``
    times the indoor/outdoor temperature gap, divided by the COP.  The
    setpoint is mutable — actuation commands move it and the power
    profile responds, closing the paper's remote-control loop.
    """

    def __init__(self, weather: Profile, setpoint: float = 20.0,
                 ua_watts_per_k: float = 120.0, cop: float = 3.0,
                 max_power: float = 6000.0):
        if cop <= 0:
            raise ConfigurationError("COP must be positive")
        self.weather = weather
        self.setpoint = setpoint
        self.ua_watts_per_k = ua_watts_per_k
        self.cop = cop
        self.max_power = max_power

    def value(self, t: float) -> float:
        outdoor = self.weather.value(t)
        demand_k = self.setpoint - outdoor
        if demand_k <= 0:  # free-floating: warm enough outside
            return 0.0
        power = demand_k * self.ua_watts_per_k / self.cop
        return min(power, self.max_power)


class PhotovoltaicProfile(Profile):
    """PV generation as *negative* power: a daylight bell, season-scaled."""

    def __init__(self, peak_watts: float = 3000.0, seed: int = 0):
        if peak_watts < 0:
            raise ConfigurationError("peak power must be non-negative")
        self.peak_watts = peak_watts
        self.seed = seed

    def value(self, t: float) -> float:
        hour = hour_of_day(t)
        if hour < 6.0 or hour > 20.0:
            return 0.0
        bell = math.exp(-0.5 * ((hour - 13.0) / 2.6) ** 2)
        yday = day_of_year(t)
        season = 0.55 + 0.45 * math.cos(2.0 * math.pi * (yday - 172) / 365.0)
        cloud = 0.85 + 0.15 * _hash_noise(
            math.floor(t / SECONDS_PER_HOUR), self.seed
        )
        return -self.peak_watts * bell * season * max(cloud, 0.2)


class StepProfile(Profile):
    """Piecewise-constant profile; useful for scripted test scenarios."""

    def __init__(self, steps: Sequence, default: float = 0.0):
        # steps: iterable of (start_time, value), sorted by start time
        self.steps = sorted((float(t), float(v)) for t, v in steps)
        self.default = default

    def value(self, t: float) -> float:
        current = self.default
        for start, level in self.steps:
            if t >= start:
                current = level
            else:
                break
        return current


def office_building_load(floor_area_m2: float, weather: Profile,
                         seed: int = 0) -> Profile:
    """Composite electrical load of an office building (W)."""
    occupancy = OfficeOccupancyProfile()
    plug_and_light = _OccupancyDriven(
        occupancy, idle=2.0 * floor_area_m2, active=14.0 * floor_area_m2
    )
    hvac = HvacProfile(weather, ua_watts_per_k=0.9 * floor_area_m2)
    return NoisyProfile(
        ClampedProfile(SumProfile((plug_and_light, hvac))),
        sigma=0.4 * floor_area_m2,
        seed=seed,
    )


def residential_building_load(units: int, weather: Profile,
                              seed: int = 0) -> Profile:
    """Composite electrical load of a residential building (W)."""
    households = ResidentialProfile(base_watts=120.0 * units,
                                    peak_watts=650.0 * units)
    hvac = HvacProfile(weather, setpoint=20.5,
                       ua_watts_per_k=60.0 * units, cop=2.8)
    return NoisyProfile(
        ClampedProfile(SumProfile((households, hvac))),
        sigma=20.0 * units,
        seed=seed,
    )


class _OccupancyDriven(Profile):
    """Linear interpolation between idle and active load by occupancy."""

    def __init__(self, occupancy: Profile, idle: float, active: float):
        self.occupancy = occupancy
        self.idle = idle
        self.active = active

    def value(self, t: float) -> float:
        frac = self.occupancy.value(t)
        return self.idle + (self.active - self.idle) * frac


class EnergyCounter:
    """Accumulates a power profile into a cumulative energy counter (Wh).

    Real meters report monotone counters; this integrates the profile
    lazily between query times so firmware can read "the counter now".
    """

    def __init__(self, power: Profile, start_time: float = 0.0,
                 step: float = 300.0):
        if step <= 0:
            raise ConfigurationError("integration step must be positive")
        self.power = power
        self._last_time = start_time
        self._total_wh = 0.0
        self._step = step

    def read(self, t: float) -> float:
        """Energy counter value (Wh) at time *t* >= the previous read."""
        if t < self._last_time:
            raise ConfigurationError("energy counter read in the past")
        time = self._last_time
        prev = self.power.value(time)
        while time < t:
            nxt = min(time + self._step, t)
            cur = self.power.value(nxt)
            self._total_wh += 0.5 * (prev + cur) * (nxt - time) / 3600.0
            prev = cur
            time = nxt
        self._last_time = t
        return self._total_wh
