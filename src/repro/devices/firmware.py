"""Device firmware: the sampling loop and radio link.

:class:`RadioLink` models the field bus between a device and its
gateway (fixed radio latency, optional loss), outside the IP network —
frames here are the protocol-native ``bytes`` built by the adapters.

:class:`DeviceFirmware` is the device's behaviour: it groups sensor
channels by sampling period, periodically reads the profiles, encodes
protocol frames and transmits them uplink; downlink it decodes actuation
commands addressed to its device, applies them, and immediately reports
the affected channels (the post-command attribute report real devices
send, which the proxy uses to confirm actuation).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.devices.base import SimulatedDevice
from repro.errors import (
    ConfigurationError,
    FrameDecodeError,
    FrameEncodeError,
    UnsupportedCommandError,
)
from repro.network.scheduler import PeriodicTask, Scheduler
from repro.protocols.base import ProtocolAdapter

FrameHandler = Callable[[bytes], None]


class RadioLink:
    """Point-to-point field-bus link between one device and its gateway."""

    def __init__(self, scheduler: Scheduler, latency: float = 0.01,
                 loss: float = 0.0, seed: int = 0):
        if latency < 0:
            raise ConfigurationError("link latency must be non-negative")
        if not 0.0 <= loss < 1.0:
            raise ConfigurationError("link loss must be in [0, 1)")
        self.scheduler = scheduler
        self.latency = latency
        self.loss = loss
        self.frames_up = 0
        self.frames_down = 0
        self.frames_dropped = 0
        self._seed = seed
        #: lazily built on the first lossy check — RandomState
        #: construction is measurable per link and a loss-free link
        #: (the common fleet) never draws; first-use construction sees
        #: the identical stream
        self._rng: Optional[np.random.RandomState] = None
        self._gateway_handler: Optional[FrameHandler] = None
        self._device_handler: Optional[FrameHandler] = None

    def attach_gateway(self, handler: FrameHandler) -> None:
        """The proxy's dedicated layer registers its frame receiver."""
        self._gateway_handler = handler

    def attach_device(self, handler: FrameHandler) -> None:
        """The firmware registers its downlink receiver."""
        self._device_handler = handler

    def _lossy(self) -> bool:
        if self.loss <= 0.0:
            return False
        rng = self._rng
        if rng is None:
            rng = self._rng = np.random.RandomState(self._seed)
        return rng.random_sample() < self.loss

    def uplink(self, frame: bytes) -> None:
        """Device -> gateway transmission."""
        if self._gateway_handler is None or self._lossy():
            self.frames_dropped += 1
            return
        self.frames_up += 1
        self.scheduler.schedule(self.latency, self._gateway_handler, frame)

    def downlink(self, frame: bytes) -> None:
        """Gateway -> device transmission."""
        if self._device_handler is None or self._lossy():
            self.frames_dropped += 1
            return
        self.frames_down += 1
        self.scheduler.schedule(self.latency, self._device_handler, frame)


class DeviceFirmware:
    """Autonomous behaviour of one simulated device."""

    def __init__(self, device: SimulatedDevice, adapter: ProtocolAdapter,
                 link: RadioLink, scheduler: Scheduler):
        if adapter.name != device.protocol:
            raise ConfigurationError(
                f"device {device.device_id} speaks {device.protocol}, "
                f"adapter speaks {adapter.name}"
            )
        self.device = device
        self.adapter = adapter
        self.link = link
        self.scheduler = scheduler
        self.frames_sent = 0
        self.commands_applied = 0
        self.commands_rejected = 0
        #: optional DeviceEnergyModel metering this node's budget
        self.energy_model = None
        self._tasks: List[PeriodicTask] = []
        link.attach_device(self._on_downlink)

    def attach_energy_model(self, model) -> None:
        """Meter this device's sampling and transmissions on *model*."""
        self.energy_model = model

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Begin periodic sampling (and EnOcean teach-in if needed)."""
        if hasattr(self.adapter, "encode_teach_in"):
            eep = self.adapter.eep_for_quantities(self.device.quantities)
            self.link.uplink(
                self.adapter.encode_teach_in(self.device.address, eep)
            )
        for period, quantities in self._channel_groups().items():
            task = self.scheduler.every(
                period, self._sample, quantities,
                initial_delay=period,
            )
            self._tasks.append(task)

    def stop(self) -> None:
        """Halt sampling (device powered off)."""
        for task in self._tasks:
            task.stop()
        self._tasks.clear()
        self.device.online = False

    def _channel_groups(self) -> Dict[float, List[str]]:
        groups: Dict[float, List[str]] = {}
        for channel in self.device.channels():
            groups.setdefault(channel.sample_period, []).append(
                channel.quantity
            )
        return groups

    # -- uplink ----------------------------------------------------------------

    def _sample(self, quantities: List[str]) -> None:
        if not self.device.online:
            return
        now = self.scheduler.now
        readings = [
            (q, self.device.channel(q).read(now)) for q in quantities
        ]
        if self.energy_model is not None:
            self.energy_model.on_sample(len(readings), now)
        self._transmit(readings, now)

    def _transmit(self, readings: List[Tuple[str, float]], now: float
                  ) -> None:
        try:
            frame = self.adapter.encode_readings(
                self.device.address, readings, now
            )
        except FrameEncodeError:
            # the protocol cannot carry this combination in one frame:
            # fragment into per-quantity frames (e.g. EnOcean A5-12-01
            # alternating power/energy telegrams)
            if len(readings) == 1:
                raise
            for reading in readings:
                self._transmit([reading], now)
            return
        self.frames_sent += 1
        if self.energy_model is not None:
            self.energy_model.on_transmit(len(frame), now)
        self.link.uplink(frame)

    # -- downlink ----------------------------------------------------------------

    def _on_downlink(self, frame: bytes) -> None:
        if not self.device.online:
            return
        try:
            command = self.adapter.decode_command(frame)
        except FrameDecodeError:
            return  # corrupt or foreign frame: radio silence
        if command.device_address != self.device.address:
            return  # addressed to a different device on the shared medium
        try:
            self.device.apply_command(command.command, command.value)
        except UnsupportedCommandError:
            self.commands_rejected += 1
            return  # no ack: the proxy's pending actuation will time out
        self.commands_applied += 1
        # post-command report: transmit affected channels immediately
        now = self.scheduler.now
        affected = [
            (q, self.device.channel(q).read(now))
            for q in self.device.quantities
        ]
        self._transmit(affected, now)
