"""Device energy budgets: batteries, harvesting, lifetime.

Section III of the paper: wireless sensor development places "special
emphasis ... on network self-configuration and energy consumption
reduction, in order to increase system autonomy and minimize
installation costs", with "energy storage and/or harvesting devices"
among the building blocks.  This module models exactly that concern:

* :class:`EnergyBudget` — a device's battery capacity, harvesting
  income and per-operation costs (radio TX per byte, sensor sampling);
* :class:`DeviceEnergyModel` — attached to a
  :class:`~repro.devices.firmware.DeviceFirmware`, it meters every
  transmission and sample, accrues harvest, exposes state of charge and
  projects battery lifetime;
* :func:`fleet_energy_report` — ranks a deployment's devices by
  projected lifetime, the maintenance-planning view.

Typical budgets (orders of magnitude from coin-cell WSN practice):
a CR2032 holds ~2.3 kJ; an 802.15.4 TX costs on the order of a µJ per
byte; EnOcean devices harvest more than they spend (infinite autonomy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError

#: default budgets per protocol (battery J, harvest mW, uJ/byte, uJ/sample)
PROTOCOL_BUDGETS: Dict[str, "EnergyBudget"] = {}


@dataclass(frozen=True)
class EnergyBudget:
    """Energy parameters of one device class."""

    battery_joules: float
    harvest_milliwatts: float = 0.0
    tx_microjoules_per_byte: float = 2.0
    sample_microjoules: float = 50.0
    idle_microwatts: float = 8.0

    def __post_init__(self) -> None:
        if self.battery_joules < 0 or self.harvest_milliwatts < 0:
            raise ConfigurationError("energy budget cannot be negative")

    @property
    def is_harvesting(self) -> bool:
        return self.harvest_milliwatts > 0.0


PROTOCOL_BUDGETS.update({
    # two AA cells on a metering node
    "zigbee": EnergyBudget(battery_joules=9000.0),
    "ieee802154": EnergyBudget(battery_joules=9000.0,
                               tx_microjoules_per_byte=1.5),
    # energy harvesting: no battery to run down
    "enocean": EnergyBudget(battery_joules=50.0, harvest_milliwatts=0.05,
                            tx_microjoules_per_byte=1.0,
                            sample_microjoules=20.0, idle_microwatts=1.0),
    # mains powered gateways and PLCs: effectively infinite
    "opcua": EnergyBudget(battery_joules=float("inf")),
    # coin cell on a CoAP node / BLE beacon
    "coap": EnergyBudget(battery_joules=2300.0,
                         tx_microjoules_per_byte=2.5),
    "ble": EnergyBudget(battery_joules=2300.0,
                        tx_microjoules_per_byte=0.8,
                        sample_microjoules=30.0, idle_microwatts=3.0),
})


class DeviceEnergyModel:
    """Meters one device's energy use over simulated time."""

    def __init__(self, budget: EnergyBudget, start_time: float = 0.0):
        self.budget = budget
        self.spent_joules = 0.0
        self.harvested_joules = 0.0
        self.bytes_sent = 0
        self.frames_sent = 0
        self.samples_taken = 0
        self._start_time = start_time
        self._last_time = start_time

    # -- metering hooks (called by the firmware) ---------------------------

    def _accrue(self, now: float) -> None:
        elapsed = max(now - self._last_time, 0.0)
        self.harvested_joules += \
            self.budget.harvest_milliwatts * 1e-3 * elapsed
        self.spent_joules += self.budget.idle_microwatts * 1e-6 * elapsed
        self._last_time = now

    def on_transmit(self, frame_bytes: int, now: float) -> None:
        """Account for one radio transmission."""
        self._accrue(now)
        self.frames_sent += 1
        self.bytes_sent += frame_bytes
        self.spent_joules += \
            self.budget.tx_microjoules_per_byte * 1e-6 * frame_bytes

    def on_sample(self, count: int, now: float) -> None:
        """Account for *count* sensor acquisitions."""
        self._accrue(now)
        self.samples_taken += count
        self.spent_joules += self.budget.sample_microjoules * 1e-6 * count

    # -- analysis ------------------------------------------------------------

    def net_spent_joules(self, now: Optional[float] = None) -> float:
        """Battery energy drawn so far (harvest offsets spend)."""
        if now is not None:
            self._accrue(now)
        return max(self.spent_joules - self.harvested_joules, 0.0)

    def state_of_charge(self, now: Optional[float] = None) -> float:
        """Remaining battery fraction in [0, 1]."""
        if self.budget.battery_joules == float("inf"):
            return 1.0
        if self.budget.battery_joules <= 0:
            return 0.0
        remaining = self.budget.battery_joules - self.net_spent_joules(now)
        return min(max(remaining / self.budget.battery_joules, 0.0), 1.0)

    def average_power_watts(self, now: float) -> float:
        """Mean net drain since attachment (0 for harvest-positive)."""
        elapsed = max(now - self._start_time, 1e-9)
        return self.net_spent_joules(now) / elapsed

    def projected_lifetime_days(self, now: float) -> float:
        """Days until the battery empties at the observed drain rate.

        Infinite for mains or harvest-positive devices.
        """
        drain = self.average_power_watts(now)
        if drain <= 0.0 or self.budget.battery_joules == float("inf"):
            return float("inf")
        remaining = self.budget.battery_joules - self.net_spent_joules(now)
        if remaining <= 0:
            return 0.0
        return remaining / drain / 86400.0


def budget_for_protocol(protocol: str) -> EnergyBudget:
    """Default energy budget for a protocol's device class."""
    try:
        return PROTOCOL_BUDGETS[protocol]
    except KeyError:
        raise ConfigurationError(
            f"no energy budget defined for protocol {protocol!r}"
        ) from None


@dataclass(frozen=True)
class FleetEnergyRow:
    """One device's energy standing in the fleet report."""

    device_id: str
    protocol: str
    state_of_charge: float
    projected_lifetime_days: float
    frames_sent: int


def fleet_energy_report(models: Dict[str, DeviceEnergyModel],
                        protocols: Dict[str, str],
                        now: float) -> List[FleetEnergyRow]:
    """Rank devices by projected lifetime, shortest first."""
    rows = [
        FleetEnergyRow(
            device_id=device_id,
            protocol=protocols.get(device_id, "?"),
            state_of_charge=model.state_of_charge(now),
            projected_lifetime_days=model.projected_lifetime_days(now),
            frames_sent=model.frames_sent,
        )
        for device_id, model in models.items()
    ]
    rows.sort(key=lambda r: r.projected_lifetime_days)
    return rows
