"""Catalog of concrete device models used in district deployments.

Factory functions build :class:`~repro.devices.base.SimulatedDevice`
instances for the device classes the paper's deployments feature: smart
meters, environment sensors, smart plugs, HVAC controllers, dimmable
luminaires, PV inverters and district-heating flow meters.  Each factory
is protocol-agnostic — the caller picks the protocol and address, the
factory wires channels and actuation behaviour.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.base import SimulatedDevice
from repro.devices.profiles import (
    ClampedProfile,
    ConstantProfile,
    EnergyCounter,
    HvacProfile,
    NoisyProfile,
    OfficeOccupancyProfile,
    PhotovoltaicProfile,
    Profile,
    ResidentialProfile,
    WeatherProfile,
)


class _CounterProfile(Profile):
    """Adapts an :class:`EnergyCounter` to the Profile interface."""

    def __init__(self, counter: EnergyCounter):
        self.counter = counter

    def value(self, t: float) -> float:
        return self.counter.read(t)


class _GatedProfile(Profile):
    """A load profile gated by a mutable on/off switch (smart plug)."""

    def __init__(self, inner: Profile):
        self.inner = inner
        self.on = True

    def value(self, t: float) -> float:
        return self.inner.value(t) if self.on else 0.0


class _SwitchStateProfile(Profile):
    """Reports a gate's boolean state as 0/1 for the 'state' channel."""

    def __init__(self, gate: _GatedProfile):
        self.gate = gate

    def value(self, t: float) -> float:
        return 1.0 if self.gate.on else 0.0


class _DimmedProfile(Profile):
    """A luminaire load scaled by a mutable dim level in [0, 1]."""

    def __init__(self, full_power: float):
        self.full_power = full_power
        self.level = 1.0

    def value(self, t: float) -> float:
        return self.full_power * self.level


class _SetpointProfile(Profile):
    """Reports an HVAC profile's current setpoint."""

    def __init__(self, hvac: HvacProfile):
        self.hvac = hvac

    def value(self, t: float) -> float:
        return self.hvac.setpoint


def power_meter(device_id: str, protocol: str, address: str, entity_id: str,
                load: Profile, sample_period: float = 60.0,
                location: str = "") -> SimulatedDevice:
    """Whole-feeder smart meter: instantaneous power + cumulative energy."""
    device = SimulatedDevice(device_id, protocol, address, entity_id,
                             location=location)
    device.add_sensor("power", ClampedProfile(load, lo=0.0), sample_period)
    device.add_sensor(
        "energy",
        _CounterProfile(EnergyCounter(ClampedProfile(load, lo=0.0))),
        max(sample_period * 15, 900.0),
    )
    return device


def environment_sensor(device_id: str, protocol: str, address: str,
                       entity_id: str, indoor_base: float = 21.0,
                       sample_period: float = 300.0, seed: int = 0,
                       location: str = "") -> SimulatedDevice:
    """Room thermo-hygrometer."""
    device = SimulatedDevice(device_id, protocol, address, entity_id,
                             location=location)
    temperature = NoisyProfile(ConstantProfile(indoor_base), 0.8, seed)
    humidity = NoisyProfile(ConstantProfile(45.0), 5.0, seed + 1)
    device.add_sensor("temperature", temperature, sample_period)
    device.add_sensor("humidity", ClampedProfile(humidity, 0.0, 100.0),
                      sample_period)
    return device


def occupancy_sensor(device_id: str, protocol: str, address: str,
                     entity_id: str, sample_period: float = 120.0,
                     location: str = "") -> SimulatedDevice:
    """PIR occupancy sensor driven by the office occupancy pattern."""
    device = SimulatedDevice(device_id, protocol, address, entity_id,
                             location=location)

    class _Binary(Profile):
        def __init__(self):
            self.occupancy = OfficeOccupancyProfile()

        def value(self, t: float) -> float:
            return 1.0 if self.occupancy.value(t) > 0.3 else 0.0

    device.add_sensor("occupancy", _Binary(), sample_period)
    return device


def smart_plug(device_id: str, protocol: str, address: str, entity_id: str,
               load: Optional[Profile] = None, sample_period: float = 60.0,
               location: str = "") -> SimulatedDevice:
    """Switchable plug: senses power and state, accepts ``switch``."""
    device = SimulatedDevice(device_id, protocol, address, entity_id,
                             location=location)
    gate = _GatedProfile(load if load is not None
                         else ResidentialProfile(40.0, 250.0))
    device.add_sensor("power", ClampedProfile(gate, lo=0.0), sample_period)
    device.add_sensor("state", _SwitchStateProfile(gate), sample_period)

    def handle_switch(value: Optional[float]) -> None:
        gate.on = bool(value is None or value >= 0.5)

    device.add_actuator("switch", handle_switch, (0.0, 1.0))
    return device


def hvac_controller(device_id: str, protocol: str, address: str,
                    entity_id: str, weather: Optional[Profile] = None,
                    setpoint: float = 20.0,
                    ua_watts_per_k: float = 150.0,
                    sample_period: float = 120.0,
                    location: str = "") -> SimulatedDevice:
    """Heat-pump controller: power/setpoint channels, ``setpoint`` command."""
    device = SimulatedDevice(device_id, protocol, address, entity_id,
                             location=location)
    hvac = HvacProfile(weather if weather is not None else WeatherProfile(),
                       setpoint=setpoint, ua_watts_per_k=ua_watts_per_k)
    device.add_sensor("power", hvac, sample_period)
    device.add_sensor("setpoint", _SetpointProfile(hvac), sample_period)

    def handle_setpoint(value: Optional[float]) -> None:
        if value is not None:
            hvac.setpoint = value

    device.add_actuator("setpoint", handle_setpoint, (10.0, 28.0))
    return device


def dimmable_light(device_id: str, protocol: str, address: str,
                   entity_id: str, full_power: float = 400.0,
                   sample_period: float = 60.0,
                   location: str = "") -> SimulatedDevice:
    """Dimmable luminaire: power channel, ``dim`` command (0..1)."""
    device = SimulatedDevice(device_id, protocol, address, entity_id,
                             location=location)
    dimmed = _DimmedProfile(full_power)
    device.add_sensor("power", dimmed, sample_period)

    def handle_dim(value: Optional[float]) -> None:
        if value is not None:
            dimmed.level = min(max(value, 0.0), 1.0)

    device.add_actuator("dim", handle_dim, (0.0, 1.0))
    return device


def pv_inverter(device_id: str, protocol: str, address: str, entity_id: str,
                peak_watts: float = 5000.0, sample_period: float = 300.0,
                seed: int = 0, location: str = "") -> SimulatedDevice:
    """Photovoltaic inverter reporting (negative) generation power."""
    device = SimulatedDevice(device_id, protocol, address, entity_id,
                             location=location)
    device.add_sensor("power", PhotovoltaicProfile(peak_watts, seed),
                      sample_period)
    return device


def heat_flow_meter(device_id: str, protocol: str, address: str,
                    entity_id: str, nominal_flow: float = 4.0,
                    sample_period: float = 300.0, seed: int = 0,
                    location: str = "") -> SimulatedDevice:
    """District-heating substation meter: flow rate and supply pressure.

    Only protocols with flow/pressure profiles (OPC UA in our catalog)
    can carry these channels; SIM-side deployments use it via the wired
    OPC UA gateway, matching the paper's backward-compatibility story.
    """
    device = SimulatedDevice(device_id, protocol, address, entity_id,
                             location=location)
    flow = NoisyProfile(ConstantProfile(nominal_flow), 0.3 * nominal_flow,
                        seed)
    pressure = NoisyProfile(ConstantProfile(250.0), 8.0, seed + 1)
    device.add_sensor("flow_rate", ClampedProfile(flow, lo=0.0),
                      sample_period)
    device.add_sensor("pressure", ClampedProfile(pressure, lo=0.0),
                      sample_period)
    return device
