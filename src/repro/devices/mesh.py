"""Self-configuring multihop radio mesh (RPL-style).

Section III: IoT sensor development builds on "the 6LoWPAN, RPL and
CoAP protocols" with "special emphasis ... on network
self-configuration".  This module models that network layer: nodes with
physical positions and a fixed radio range organise themselves into a
DODAG rooted at the gateway (each node picks the neighbour with the
lowest rank as its parent, RPL's objective-function essence), frames
pay per-hop latency, and the mesh *self-heals* — when a node dies its
children re-select parents and the traffic reroutes.

:class:`MeshLink` is drop-in compatible with
:class:`~repro.devices.firmware.RadioLink`, so Device-proxies and
firmware work unchanged over a mesh.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.network.scheduler import Scheduler

Position = Tuple[float, float]
FrameHandler = Callable[[bytes], None]

GATEWAY = "__gateway__"


class MeshLink:
    """RadioLink-compatible endpoint for one mesh node."""

    def __init__(self, mesh: "MeshNetwork", node_id: str):
        self.mesh = mesh
        self.node_id = node_id
        self.frames_up = 0
        self.frames_down = 0
        self.frames_dropped = 0
        self._gateway_handler: Optional[FrameHandler] = None
        self._device_handler: Optional[FrameHandler] = None

    def attach_gateway(self, handler: FrameHandler) -> None:
        self._gateway_handler = handler

    def attach_device(self, handler: FrameHandler) -> None:
        self._device_handler = handler

    def uplink(self, frame: bytes) -> None:
        """Route device -> gateway over the current DODAG."""
        hops = self.mesh.hops(self.node_id)
        if hops is None or self._gateway_handler is None:
            self.frames_dropped += 1
            return
        self.frames_up += 1
        self.mesh.scheduler.schedule(
            hops * self.mesh.per_hop_latency,
            self._deliver_up, frame,
        )

    def _deliver_up(self, frame: bytes) -> None:
        # re-check liveness at delivery time: the path may have died
        if self.mesh.hops(self.node_id) is None or \
                self._gateway_handler is None:
            self.frames_dropped += 1
            return
        self._gateway_handler(frame)

    def downlink(self, frame: bytes) -> None:
        """Route gateway -> device over the current DODAG."""
        hops = self.mesh.hops(self.node_id)
        if hops is None or self._device_handler is None:
            self.frames_dropped += 1
            return
        self.frames_down += 1
        self.mesh.scheduler.schedule(
            hops * self.mesh.per_hop_latency,
            self._deliver_down, frame,
        )

    def _deliver_down(self, frame: bytes) -> None:
        if self.mesh.hops(self.node_id) is None or \
                self._device_handler is None:
            self.frames_dropped += 1
            return
        self._device_handler(frame)


class MeshNetwork:
    """A DODAG of radio nodes rooted at the gateway."""

    def __init__(self, scheduler: Scheduler,
                 gateway_position: Position = (0.0, 0.0),
                 radio_range_m: float = 60.0,
                 per_hop_latency: float = 0.004):
        if radio_range_m <= 0:
            raise ConfigurationError("radio range must be positive")
        if per_hop_latency < 0:
            raise ConfigurationError("per-hop latency must be >= 0")
        self.scheduler = scheduler
        self.gateway_position = gateway_position
        self.radio_range_m = radio_range_m
        self.per_hop_latency = per_hop_latency
        self.reconfigurations = 0
        self._positions: Dict[str, Position] = {GATEWAY: gateway_position}
        self._alive: Dict[str, bool] = {GATEWAY: True}
        self._parent: Dict[str, Optional[str]] = {}
        self._rank: Dict[str, Optional[int]] = {GATEWAY: 0}
        self._links: Dict[str, MeshLink] = {}

    # -- topology construction ---------------------------------------------

    def add_node(self, node_id: str, position: Position) -> MeshLink:
        """Join a node at *position*; it self-configures into the DODAG."""
        if node_id in self._positions:
            raise ConfigurationError(f"mesh node {node_id!r} exists")
        if node_id == GATEWAY:
            raise ConfigurationError("reserved node id")
        self._positions[node_id] = (float(position[0]), float(position[1]))
        self._alive[node_id] = True
        link = MeshLink(self, node_id)
        self._links[node_id] = link
        self._reconfigure()
        return link

    def _distance(self, a: str, b: str) -> float:
        (x1, y1), (x2, y2) = self._positions[a], self._positions[b]
        return math.hypot(x2 - x1, y2 - y1)

    def _neighbours(self, node_id: str) -> List[str]:
        return [
            other for other in self._positions
            if other != node_id and self._alive.get(other, False)
            and self._distance(node_id, other) <= self.radio_range_m
        ]

    def _reconfigure(self) -> None:
        """Rebuild ranks and parents (RPL DODAG formation).

        Breadth-first from the gateway: a node's rank is one more than
        its best reachable neighbour's, and its parent is the lowest-
        rank neighbour (nearest one on ties).  Unreachable nodes get no
        parent and drop traffic until the topology changes.
        """
        self.reconfigurations += 1
        self._rank = {node: None for node in self._positions}
        self._parent = {node: None for node in self._positions}
        self._rank[GATEWAY] = 0
        frontier = [GATEWAY]
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                for neighbour in self._neighbours(current):
                    if self._rank[neighbour] is not None:
                        continue
                    self._rank[neighbour] = self._rank[current] + 1
                    next_frontier.append(neighbour)
            next_frontier.sort()
            frontier = next_frontier
        for node in self._positions:
            if node == GATEWAY or self._rank[node] is None:
                continue
            candidates = [
                n for n in self._neighbours(node)
                if self._rank[n] is not None
                and self._rank[n] == self._rank[node] - 1
            ]
            if candidates:
                self._parent[node] = min(
                    candidates, key=lambda n: (self._distance(node, n), n)
                )

    # -- queries --------------------------------------------------------------

    def hops(self, node_id: str) -> Optional[int]:
        """Hop count to the gateway; None if dead or unreachable."""
        if not self._alive.get(node_id, False):
            return None
        return self._rank.get(node_id)

    def parent(self, node_id: str) -> Optional[str]:
        """Current DODAG parent of a node (None for root/unreachable)."""
        return self._parent.get(node_id)

    def route(self, node_id: str) -> List[str]:
        """Node path to the gateway; empty if unreachable."""
        if self.hops(node_id) is None:
            return []
        path = [node_id]
        current = node_id
        while current != GATEWAY:
            current = self._parent.get(current)
            if current is None:
                return []
            path.append(current)
        return path

    def reachable_nodes(self) -> List[str]:
        """Nodes currently routed to the gateway, sorted."""
        return sorted(
            node for node in self._positions
            if node != GATEWAY and self.hops(node) is not None
        )

    def hop_histogram(self) -> Dict[int, int]:
        """Hop-count distribution of reachable nodes."""
        histogram: Dict[int, int] = {}
        for node in self.reachable_nodes():
            hops = self.hops(node)
            histogram[hops] = histogram.get(hops, 0) + 1
        return histogram

    # -- failures & self-healing ----------------------------------------------

    def fail_node(self, node_id: str) -> None:
        """A relay dies; the mesh self-heals around it."""
        if node_id not in self._positions or node_id == GATEWAY:
            raise ConfigurationError(f"no mesh node {node_id!r} to fail")
        self._alive[node_id] = False
        self._reconfigure()

    def revive_node(self, node_id: str) -> None:
        """A failed node returns; routes may shorten again."""
        if node_id not in self._positions:
            raise ConfigurationError(f"no mesh node {node_id!r}")
        self._alive[node_id] = True
        self._reconfigure()
