"""Event-driven publish/subscribe middleware (SEEMPubS substitute).

Rebuilds the "main feature" of the middleware the paper's infrastructure
sits on: a topic broker with hierarchical topics and MQTT-style
wildcards, and a peer API used by device-proxies (publishing samples),
the global measurement database (subscribing to everything) and user
applications (subscribing to areas of interest).
"""

from repro.middleware.broker import Broker, BrokerStats, Event
from repro.middleware.peer import MiddlewarePeer, Subscription, connect
from repro.middleware.replication import (
    BrokerReplica,
    BrokerReplicationGroup,
    replicate_broker,
)
from repro.middleware.topics import (
    actuation_topic,
    district_filter,
    join,
    measurement_filter,
    measurement_topic,
    registry_topic,
    topic_matches,
)

__all__ = [
    "Broker",
    "BrokerReplica",
    "BrokerReplicationGroup",
    "BrokerStats",
    "Event",
    "MiddlewarePeer",
    "Subscription",
    "actuation_topic",
    "connect",
    "district_filter",
    "join",
    "measurement_filter",
    "measurement_topic",
    "registry_topic",
    "replicate_broker",
    "topic_matches",
]
