"""Topic broker of the event-driven middleware.

The paper's infrastructure publishes device data "into the middleware
network by exploiting a publish/subscribe approach, which is a main
feature of the SEEMPubS middleware".  :class:`Broker` is that feature
rebuilt: a service on the simulated network that accepts subscriptions
(with wildcards) and fans published events out to matching subscribers.

The broker speaks raw transport messages (not the REST layer) because
pub/sub is push-based; the control verbs are ``subscribe``,
``unsubscribe``, ``publish``, ``ping`` and the durable-data-plane pair
``delivery_ack`` / ``delivery_nack``.

Three opt-in mechanisms make the measurement path durable end-to-end:

* **Acked subscriptions** (``subscribe`` with ``ack: true``) — every
  delivery to such a subscriber carries a ``delivery_id`` and is held
  as *pending* until acknowledged; an unacknowledged delivery is resent
  after ``delivery_ack_timeout``.  Combined with the publishers'
  publish acks this yields at-least-once delivery from device proxy to
  measurement DB (consumers deduplicate, see
  :class:`~repro.storage.measurementdb.MeasurementDatabase`).
* **End-to-end publish acks** — when a reliable publication matches
  acked subscribers, the broker immediately answers ``pub-receipt``
  ("I have custody, consumers are settling") and defers the final
  ``pub-ack`` until every acked subscriber has acknowledged (or the
  event was poison-dead-lettered), so "acked" means "durably
  handled", not "received".  The receipt lets publishers distinguish
  slow consumer settling from a dead broker (see
  :class:`~repro.middleware.peer.MiddlewarePeer`'s settle timeout).
* **Dead-letter queue** — a delivery negatively acknowledged as
  *poison* (payload fails translation/validation) more than
  ``max_delivery_attempts`` times moves to a bounded dead-letter store
  (inspect via ``GET /deadletter``, drain via ``POST
  /deadletter/drain``) instead of wedging the consumer.  *Busy* nacks
  (consumer backpressure) reset the attempt budget: backpressure only
  delays redelivery and never dead-letters.  A consumer that stops
  responding entirely exhausts the budget and is dead-lettered with
  reason ``timeout`` — but, unlike poison, a timeout dead-letter
  withholds the end-to-end pub-ack so the publisher retransmits and
  the sample is delayed, not silently diverted.

:class:`BrokerOverloadConfig` adds backpressure: when the pending
delivery backlog crosses the high watermark (hysteresis down to the low
watermark), or one publisher exceeds its fairness quota of pending
deliveries, reliable publications are answered with a ``pub-reject``
(the pub/sub analogue of HTTP 429) carrying ``retry_after``; peers
honour it by pausing and buffering (see
:class:`~repro.middleware.peer.MiddlewarePeer`).  Unreliable
publications are shed outright while saturated.

Broker high availability (opt-in, composable):

* **Durable broker state** — pass a :class:`~repro.storage.durability.
  BrokerDurabilityConfig` and every state mutation (retained event,
  subscription, pending delivery, settle, dead-letter) is appended and
  fsync'd to a write-ahead log *before* the ack or fanout it enables;
  periodic snapshots (:func:`repro.persistence.save_broker_state`)
  bound replay.  After a crash (:meth:`Broker.reset`),
  :meth:`Broker.recover` restores retained topics, the subscription
  registry, pending acked deliveries (redelivery timers re-armed) and
  the dead-letter queue exactly.
* **Replicated failover** — :func:`repro.middleware.replication.
  replicate_broker` streams the same durable-state log to 1–2 standby
  brokers with the epoch-fenced seniority election of
  :mod:`repro.core.replication`.  A standby (or fenced deposed
  primary) answers every data-plane frame with ``not-primary`` so
  peers rotate to the promoted broker; the promoted standby re-arms
  the replicated pending deliveries, so at-least-once delivery holds
  across a broker kill.
"""

from __future__ import annotations

import sys
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Set, \
    Tuple

from repro.errors import ConfigurationError
from repro.middleware.topics import topic_matches, validate_filter, validate_topic
from repro.network.transport import Host, Message, estimate_size
from repro.network.webservice import (
    GET,
    POST,
    Request,
    Response,
    WebService,
    ok,
)
from repro.observability.tracing import TraceContext, emit

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.storage.durability import BrokerDurabilityConfig

BROKER_PORT = "pubsub"

#: topic level prefixed to a dead-lettered event's original topic
DEAD_LETTER_PREFIX = "deadletter"

#: distinct concrete topics whose match sets the broker caches
_MATCH_CACHE_CAP = 1024


@dataclass(slots=True)
class Event:
    """A pub/sub event as seen by a subscriber.

    Treated as immutable by convention; one is built per fan-out
    delivery, so construction stays on the plain dataclass path
    (``frozen=True`` pays ``object.__setattr__`` per field).
    """

    topic: str
    payload: Any
    published_at: float
    delivered_at: float
    publisher: str
    #: True when this is a stored last-value replayed at subscribe time
    retained: bool = False


@dataclass
class BrokerStats:
    """Counters exposed for the pub/sub benchmarks."""

    published: int = 0
    fanout_deliveries: int = 0
    subscriptions: int = 0
    dead_subscriptions_dropped: int = 0
    duplicate_subscriptions_ignored: int = 0
    publish_acks_sent: int = 0
    pings_answered: int = 0
    # -- durable data plane ------------------------------------------------
    deliveries_acked: int = 0
    redeliveries: int = 0
    consumer_busy: int = 0
    poison_nacks: int = 0
    dead_lettered: int = 0
    dead_letters_drained: int = 0
    dead_letters_evicted: int = 0
    pub_acks_withheld: int = 0
    publications_shed: int = 0
    publisher_rejections: int = 0
    # -- broker HA ---------------------------------------------------------
    recoveries: int = 0
    recovered_items: int = 0
    unrecovered_restarts: int = 0
    not_primary_refusals: int = 0


@dataclass
class BrokerOverloadConfig:
    """Backpressure knobs for the broker's pending-delivery backlog."""

    #: pending deliveries at which global shedding starts
    high_watermark: int = 256
    #: pending deliveries at which global shedding stops (hysteresis)
    low_watermark: int = 128
    #: max pending deliveries any single publisher may hold (fairness)
    publisher_quota: int = 64
    #: back-off advised to rejected publishers, simulated seconds
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.high_watermark < 1 or self.low_watermark < 0:
            raise ConfigurationError("watermarks must be positive")
        if self.low_watermark > self.high_watermark:
            raise ConfigurationError(
                "low watermark must not exceed high watermark"
            )
        if self.publisher_quota < 1:
            raise ConfigurationError("publisher quota must be >= 1")
        if self.retry_after <= 0:
            raise ConfigurationError("retry_after must be positive")


@dataclass
class _Sub:
    """One live subscription in the broker's table."""

    pattern: str
    subscriber: str
    port: str
    token: Optional[int] = None
    #: deliveries to this subscription must be acknowledged
    ack: bool = False


@dataclass
class _PendingDelivery:
    """One unacknowledged delivery to an acked subscription."""

    delivery_id: int
    sub_id: int
    subscriber: str
    port: str
    event: dict
    publisher: str
    topic: str
    attempts: int = 1
    #: poison nacks received (busy nacks do not count)
    poison_count: int = 0
    #: key of the publisher's pending pub-ack, None for unreliable
    pub_key: Optional[Tuple[str, str, int]] = None
    #: bumped on every redelivery; a pending ``_check_delivery`` timer
    #: from an earlier send is stale and must not redeliver again
    generation: int = 0


@dataclass
class _PendingPublish:
    """A reliable publication awaiting its acked subscribers."""

    publisher: str
    ack_port: str
    pub_id: int
    remaining: Set[int] = field(default_factory=set)
    #: a delivery timed out undeliverable: withhold the pub-ack so the
    #: publisher retransmits instead of believing the sample durable
    failed: bool = False


class Broker:
    """Central topic broker bound to a simulated host."""

    def __init__(self, host: Host,
                 overload: Optional[BrokerOverloadConfig] = None,
                 delivery_ack_timeout: float = 2.0,
                 max_delivery_attempts: int = 8,
                 dead_letter_capacity: int = 1024,
                 durability: Optional["BrokerDurabilityConfig"] = None):
        if delivery_ack_timeout <= 0:
            raise ConfigurationError("delivery ack timeout must be positive")
        if max_delivery_attempts < 1:
            raise ConfigurationError("delivery attempts must be >= 1")
        self.host = host
        self.stats = BrokerStats()
        self.overload = overload
        self.delivery_ack_timeout = delivery_ack_timeout
        self.max_delivery_attempts = max_delivery_attempts
        self.dead_letter_capacity = dead_letter_capacity
        self._subs: Dict[int, _Sub] = {}
        #: concrete topic -> sub_ids whose pattern matches, in
        #: subscription order — publish fan-out stops re-matching
        #: wildcards per event.  Cleared on ANY ``_subs`` mutation
        #: (subscribe, unsubscribe, replay, restore, dead-sub reaping);
        #: bounded so a topic-cardinality explosion cannot leak memory.
        self._match_cache: Dict[str, List[Tuple[int, int]]] = {}
        # topic -> last retained event payload (publish with retain=True)
        self._retained: Dict[str, dict] = {}
        self._next_sub_id = 1
        self._next_delivery_id = 1
        #: delivery_id -> unacknowledged delivery
        self._deliveries: Dict[int, _PendingDelivery] = {}
        #: (publisher, ack_port, pub_id) -> deferred end-to-end pub-ack
        self._pending_pubs: Dict[Tuple[str, str, int], _PendingPublish] = {}
        #: publisher host -> pending delivery count (fairness accounting)
        self._pending_by_publisher: Dict[str, int] = {}
        self._shedding = False
        self.dead_letters: Deque[dict] = deque(maxlen=dead_letter_capacity)
        self.shed_by_topic: Dict[str, int] = {}
        #: set by a BrokerReplica on attach (see middleware.replication)
        self.replication = None
        # -- durable broker state (broker HA layer 1) ----------------------
        self.durability = durability
        self.wal = None
        #: monotone id of the last logged state mutation; persisted in
        #: snapshots so a WAL tail overlapping the snapshot replays
        #: idempotently (records at or below the mark are skipped)
        self._op_seq = 0
        self.snapshots_written = 0
        self.last_snapshot_time: Optional[float] = None
        self._snapshot_task = None
        if durability is not None:
            if durability.wal_path:
                from repro.storage.durability import WriteAheadLog

                self.wal = WriteAheadLog(durability.wal_path)
            if durability.snapshot_path:
                self._snapshot_task = host.network.scheduler.every(
                    durability.snapshot_period, self.write_snapshot
                )
        host.bind(BROKER_PORT, self._on_message)
        # the broker's data plane stays raw pub/sub frames, but it serves
        # the same /health + /metrics endpoints as every other node so
        # the fleet collector can scrape it
        self.service = WebService(host)
        self.service.add_route(GET, "/health", self._health_route)
        self.service.add_route(GET, "/metrics", self._metrics_route)
        self.service.add_route(GET, "/deadletter", self._dead_letter_route)
        self.service.add_route(POST, "/deadletter/drain",
                               self._dead_letter_drain_route)

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def uri(self) -> str:
        """The broker's Web-Service base URI (health/metrics only)."""
        return self.service.base_uri

    def subscription_count(self) -> int:
        """Number of live subscriptions."""
        return len(self._subs)

    def pending_delivery_count(self) -> int:
        """Deliveries sent to acked subscribers but not yet acknowledged."""
        return len(self._deliveries)

    def data_plane_saturation(self) -> float:
        """Pending-delivery backlog as a fraction of the high watermark.

        0.0 when no overload config is installed; values >= 1.0 mean the
        broker is actively shedding load.
        """
        if self.overload is None:
            return 0.0
        return len(self._deliveries) / float(self.overload.high_watermark)

    # -- health + metrics endpoints ---------------------------------------

    def replication_status(self) -> Dict[str, Any]:
        """Role/epoch/lag summary, also valid for unreplicated brokers.

        The same uniform shape masters expose (see
        :meth:`repro.core.master.MasterNode.replication_status`): an
        unreplicated broker reports itself as a lone primary at epoch 0
        with zero lag, so ``repro fleet`` and the collector render
        brokers without special-casing.
        """
        if self.replication is not None:
            status = self.replication.status()
        else:
            status = {"role": "primary", "epoch": 0, "fenced": False,
                      "replication_lag": 0, "peers": 0}
        status["last_snapshot_age"] = self.last_snapshot_age
        return status

    @property
    def last_snapshot_age(self) -> Optional[float]:
        """Seconds since the last persisted snapshot (None if never)."""
        if self.last_snapshot_time is None:
            return None
        return self.host.network.scheduler.now - self.last_snapshot_time

    def health(self) -> Dict[str, Any]:
        """Liveness payload of the ``/health`` route."""
        payload = {
            "status": "ok",
            "kind": "broker",
            "subscriptions": len(self._subs),
            "retained_topics": len(self._retained),
            "pending_deliveries": len(self._deliveries),
            "shedding": self._shedding,
            "dead_letters": len(self.dead_letters),
        }
        payload.update(self.replication_status())
        return payload

    def metrics(self) -> Dict[str, Any]:
        """Numeric counters for the ``/metrics`` endpoint."""
        counters = {
            "published": self.stats.published,
            "fanout_deliveries": self.stats.fanout_deliveries,
            "subscriptions": self.stats.subscriptions,
            "live_subscriptions": len(self._subs),
            "retained_topics": len(self._retained),
            "dead_subscriptions_dropped":
                self.stats.dead_subscriptions_dropped,
            "duplicate_subscriptions_ignored":
                self.stats.duplicate_subscriptions_ignored,
            "publish_acks_sent": self.stats.publish_acks_sent,
            "pings_answered": self.stats.pings_answered,
            "pending_deliveries": len(self._deliveries),
            "deliveries_acked": self.stats.deliveries_acked,
            "redeliveries": self.stats.redeliveries,
            "consumer_busy": self.stats.consumer_busy,
            "poison_nacks": self.stats.poison_nacks,
            "dead_lettered": self.stats.dead_lettered,
            "dead_letters_queued": len(self.dead_letters),
            "dead_letters_evicted": self.stats.dead_letters_evicted,
            "pub_acks_withheld": self.stats.pub_acks_withheld,
            "publications_shed": self.stats.publications_shed,
            "publisher_rejections": self.stats.publisher_rejections,
            "data_plane_saturation": self.data_plane_saturation(),
            "shed_by_topic": dict(self.shed_by_topic),
            "recoveries": self.stats.recoveries,
            "recovered_items": self.stats.recovered_items,
            "unrecovered_restarts": self.stats.unrecovered_restarts,
            "not_primary_refusals": self.stats.not_primary_refusals,
            "snapshots_written": self.snapshots_written,
            "wal_appends": self.wal.appends if self.wal is not None else 0,
        }
        counters.update(self.replication_status())
        return counters

    def _health_route(self, request: Request) -> Response:
        return ok(self.health())

    def _metrics_route(self, request: Request) -> Response:
        registry = self.host.network.metrics
        return ok({
            "component": self.metrics(),
            "registry": registry.snapshot() if registry is not None else {},
        })

    def _dead_letter_route(self, request: Request) -> Response:
        return ok({
            "count": len(self.dead_letters),
            "events": list(self.dead_letters),
        })

    def _dead_letter_drain_route(self, request: Request) -> Response:
        drained = list(self.dead_letters)
        if drained:
            self._log({"op": "dlq_drain"})
        self.dead_letters.clear()
        self.stats.dead_letters_drained += len(drained)
        return ok({"drained": len(drained), "events": drained})

    def reset(self) -> None:
        """Simulate a broker crash-restart: all in-memory state is lost.

        Without durability, subscribers recover via their keepalive
        re-subscription (see :meth:`repro.middleware.peer.
        MiddlewarePeer.resubscribe_all`); publishers re-send
        publications that never earned a pub-ack from their offline
        buffers, and consumer-side dedup absorbs the resulting
        redeliveries.  With a :class:`~repro.storage.durability.
        BrokerDurabilityConfig`, call :meth:`recover` afterwards to
        restore the durable state from disk instead.
        """
        self._subs.clear()
        self._match_cache.clear()
        self._retained.clear()
        self._deliveries.clear()
        self._pending_pubs.clear()
        self._pending_by_publisher.clear()
        self._shedding = False
        self.dead_letters.clear()
        self._next_sub_id = 1
        self._next_delivery_id = 1
        self._op_seq = 0
        if self.wal is not None:
            self.wal.close()  # the dying process loses its file handle

    # -- durable broker state (WAL + snapshot + recover) -------------------

    def _log(self, record: Dict) -> None:
        """Durably record one state mutation, before it takes effect.

        The record lands in the WAL (fsync'd — ack-after-fsync for
        every retained/DLQ/delivery mutation) and, when this broker is
        the primary of a replication group, streams to the standbys:
        the durable-state log *is* the replication log.
        """
        self._op_seq += 1
        record["seq"] = self._op_seq
        if self.wal is not None:
            self.wal.append(record)
        if self.replication is not None:
            self.replication.record_write(record)

    def apply_op(self, record: Dict, live: bool = False) -> None:
        """Apply one logged state mutation (WAL replay / standby apply).

        *live* arms redelivery timers for restored pending deliveries;
        standbys apply with ``live=False`` (only the primary redelivers)
        and arm the timers at promotion
        (:meth:`activate_pending_deliveries`).  Records already covered
        by the loaded snapshot (``seq`` at or below the snapshot's
        high-water mark) are skipped, so a crash between "snapshot
        written" and "WAL truncated" replays idempotently.
        """
        seq = int(record.get("seq", 0))
        if seq and seq <= self._op_seq:
            return
        self._op_seq = max(self._op_seq, seq)
        op = record.get("op")
        if op == "retain":
            self._retained[record["topic"]] = dict(record["event"])
        elif op == "sub":
            sub_id = int(record["sub_id"])
            self._subs[sub_id] = _Sub(
                record["pattern"], record["subscriber"], record["port"],
                record.get("token"), bool(record.get("ack", False)),
            )
            self._match_cache.clear()
            self._next_sub_id = max(self._next_sub_id, sub_id + 1)
        elif op == "unsub":
            self._subs.pop(int(record["sub_id"]), None)
            self._match_cache.clear()
        elif op == "delivery":
            delivery_id = int(record["delivery_id"])
            if delivery_id in self._deliveries:
                return
            pub_key = tuple(record["pub_key"]) \
                if record.get("pub_key") else None
            delivery = _PendingDelivery(
                delivery_id=delivery_id, sub_id=int(record["sub_id"]),
                subscriber=record["subscriber"], port=record["port"],
                event=dict(record["event"]), publisher=record["publisher"],
                topic=record["topic"],
                attempts=int(record.get("attempts", 1)),
                pub_key=pub_key,
            )
            self._deliveries[delivery_id] = delivery
            self._next_delivery_id = max(self._next_delivery_id,
                                         delivery_id + 1)
            self._pending_by_publisher[delivery.publisher] = \
                self._pending_by_publisher.get(delivery.publisher, 0) + 1
            if pub_key is not None:
                pending_pub = self._pending_pubs.get(pub_key)
                if pending_pub is None:
                    pending_pub = _PendingPublish(
                        publisher=pub_key[0], ack_port=pub_key[1],
                        pub_id=pub_key[2],
                    )
                    self._pending_pubs[pub_key] = pending_pub
                pending_pub.remaining.add(delivery_id)
            if live:
                self.host.network.scheduler.schedule(
                    self.delivery_ack_timeout, self._check_delivery,
                    delivery_id, delivery.generation,
                )
        elif op == "settle":
            delivery = self._deliveries.get(int(record["delivery_id"]))
            if delivery is not None:
                # replayed settles never re-send pub-acks: the ack (if
                # due) was sent right after this record was logged
                self._settle_delivery(delivery,
                                      handled=bool(record.get("handled",
                                                              True)),
                                      notify=False)
        elif op == "dlq":
            self.dead_letters.append(dict(record["entry"]))
        elif op == "dlq_drain":
            self.dead_letters.clear()
        # unknown ops are ignored: a newer writer's records must not
        # wedge recovery on an older reader

    def state_snapshot(self) -> Dict[str, Any]:
        """The broker's full durable state as a JSON-able dict.

        Doubles as the replication snapshot payload
        (:meth:`~repro.middleware.replication.BrokerReplica.
        node_snapshot`) and the persisted snapshot body
        (:func:`repro.persistence.save_broker_state`).
        """
        return {
            "op_seq": self._op_seq,
            "next_sub_id": self._next_sub_id,
            "next_delivery_id": self._next_delivery_id,
            "retained": {topic: dict(event)
                         for topic, event in self._retained.items()},
            "subs": [{
                "sub_id": sub_id, "pattern": sub.pattern,
                "subscriber": sub.subscriber, "port": sub.port,
                "token": sub.token, "ack": sub.ack,
            } for sub_id, sub in self._subs.items()],
            "deliveries": [{
                "delivery_id": d.delivery_id, "sub_id": d.sub_id,
                "subscriber": d.subscriber, "port": d.port,
                "event": dict(d.event), "publisher": d.publisher,
                "topic": d.topic, "attempts": d.attempts,
                "poison_count": d.poison_count,
                "pub_key": list(d.pub_key) if d.pub_key else None,
            } for d in self._deliveries.values()],
            "failed_pubs": [list(key)
                            for key, pub in self._pending_pubs.items()
                            if pub.failed],
            "dead_letters": [dict(entry) for entry in self.dead_letters],
        }

    def restore_state(self, state: Dict[str, Any],
                      live: bool = False) -> None:
        """Replace all broker state with *state* (snapshot restore).

        *live* re-arms the redelivery timer of every restored pending
        delivery; pass ``False`` on standbys (only the primary may
        redeliver).
        """
        self._subs.clear()
        self._match_cache.clear()
        self._retained.clear()
        self._deliveries.clear()
        self._pending_pubs.clear()
        self._pending_by_publisher.clear()
        self.dead_letters.clear()
        self._op_seq = int(state.get("op_seq", 0))
        self._next_sub_id = int(state.get("next_sub_id", 1))
        self._next_delivery_id = int(state.get("next_delivery_id", 1))
        for topic, event in state.get("retained", {}).items():
            self._retained[topic] = dict(event)
        for sub in state.get("subs", []):
            self._subs[int(sub["sub_id"])] = _Sub(
                sub["pattern"], sub["subscriber"], sub["port"],
                sub.get("token"), bool(sub.get("ack", False)),
            )
        failed = {tuple(key) for key in state.get("failed_pubs", [])}
        for record in state.get("deliveries", []):
            pub_key = tuple(record["pub_key"]) \
                if record.get("pub_key") else None
            delivery = _PendingDelivery(
                delivery_id=int(record["delivery_id"]),
                sub_id=int(record["sub_id"]),
                subscriber=record["subscriber"], port=record["port"],
                event=dict(record["event"]),
                publisher=record["publisher"], topic=record["topic"],
                attempts=int(record.get("attempts", 1)),
                poison_count=int(record.get("poison_count", 0)),
                pub_key=pub_key,
            )
            self._deliveries[delivery.delivery_id] = delivery
            self._pending_by_publisher[delivery.publisher] = \
                self._pending_by_publisher.get(delivery.publisher, 0) + 1
            if pub_key is not None:
                pending_pub = self._pending_pubs.get(pub_key)
                if pending_pub is None:
                    pending_pub = _PendingPublish(
                        publisher=pub_key[0], ack_port=pub_key[1],
                        pub_id=pub_key[2], failed=pub_key in failed,
                    )
                    self._pending_pubs[pub_key] = pending_pub
                pending_pub.remaining.add(delivery.delivery_id)
        for entry in state.get("dead_letters", []):
            self.dead_letters.append(dict(entry))
        if live:
            self.activate_pending_deliveries()

    def activate_pending_deliveries(self) -> None:
        """Arm a redelivery timer for every pending delivery.

        Called after crash-restart recovery and at standby promotion:
        the deliveries were sent by the previous incarnation, so a
        consumer that already handled one simply acks it before the
        timer fires; one that never saw it gets a timed redelivery.
        Timers mutate nothing until they fire, which keeps the restored
        state byte-identical to the pre-crash snapshot.
        """
        scheduler = self.host.network.scheduler
        for delivery in self._deliveries.values():
            scheduler.schedule(
                self.delivery_ack_timeout, self._check_delivery,
                delivery.delivery_id, delivery.generation,
            )

    def write_snapshot(self) -> None:
        """Persist the durable state now and truncate the WAL."""
        if self.durability is None or not self.durability.snapshot_path:
            return
        from repro import persistence

        persistence.save_broker_state(self.state_snapshot(),
                                      self.durability.snapshot_path)
        if self.wal is not None:
            self.wal.reset()
        self.snapshots_written += 1
        self.last_snapshot_time = self.host.network.scheduler.now
        emit(self.host.network, "broker_snapshot", host=self.host.name,
             broker=self.host.name, path=self.durability.snapshot_path)

    def recover(self) -> Optional[int]:
        """Crash-restart recovery: load the snapshot, replay the WAL tail.

        Returns the number of durable items restored (retained topics +
        subscriptions + pending deliveries + dead letters), or None when
        the broker has no durability configured (nothing to recover
        from).  Restored pending deliveries get their redelivery timers
        re-armed, so unacknowledged pre-crash deliveries are redelivered
        rather than dropped; consumer-side dedup absorbs duplicates.
        """
        if self.durability is None:
            return None
        import os

        from repro import persistence

        path = self.durability.snapshot_path
        if path and os.path.exists(path):
            self.restore_state(persistence.load_broker_state(path))
        if self.wal is not None:
            for record in self.wal.replay():
                self.apply_op(record)
        restored = len(self._retained) + len(self._subs) \
            + len(self._deliveries) + len(self.dead_letters)
        self.stats.recoveries += 1
        self.stats.recovered_items += restored
        self.activate_pending_deliveries()
        emit(self.host.network, "broker_recovered", host=self.host.name,
             broker=self.host.name, restored=restored)
        return restored

    def discard_durable_state(self) -> None:
        """Wipe the on-disk artifacts (simulating losing the disk too)."""
        import os

        if self.wal is not None:
            self.wal.reset()
        if self.durability is not None and self.durability.snapshot_path \
                and os.path.exists(self.durability.snapshot_path):
            os.remove(self.durability.snapshot_path)

    # -- control-plane handling ------------------------------------------

    def _writable(self) -> bool:
        """True when this broker may accept data-plane frames.

        A standby (or a fenced deposed primary) must not accept
        publications, subscriptions or acks: doing so would fork the
        replicated state.  Mirrors the master's
        :meth:`~repro.core.replication.ReplicatedNode.check_writable`.
        """
        if self.replication is None:
            return True
        from repro.core.replication import PRIMARY

        return self.replication.role == PRIMARY \
            and not self.replication.fenced

    def _refuse(self, message: Message) -> None:
        """Answer a data-plane frame with ``not-primary``.

        The reply carries the replication view's primary hint so the
        peer rotates straight to the promoted broker.  Frames with no
        reply channel (acks/nacks) are dropped; the primary's
        redelivery timers absorb the loss.
        """
        self.stats.not_primary_refusals += 1
        payload = message.payload
        if payload.get("verb") in ("publish", "subscribe"):
            from repro.errors import NotPrimaryError

            # route writes through the replication gate so the
            # writes_rejected_* counters mean the same thing they do
            # for masters
            try:
                self.replication.check_writable()
            except NotPrimaryError:
                pass
        port = payload.get("ack_port") or payload.get("port")
        if not port:
            return
        reply = {
            "kind": "not-primary",
            "primary": self.replication.primary_name,
            "epoch": self.replication.epoch,
        }
        if payload.get("pub_id") is not None:
            reply["pub_id"] = payload["pub_id"]
        if payload.get("token") is not None:
            reply["token"] = payload["token"]
        self.host.send(message.sender, port, reply)

    def _on_message(self, message: Message) -> None:
        verb = message.payload.get("verb")
        profiler = self.host.network.profiler
        if profiler is None:
            self._handle_frame(message, verb)
            return
        frame = profiler.enter(self.host.name, "pubsub", verb or "?")
        try:
            self._handle_frame(message, verb)
        finally:
            profiler.exit(frame)

    def _handle_frame(self, message: Message, verb) -> None:
        """Dispatch one broker frame by verb (profiled by the caller)."""
        if not self._writable():
            self._refuse(message)
            return
        if verb == "subscribe":
            self._subscribe(message)
        elif verb == "unsubscribe":
            self._unsubscribe(message)
        elif verb == "publish":
            self._publish(message)
        elif verb == "ping":
            self._ping(message)
        elif verb == "delivery_ack":
            self._delivery_ack(message)
        elif verb == "delivery_nack":
            self._delivery_nack(message)
        # unknown verbs are dropped, like a real broker ignoring bad frames

    def _ping(self, message: Message) -> None:
        """Liveness probe (the MQTT PINGREQ/PINGRESP handshake)."""
        self.stats.pings_answered += 1
        self.host.send(message.sender, message.payload["port"],
                       {"kind": "pong",
                        "nonce": message.payload.get("nonce")})

    def _subscribe(self, message: Message) -> None:
        payload = message.payload
        pattern = payload["pattern"]
        validate_filter(pattern)
        token = payload.get("token")
        ack = bool(payload.get("ack", False))
        sub_id = None
        if token is not None:
            # keepalive re-subscription: same peer, port and token means
            # the same logical subscription — re-ack it, don't duplicate
            for existing_id, sub in self._subs.items():
                if sub.subscriber == message.sender and \
                        sub.port == payload["port"] and sub.token == token:
                    sub_id = existing_id
                    sub.ack = ack
                    self.stats.duplicate_subscriptions_ignored += 1
                    break
        replay_retained = sub_id is None
        if sub_id is None:
            sub_id = self._next_sub_id
            self._next_sub_id += 1
            self._log({"op": "sub", "sub_id": sub_id, "pattern": pattern,
                       "subscriber": message.sender,
                       "port": payload["port"], "token": token,
                       "ack": ack})
            self._subs[sub_id] = _Sub(sys.intern(pattern), message.sender,
                                      payload["port"], token, ack)
            self._match_cache.clear()
            self.stats.subscriptions += 1
        self.host.send(message.sender, payload["port"],
                       {"kind": "sub-ack", "sub_id": sub_id,
                        "token": token})
        # late-join state transfer: deliver matching retained events so a
        # new subscriber immediately knows each topic's last value (not
        # re-replayed on deduplicated keepalive re-subscriptions).
        # Replays are fire-and-forget even on acked subscriptions: the
        # consumer's dedup window absorbs them, and a lost replay only
        # delays the last-value until the next live publication.
        if replay_retained:
            for topic, retained in self._retained.items():
                if topic_matches(pattern, topic):
                    self.stats.fanout_deliveries += 1
                    event = dict(retained)
                    event["sub_id"] = sub_id
                    event["retained"] = True
                    self.host.send(message.sender, payload["port"], event)

    def _unsubscribe(self, message: Message) -> None:
        sub_id = message.payload.get("sub_id")
        if self._subs.pop(sub_id, None) is not None:
            self._match_cache.clear()
            self._log({"op": "unsub", "sub_id": sub_id})

    # -- backpressure ------------------------------------------------------

    def _count_shed(self, topic: str) -> None:
        self.stats.publications_shed += 1
        self.shed_by_topic[topic] = self.shed_by_topic.get(topic, 0) + 1
        registry = self.host.network.metrics
        if registry is not None:
            registry.counter("pubsub.publications_shed").inc()

    def _over_quota(self, publisher: str) -> bool:
        """Per-publisher fairness: one flooder cannot starve the rest."""
        if self.overload is None:
            return False
        pending = self._pending_by_publisher.get(publisher, 0)
        return pending >= self.overload.publisher_quota

    def _saturated(self) -> bool:
        """Global watermark check with hysteresis (the shedding latch)."""
        if self.overload is None:
            return False
        depth = len(self._deliveries)
        if self._shedding and depth <= self.overload.low_watermark:
            self._shedding = False
            emit(self.host.network, "broker_shedding_stopped",
                 host=self.host.name, broker=self.host.name, depth=depth)
        elif not self._shedding and depth >= self.overload.high_watermark:
            self._shedding = True
            emit(self.host.network, "broker_shedding_started",
                 host=self.host.name, broker=self.host.name, depth=depth)
        return self._shedding

    def _reject_publish(self, message: Message, fairness: bool) -> None:
        payload = message.payload
        topic = payload["topic"]
        self._count_shed(topic)
        if fairness:
            self.stats.publisher_rejections += 1
        emit(self.host.network, "publication_shed", host=self.host.name,
             broker=self.host.name, publisher=message.sender, topic=topic,
             cause="quota" if fairness else "watermark")
        if payload.get("pub_id") is not None and payload.get("ack_port"):
            # the pub/sub analogue of HTTP 429 + Retry-After: tell the
            # publisher to back off instead of silently dropping
            self.host.send(message.sender, payload["ack_port"], {
                "kind": "pub-reject",
                "pub_id": payload["pub_id"],
                "status": 429,
                "retry_after": self.overload.retry_after,
            })
        # unreliable publications are shed outright (no channel to say no)

    # -- publication -------------------------------------------------------

    def _publish(self, message: Message) -> None:
        payload = message.payload
        topic = payload["topic"]
        validate_topic(topic)
        over_quota = self._over_quota(message.sender)
        if self._saturated() or over_quota:
            self._reject_publish(message, fairness=over_quota)
            return
        self.stats.published += 1
        reliable = payload.get("pub_id") is not None and \
            payload.get("ack_port")
        span = None
        tracer = self.host.network.tracer
        if tracer is not None and tracer.enabled:
            context = TraceContext.from_dict(payload.get("trace"))
            if context is not None:
                # the broker hop: child of the publisher's span, parent
                # of every subscriber's delivery span
                span = tracer.start_span(f"fanout {topic}",
                                         kind="broker",
                                         host=self.host.name,
                                         parent=context)
        event = {
            "kind": "event",
            "topic": topic,
            "payload": payload.get("payload"),
            "published_at": payload.get("published_at", 0.0),
            "publisher": message.sender,
        }
        if span is not None:
            event["trace"] = span.header()
        if payload.get("retain"):
            # the span header is request-scoped: replaying it with the
            # retained copy at subscribe time — possibly much later —
            # would parent the delivery span under a long-finished
            # trace, so the stored copy drops it (replay deliveries are
            # root-less, like any untraced event)
            retained = dict(event)
            retained.pop("trace", None)
            # ack-after-fsync: the retained mutation is on disk (and
            # streamed to standbys) before any ack below can be sent
            self._log({"op": "retain", "topic": topic, "event": retained})
            self._retained[topic] = retained
        network = self.host.network
        pub_key: Optional[Tuple[str, str, int]] = None
        if reliable:
            pub_key = (message.sender, payload["ack_port"],
                       payload["pub_id"])
        dead: List[int] = []
        deliveries = 0
        acked_delivery_ids: List[int] = []
        subs = self._subs
        matched = self._match_cache.get(topic)
        if matched is None:
            # each entry carries the precomputed wire-size delta its
            # ``sub_id`` key adds to a fan-out envelope (', "sub_id": N')
            matched = [(sub_id, len(str(sub_id)) + 12)
                       for sub_id, sub in subs.items()
                       if topic_matches(sub.pattern, topic)]
            if len(self._match_cache) >= _MATCH_CACHE_CAP:
                self._match_cache.clear()
            self._match_cache[topic] = matched
        # the fan-out envelopes differ from `event` only by the small
        # ASCII keys added below, so their wire size is the base size
        # plus an exact per-key delta — estimated once per publish, not
        # once per subscriber
        base_size = estimate_size(event)
        send = self.host.send
        for sub_id, sub_id_delta in matched:
            sub = subs.get(sub_id)
            if sub is None:
                continue
            if not network.has_host(sub.subscriber):
                dead.append(sub_id)
                continue
            deliveries += 1
            fanout = dict(event)
            fanout["sub_id"] = sub_id
            size = base_size + sub_id_delta
            if sub.ack:
                delivery_id = self._next_delivery_id
                self._next_delivery_id += 1
                fanout["delivery_id"] = delivery_id
                size += len(str(delivery_id)) + 17  # + ', "delivery_id": N'
                self._log({
                    "op": "delivery", "delivery_id": delivery_id,
                    "sub_id": sub_id, "subscriber": sub.subscriber,
                    "port": sub.port, "event": dict(fanout),
                    "publisher": message.sender, "topic": topic,
                    "pub_key": list(pub_key) if pub_key else None,
                })
                self._deliveries[delivery_id] = _PendingDelivery(
                    delivery_id=delivery_id, sub_id=sub_id,
                    subscriber=sub.subscriber, port=sub.port,
                    event=dict(fanout), publisher=message.sender,
                    topic=topic, pub_key=pub_key,
                )
                self._pending_by_publisher[message.sender] = \
                    self._pending_by_publisher.get(message.sender, 0) + 1
                acked_delivery_ids.append(delivery_id)
                network.scheduler.schedule(
                    self.delivery_ack_timeout, self._check_delivery,
                    delivery_id, 0,
                )
            send(sub.subscriber, sub.port, fanout, size=size)
        self.stats.fanout_deliveries += deliveries
        for sub_id in dead:
            if subs.pop(sub_id, None) is not None:
                self._match_cache.clear()
            self.stats.dead_subscriptions_dropped += 1
        if reliable:
            if acked_delivery_ids:
                # end-to-end ack: defer the pub-ack until every acked
                # subscriber has durably handled (or dead-lettered) it
                self._pending_pubs[pub_key] = _PendingPublish(
                    publisher=message.sender,
                    ack_port=payload["ack_port"],
                    pub_id=payload["pub_id"],
                    remaining=set(acked_delivery_ids),
                )
                # immediate receipt: the broker has custody, consumers
                # are settling — stops the publisher's ack timeout from
                # reading slow consumer settling as a dead broker
                self.host.send(message.sender, payload["ack_port"],
                               {"kind": "pub-receipt",
                                "pub_id": payload["pub_id"]})
            else:
                self.stats.publish_acks_sent += 1
                self.host.send(message.sender, payload["ack_port"],
                               {"kind": "pub-ack",
                                "pub_id": payload["pub_id"]})
        if span is not None:
            span.attributes["deliveries"] = deliveries
            tracer.finish(span)

    # -- consumer acks, redelivery and dead-lettering ----------------------

    def _release_delivery(self, delivery: _PendingDelivery,
                          handled: bool = True) -> None:
        """Drop a pending delivery and settle its bookkeeping.

        *handled* is False when the delivery was abandoned without the
        consumer durably taking it (a timeout dead-letter): the
        publisher's end-to-end pub-ack is then withheld, so its own
        retry re-publishes the sample instead of trusting a false ack.
        """
        self._log({"op": "settle", "delivery_id": delivery.delivery_id,
                   "handled": handled})
        self._settle_delivery(delivery, handled, notify=True)

    def _settle_delivery(self, delivery: _PendingDelivery, handled: bool,
                         notify: bool) -> None:
        """Settle bookkeeping; *notify* gates pub-ack sends (False on
        WAL replay / standby apply — the ack was already sent, or is the
        live primary's to send)."""
        self._deliveries.pop(delivery.delivery_id, None)
        count = self._pending_by_publisher.get(delivery.publisher, 0) - 1
        if count > 0:
            self._pending_by_publisher[delivery.publisher] = count
        else:
            self._pending_by_publisher.pop(delivery.publisher, None)
        if delivery.pub_key is None:
            return
        pending_pub = self._pending_pubs.get(delivery.pub_key)
        if pending_pub is None:
            return
        if not handled:
            pending_pub.failed = True
        pending_pub.remaining.discard(delivery.delivery_id)
        if not pending_pub.remaining:
            self._pending_pubs.pop(delivery.pub_key, None)
            if pending_pub.failed:
                if notify:
                    self.stats.pub_acks_withheld += 1
                    emit(self.host.network, "pub_ack_withheld",
                         host=self.host.name, broker=self.host.name,
                         publisher=pending_pub.publisher,
                         pub_id=pending_pub.pub_id)
                return
            if not notify:
                return
            self.stats.publish_acks_sent += 1
            self.host.send(pending_pub.publisher, pending_pub.ack_port,
                           {"kind": "pub-ack",
                            "pub_id": pending_pub.pub_id})

    def _delivery_ack(self, message: Message) -> None:
        delivery = self._deliveries.get(
            message.payload.get("delivery_id")
        )
        if delivery is None:
            return  # late ack for a redelivered/reset delivery
        self.stats.deliveries_acked += 1
        self._release_delivery(delivery)

    def _delivery_nack(self, message: Message) -> None:
        payload = message.payload
        delivery = self._deliveries.get(payload.get("delivery_id"))
        if delivery is None:
            return
        if payload.get("poison"):
            self.stats.poison_nacks += 1
            delivery.poison_count += 1
            if delivery.poison_count >= self.max_delivery_attempts:
                self._dead_letter(delivery, reason="poison")
                return
            self._redeliver(delivery)
        else:
            # busy nack: consumer backpressure, not a poison payload —
            # redeliver after the ack timeout, never dead-letter.  The
            # consumer is demonstrably alive, so the attempt budget
            # resets: only consecutive *unanswered* deliveries may
            # exhaust it (sustained backpressure must never divert
            # acknowledged samples to the DLQ)
            self.stats.consumer_busy += 1
            delivery.attempts = 0

    def _check_delivery(self, delivery_id: int, generation: int) -> None:
        delivery = self._deliveries.get(delivery_id)
        if delivery is None:
            return  # acknowledged in time (or broker restarted)
        if delivery.generation != generation:
            return  # stale timer: the delivery was re-sent since
        if delivery.attempts >= self.max_delivery_attempts:
            self._dead_letter(delivery, reason="timeout")
            return
        self._redeliver(delivery)

    def _redeliver(self, delivery: _PendingDelivery) -> None:
        network = self.host.network
        if not network.has_host(delivery.subscriber):
            # the subscriber host is gone for good: nothing to deliver to
            if self._subs.pop(delivery.sub_id, None) is not None:
                self._match_cache.clear()
            self.stats.dead_subscriptions_dropped += 1
            self._release_delivery(delivery)
            return
        delivery.attempts += 1
        delivery.generation += 1  # invalidates any outstanding timer
        self.stats.redeliveries += 1
        emit(network, "delivery_redelivered", host=self.host.name,
             broker=self.host.name, topic=delivery.topic,
             subscriber=delivery.subscriber, attempt=delivery.attempts)
        self.host.send(delivery.subscriber, delivery.port,
                       dict(delivery.event))
        network.scheduler.schedule(
            self.delivery_ack_timeout, self._check_delivery,
            delivery.delivery_id, delivery.generation,
        )

    def _dead_letter(self, delivery: _PendingDelivery, reason: str) -> None:
        """Move a poison/undeliverable event to the dead-letter queue.

        The event is recorded in the bounded dead-letter store and also
        fanned out (fire-and-forget) on ``deadletter/<original topic>``
        so operators can subscribe a drain.  A *poison* dead-letter
        counts as handled for the publisher's end-to-end pub-ack (the
        sample was durably diverted, and retransmitting poison forever
        would wedge the pipeline the DLQ exists to protect); a
        *timeout* dead-letter — the consumer simply never answered —
        withholds the pub-ack so the publisher retransmits once the
        consumer is back.
        """
        self.stats.dead_lettered += 1
        entry = {
            "topic": delivery.topic,
            "payload": delivery.event.get("payload"),
            "publisher": delivery.publisher,
            "published_at": delivery.event.get("published_at", 0.0),
            "attempts": delivery.attempts,
            "reason": reason,
            "dead_lettered_at": self.host.network.scheduler.now,
        }
        registry = self.host.network.metrics
        if self.dead_letters.maxlen is not None and \
                len(self.dead_letters) >= self.dead_letters.maxlen:
            # the bounded store is full: the append below evicts the
            # oldest entry, which is real (dead-lettered, hence
            # publisher-acked for poison) data leaving the system —
            # never silently
            self.stats.dead_letters_evicted += 1
            if registry is not None:
                registry.counter("pubsub.dead_letters_evicted").inc()
            emit(self.host.network, "dead_letter_evicted",
                 host=self.host.name, broker=self.host.name,
                 topic=self.dead_letters[0].get("topic"))
        self._log({"op": "dlq", "entry": dict(entry)})
        self.dead_letters.append(entry)
        if registry is not None:
            registry.counter("pubsub.dead_lettered").inc()
        emit(self.host.network, "dead_letter", host=self.host.name,
             broker=self.host.name, topic=delivery.topic, reason=reason,
             attempts=delivery.attempts)
        self._release_delivery(delivery, handled=reason != "timeout")
        dlq_topic = f"{DEAD_LETTER_PREFIX}/{delivery.topic}"
        dlq_event = {
            "kind": "event",
            "topic": dlq_topic,
            "payload": entry,
            "published_at": self.host.network.scheduler.now,
            "publisher": self.host.name,
        }
        for sub_id, sub in self._subs.items():
            if not topic_matches(sub.pattern, dlq_topic):
                continue
            if not self.host.network.has_host(sub.subscriber):
                continue
            self.stats.fanout_deliveries += 1
            fanout = dict(dlq_event)
            fanout["sub_id"] = sub_id
            self.host.send(sub.subscriber, sub.port, fanout)


def broker_uri(broker: Broker) -> str:
    """Address string used by peers to reach the broker (host name)."""
    return broker.host.name


class BrokerClientError(ConfigurationError):
    """A peer was used before its broker address was configured."""
