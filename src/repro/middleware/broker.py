"""Topic broker of the event-driven middleware.

The paper's infrastructure publishes device data "into the middleware
network by exploiting a publish/subscribe approach, which is a main
feature of the SEEMPubS middleware".  :class:`Broker` is that feature
rebuilt: a service on the simulated network that accepts subscriptions
(with wildcards) and fans published events out to matching subscribers.

The broker speaks raw transport messages (not the REST layer) because
pub/sub is push-based; the control verbs are ``subscribe``,
``unsubscribe`` and ``publish``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.middleware.topics import topic_matches, validate_filter, validate_topic
from repro.network.transport import Host, Message
from repro.network.webservice import (
    GET,
    Request,
    Response,
    WebService,
    ok,
)
from repro.observability.tracing import TraceContext

BROKER_PORT = "pubsub"


@dataclass(frozen=True)
class Event:
    """A pub/sub event as seen by a subscriber."""

    topic: str
    payload: Any
    published_at: float
    delivered_at: float
    publisher: str
    #: True when this is a stored last-value replayed at subscribe time
    retained: bool = False


@dataclass
class BrokerStats:
    """Counters exposed for the pub/sub benchmarks."""

    published: int = 0
    fanout_deliveries: int = 0
    subscriptions: int = 0
    dead_subscriptions_dropped: int = 0
    duplicate_subscriptions_ignored: int = 0
    publish_acks_sent: int = 0
    pings_answered: int = 0


class Broker:
    """Central topic broker bound to a simulated host."""

    def __init__(self, host: Host):
        self.host = host
        self.stats = BrokerStats()
        # subscription id -> (pattern, subscriber host, port, token)
        self._subs: Dict[int, Tuple[str, str, str, Optional[int]]] = {}
        # topic -> last retained event payload (publish with retain=True)
        self._retained: Dict[str, dict] = {}
        self._ids = itertools.count(1)
        host.bind(BROKER_PORT, self._on_message)
        # the broker's data plane stays raw pub/sub frames, but it serves
        # the same /health + /metrics endpoints as every other node so
        # the fleet collector can scrape it
        self.service = WebService(host)
        self.service.add_route(GET, "/health", self._health_route)
        self.service.add_route(GET, "/metrics", self._metrics_route)

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def uri(self) -> str:
        """The broker's Web-Service base URI (health/metrics only)."""
        return self.service.base_uri

    def subscription_count(self) -> int:
        """Number of live subscriptions."""
        return len(self._subs)

    # -- health + metrics endpoints ---------------------------------------

    def health(self) -> Dict[str, Any]:
        """Liveness payload of the ``/health`` route."""
        return {
            "status": "ok",
            "role": "broker",
            "subscriptions": len(self._subs),
            "retained_topics": len(self._retained),
        }

    def metrics(self) -> Dict[str, Any]:
        """Numeric counters for the ``/metrics`` endpoint."""
        return {
            "published": self.stats.published,
            "fanout_deliveries": self.stats.fanout_deliveries,
            "subscriptions": self.stats.subscriptions,
            "live_subscriptions": len(self._subs),
            "retained_topics": len(self._retained),
            "dead_subscriptions_dropped":
                self.stats.dead_subscriptions_dropped,
            "duplicate_subscriptions_ignored":
                self.stats.duplicate_subscriptions_ignored,
            "publish_acks_sent": self.stats.publish_acks_sent,
            "pings_answered": self.stats.pings_answered,
        }

    def _health_route(self, request: Request) -> Response:
        return ok(self.health())

    def _metrics_route(self, request: Request) -> Response:
        registry = self.host.network.metrics
        return ok({
            "component": self.metrics(),
            "registry": registry.snapshot() if registry is not None else {},
        })

    def reset(self) -> None:
        """Simulate a broker crash-restart: all in-memory state is lost.

        Subscribers recover via their keepalive re-subscription (see
        :meth:`repro.middleware.peer.MiddlewarePeer.resubscribe_all`).
        """
        self._subs.clear()
        self._retained.clear()

    # -- control-plane handling ------------------------------------------

    def _on_message(self, message: Message) -> None:
        payload = message.payload
        verb = payload.get("verb")
        if verb == "subscribe":
            self._subscribe(message)
        elif verb == "unsubscribe":
            self._unsubscribe(message)
        elif verb == "publish":
            self._publish(message)
        elif verb == "ping":
            self._ping(message)
        # unknown verbs are dropped, like a real broker ignoring bad frames

    def _ping(self, message: Message) -> None:
        """Liveness probe (the MQTT PINGREQ/PINGRESP handshake)."""
        self.stats.pings_answered += 1
        self.host.send(message.sender, message.payload["port"],
                       {"kind": "pong",
                        "nonce": message.payload.get("nonce")})

    def _subscribe(self, message: Message) -> None:
        payload = message.payload
        pattern = payload["pattern"]
        validate_filter(pattern)
        token = payload.get("token")
        sub_id = None
        if token is not None:
            # keepalive re-subscription: same peer, port and token means
            # the same logical subscription — re-ack it, don't duplicate
            for existing_id, (_, subscriber, port, sub_token) \
                    in self._subs.items():
                if subscriber == message.sender and \
                        port == payload["port"] and sub_token == token:
                    sub_id = existing_id
                    self.stats.duplicate_subscriptions_ignored += 1
                    break
        replay_retained = sub_id is None
        if sub_id is None:
            sub_id = next(self._ids)
            self._subs[sub_id] = (pattern, message.sender, payload["port"],
                                  token)
            self.stats.subscriptions += 1
        self.host.send(message.sender, payload["port"],
                       {"kind": "sub-ack", "sub_id": sub_id,
                        "token": token})
        # late-join state transfer: deliver matching retained events so a
        # new subscriber immediately knows each topic's last value (not
        # re-replayed on deduplicated keepalive re-subscriptions)
        if replay_retained:
            for topic, retained in self._retained.items():
                if topic_matches(pattern, topic):
                    self.stats.fanout_deliveries += 1
                    event = dict(retained)
                    event["sub_id"] = sub_id
                    event["retained"] = True
                    self.host.send(message.sender, payload["port"], event)

    def _unsubscribe(self, message: Message) -> None:
        self._subs.pop(message.payload.get("sub_id"), None)

    def _publish(self, message: Message) -> None:
        payload = message.payload
        topic = payload["topic"]
        validate_topic(topic)
        self.stats.published += 1
        if payload.get("pub_id") is not None and payload.get("ack_port"):
            # reliable publication: confirm receipt to the publisher
            self.stats.publish_acks_sent += 1
            self.host.send(message.sender, payload["ack_port"],
                           {"kind": "pub-ack", "pub_id": payload["pub_id"]})
        span = None
        tracer = self.host.network.tracer
        if tracer is not None and tracer.enabled:
            context = TraceContext.from_dict(payload.get("trace"))
            if context is not None:
                # the broker hop: child of the publisher's span, parent
                # of every subscriber's delivery span
                span = tracer.start_span(f"fanout {topic}",
                                         kind="broker",
                                         host=self.host.name,
                                         parent=context)
        event = {
            "kind": "event",
            "topic": topic,
            "payload": payload.get("payload"),
            "published_at": payload.get("published_at", 0.0),
            "publisher": message.sender,
        }
        if span is not None:
            event["trace"] = span.header()
        if payload.get("retain"):
            # the span header is request-scoped: replaying it with the
            # retained copy at subscribe time — possibly much later —
            # would parent the delivery span under a long-finished
            # trace, so the stored copy drops it (replay deliveries are
            # root-less, like any untraced event)
            retained = dict(event)
            retained.pop("trace", None)
            self._retained[topic] = retained
        network = self.host.network
        dead: List[int] = []
        deliveries = 0
        for sub_id, (pattern, subscriber, port, _token) in \
                self._subs.items():
            if not topic_matches(pattern, topic):
                continue
            if not network.has_host(subscriber):
                dead.append(sub_id)
                continue
            self.stats.fanout_deliveries += 1
            deliveries += 1
            fanout = dict(event)
            fanout["sub_id"] = sub_id
            self.host.send(subscriber, port, fanout)
        for sub_id in dead:
            self._subs.pop(sub_id, None)
            self.stats.dead_subscriptions_dropped += 1
        if span is not None:
            span.attributes["deliveries"] = deliveries
            tracer.finish(span)


def broker_uri(broker: Broker) -> str:
    """Address string used by peers to reach the broker (host name)."""
    return broker.host.name


class BrokerClientError(ConfigurationError):
    """A peer was used before its broker address was configured."""
