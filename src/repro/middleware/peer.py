"""Peer-side API of the pub/sub middleware.

A :class:`MiddlewarePeer` lives on any simulated host (device-proxy,
measurement database, end-user application) and provides ``publish`` /
``subscribe`` against a :class:`~repro.middleware.broker.Broker`.
Subscriptions carry a local callback; events arrive asynchronously as
the scheduler runs.

Two opt-in hardening mechanisms make a peer survive broker outages:

* **Buffered publication** (``publish_buffer=N``): every publish is
  acknowledged by the broker.  A missing ack marks the broker *suspect*;
  from then on publications land in a bounded FIFO buffer (oldest
  dropped beyond *N*) while a periodic ping probes the broker.  The
  first pong flushes the buffer in order, so data produced during an
  outage reaches subscribers late instead of never.
* **Subscription keepalive** (``keepalive=T``): every *T* simulated
  seconds the peer re-issues all active subscriptions.  The broker
  deduplicates them by token, so a healthy broker sees a no-op while a
  crash-restarted broker (its subscription table lost) is repopulated
  within one keepalive period.  :meth:`resubscribe_all` does the same
  on demand.

Two more mechanisms complete the durable data plane (PR 6):

* **Acked subscriptions** (``subscribe(..., ack=True)``): deliveries
  carry a ``delivery_id`` and the peer acknowledges each one after the
  callback returns.  A callback raising
  :class:`~repro.errors.BackpressureError` sends a *busy* nack (the
  broker redelivers later); any other exception sends a *poison* nack
  (counted toward the broker's dead-letter threshold).
* **Publish rejection** (``pub-reject``): a saturated broker answers a
  reliable publication with the pub/sub analogue of HTTP 429 +
  Retry-After.  The peer parks the publication in its offline buffer,
  pauses publishing for the advised interval, then flushes — load is
  delayed, not lost, and the broker is not hammered while shedding.
* **Publish receipts** (``pub-receipt``): when the broker defers the
  end-to-end pub-ack until its acked consumers settle, it answers an
  immediate receipt.  A publication with a receipt is given
  ``settle_timeout`` (default ``8 × ack_timeout``) instead of
  ``ack_timeout`` before being re-buffered, so legitimately slow
  consumer settling (ingest queues, busy-nack redelivery) does not
  falsely mark a healthy broker suspect and duplicate the
  publication.  A publication whose final ack never arrives within
  the settle budget is still re-published (at-least-once; consumer
  dedup absorbs it).

With replicated brokers (PR 8), *broker_host* may be a **list** of
broker hosts in seniority order — the pub/sub analogue of the REST
clients' :class:`~repro.network.resilience.FailoverSet`.  The peer
talks to one broker at a time (sticky cursor) and rotates when either
a broker answers ``not-primary`` (a standby or fenced deposed primary;
the reply's primary hint is followed when it names a member of the
set) or the suspect-probe pings go unanswered twice in a row (a dead
broker).  On rotation the peer re-issues every subscription against
the new broker (which replays retained events for genuinely new
subscriptions and dedupes known tokens) and flushes buffered
publications; consumer-side dedup absorbs the re-publications.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, \
    Set, Union

from repro.errors import BackpressureError, ConfigurationError
from repro.middleware.broker import BROKER_PORT, Event
from repro.middleware.topics import validate_filter, validate_topic
from repro.network.transport import Host, Message
from repro.observability.tracing import (
    CONSUMER,
    PRODUCER,
    TraceContext,
    emit,
)

EventCallback = Callable[[Event], None]


class Subscription:
    """Handle to one active subscription; cancel with :meth:`unsubscribe`."""

    def __init__(self, peer: "MiddlewarePeer", token: int, pattern: str,
                 callback: EventCallback, ack: bool = False):
        self.peer = peer
        self.token = token
        self.pattern = pattern
        self.callback = callback
        self.ack = ack
        self.sub_id: Optional[int] = None  # assigned by broker ack
        self.events_received = 0
        self.active = True

    def unsubscribe(self) -> None:
        """Stop receiving events on this subscription."""
        if self.active:
            self.active = False
            self.peer._unsubscribe(self)


class MiddlewarePeer:
    """Publish/subscribe endpoint on a simulated host."""

    _port_ids = itertools.count(1)

    def __init__(self, host: Host,
                 broker_host: Union[str, Sequence[str]],
                 publish_buffer: Optional[int] = None,
                 ack_timeout: float = 2.0,
                 keepalive: Optional[float] = None,
                 settle_timeout: Optional[float] = None):
        if publish_buffer is not None and publish_buffer < 1:
            raise ConfigurationError("publish buffer must hold >= 1 event")
        if ack_timeout <= 0:
            raise ConfigurationError("ack timeout must be positive")
        if settle_timeout is None:
            # must exceed the consumers' worst-case settle time (ingest
            # queues draining, busy-nack redelivery rounds at the
            # broker's delivery_ack_timeout) or healthy deferred acks
            # are read as loss and re-published
            settle_timeout = 8.0 * ack_timeout
        if settle_timeout <= 0:
            raise ConfigurationError("settle timeout must be positive")
        self.host = host
        if isinstance(broker_host, str):
            self._brokers: List[str] = [broker_host]
        else:
            self._brokers = list(broker_host)
        if not self._brokers:
            raise ConfigurationError("peer needs >= 1 broker host")
        self._broker_index = 0
        self.broker_failovers = 0
        self._probes_unanswered = 0
        self.events_published = 0
        self.publish_buffer = publish_buffer
        self.ack_timeout = ack_timeout
        self.settle_timeout = settle_timeout
        self.publications_acked = 0
        self.publication_receipts = 0
        self.publications_buffered = 0
        self.publications_dropped = 0
        self.publications_flushed = 0
        self.publications_rejected = 0
        self.deliveries_acked = 0
        self.deliveries_nacked = 0
        self.resubscribes_sent = 0
        self.dropped_by_topic: Dict[str, int] = {}
        self._paused_until = float("-inf")
        self._port = f"pubsub-peer-{next(self._port_ids)}"
        self._token_ids = itertools.count(1)
        self._by_token: Dict[int, Subscription] = {}
        self._by_sub_id: Dict[int, Subscription] = {}
        self._pub_ids = itertools.count(1)
        self._pending_pubs: Dict[int, dict] = {}
        #: pub_ids the broker sent a pub-receipt for (custody taken,
        #: consumers settling) whose settle budget has not been spent
        self._receipts: Set[int] = set()
        self._buffer: Deque[dict] = deque()
        self._broker_suspect = False
        self._probe_task = None
        self._ping_ids = itertools.count(1)
        self._keepalive_task = None
        if keepalive is not None:
            self._keepalive_task = host.network.scheduler.every(
                keepalive, self._keepalive
            )
        host.bind(self._port, self._on_message)

    @property
    def broker_host(self) -> str:
        """The broker this peer currently talks to (rotation cursor)."""
        return self._brokers[self._broker_index]

    @property
    def broker_hosts(self) -> List[str]:
        """The full broker rotation, seniority order."""
        return list(self._brokers)

    def rotate_broker(self, target: Optional[str] = None) -> str:
        """Advance the broker rotation (or jump to *target* if known).

        Re-issues every active subscription against the new broker so
        acked-delivery dispatch and retained replay continue there.
        Returns the new current broker; a no-op for single-broker peers
        or when *target* is already current.
        """
        if len(self._brokers) <= 1:
            return self.broker_host
        previous = self.broker_host
        if target in self._brokers:
            index = self._brokers.index(target)
            if index == self._broker_index:
                return previous
            self._broker_index = index
        else:
            self._broker_index = \
                (self._broker_index + 1) % len(self._brokers)
        self.broker_failovers += 1
        self._probes_unanswered = 0
        emit(self.host.network, "broker_failover", host=self.host.name,
             peer=self.host.name, previous=previous,
             broker=self.broker_host)
        self.resubscribe_all()
        return self.broker_host

    def _on_not_primary(self, payload: dict) -> None:
        """A standby/fenced broker refused a frame: follow its hint.

        Any pending publication it refused is re-buffered, the rotation
        moves (to the hinted primary when it is in the set), and the
        buffer is flushed at the new broker — the refusal proves *some*
        broker is alive, and a flush landing on another non-primary
        just loops back here until the rotation settles on the
        promoted member.
        """
        pub_id = payload.get("pub_id")
        if pub_id is not None:
            envelope = self._pending_pubs.pop(pub_id, None)
            self._receipts.discard(pub_id)
            if envelope is not None:
                self._enqueue(envelope)
        before = self.broker_host
        self.rotate_broker(payload.get("primary"))
        if self.broker_host == before:
            # nowhere else to go (single-entry rotation): pace retries
            # at the probe period instead of hot-looping
            # flush -> refusal -> flush against the refusing broker
            self._mark_suspect()
            return
        self._broker_alive()

    @property
    def broker_suspect(self) -> bool:
        """True while publish acks are missing and the probe is running."""
        return self._broker_suspect

    @property
    def buffered(self) -> int:
        """Publications currently parked in the offline buffer."""
        return len(self._buffer)

    @property
    def paused(self) -> bool:
        """True while honouring a broker pub-reject's Retry-After."""
        return self.host.network.scheduler.now < self._paused_until

    def close(self) -> None:
        """Stop the periodic keepalive/probe tasks (teardown)."""
        if self._keepalive_task is not None:
            self._keepalive_task.stop()
            self._keepalive_task = None
        if self._probe_task is not None:
            self._probe_task.stop()
            self._probe_task = None

    # -- publication ------------------------------------------------------

    def publish(self, topic: str, payload: Any, retain: bool = False
                ) -> None:
        """Publish *payload* on concrete *topic* via the broker.

        With *retain*, the broker stores the event as the topic's last
        value and replays it to future subscribers on subscribe.
        """
        validate_topic(topic)
        self.events_published += 1
        envelope = {
            "verb": "publish",
            "topic": topic,
            "payload": payload,
            "published_at": self.host.network.scheduler.now,
            "retain": retain,
        }
        tracer = self.host.network.tracer
        if tracer is not None and tracer.enabled:
            # producer span: the local hand-off to the broker.  Its
            # context rides in the envelope (and survives buffering),
            # so the broker fanout and every delivery nest under it.
            span = tracer.start_span(f"publish {topic}", kind=PRODUCER,
                                     host=self.host.name)
            envelope["trace"] = span.header()
            tracer.finish(span)
        if self.publish_buffer is None:
            self.host.send(self.broker_host, BROKER_PORT, envelope)
            return
        if self._broker_suspect or self.paused:
            self._enqueue(envelope)
            return
        self._send_reliable(envelope)

    def _send_reliable(self, envelope: dict) -> None:
        pub_id = next(self._pub_ids)
        self._pending_pubs[pub_id] = envelope
        tracked = dict(envelope)
        tracked["pub_id"] = pub_id
        tracked["ack_port"] = self._port
        self.host.send(self.broker_host, BROKER_PORT, tracked)
        self.host.network.scheduler.schedule(
            self.ack_timeout, self._pub_timeout, pub_id
        )

    def _pub_timeout(self, pub_id: int) -> None:
        envelope = self._pending_pubs.get(pub_id)
        if envelope is None:
            self._receipts.discard(pub_id)
            return  # acked in time
        if pub_id in self._receipts:
            # the broker holds the publication and its consumers are
            # settling (deferred end-to-end ack): allow the settle
            # budget before treating the publication as lost
            self._receipts.discard(pub_id)
            self.host.network.scheduler.schedule(
                self.settle_timeout, self._pub_timeout, pub_id
            )
            return
        self._pending_pubs.pop(pub_id, None)
        self._enqueue(envelope)
        self._mark_suspect()

    def _enqueue(self, envelope: dict) -> None:
        if len(self._buffer) >= self.publish_buffer:
            dropped = self._buffer.popleft()
            topic = str(dropped.get("topic"))
            self.publications_dropped += 1
            self.dropped_by_topic[topic] = \
                self.dropped_by_topic.get(topic, 0) + 1
            # counters live in the network-wide registry so the drops
            # show up in every /metrics scrape — including the broker's,
            # which the fleet collector and loss SLOs read
            registry = self.host.network.metrics
            if registry is not None:
                registry.counter("pubsub.publications_dropped").inc()
                registry.counter(
                    f"pubsub.publications_dropped.{topic}"
                ).inc()
            emit(self.host.network, "publication_dropped",
                 host=self.host.name, peer=self.host.name,
                 topic=dropped.get("topic"))
        self._buffer.append(envelope)
        self.publications_buffered += 1

    def _mark_suspect(self) -> None:
        if self._broker_suspect:
            return
        self._broker_suspect = True
        emit(self.host.network, "broker_suspect", host=self.host.name,
             peer=self.host.name, broker=self.broker_host)
        if self._probe_task is None:
            self._probe_task = self.host.network.scheduler.every(
                self.ack_timeout, self._probe
            )

    def _probe(self) -> None:
        if not self._broker_suspect:
            return
        # still suspect means the previous probe's pong never came:
        # after two silent probes try the next broker in the rotation
        # (a dead broker cannot even say not-primary)
        self._probes_unanswered += 1
        if self._probes_unanswered >= 3 and len(self._brokers) > 1:
            self.rotate_broker()
        self.host.send(self.broker_host, BROKER_PORT, {
            "verb": "ping",
            "port": self._port,
            "nonce": next(self._ping_ids),
        })

    def _broker_alive(self) -> None:
        """An ack or pong arrived: flush everything parked."""
        self._probes_unanswered = 0
        recovered = self._broker_suspect
        if self._broker_suspect:
            self._broker_suspect = False
            if self._probe_task is not None:
                self._probe_task.stop()
                self._probe_task = None
        if self.paused:
            return  # honour the broker's Retry-After before flushing
        flushed = 0
        while self._buffer and not self._broker_suspect and not self.paused:
            envelope = self._buffer.popleft()
            self.publications_flushed += 1
            flushed += 1
            self._send_reliable(envelope)
        if recovered:
            emit(self.host.network, "buffer_flush", host=self.host.name,
                 peer=self.host.name, broker=self.broker_host,
                 flushed=flushed)

    def _on_pub_reject(self, payload: dict) -> None:
        """Broker said 429: park the publication and back off."""
        envelope = self._pending_pubs.pop(payload.get("pub_id"), None)
        self._receipts.discard(payload.get("pub_id"))
        self.publications_rejected += 1
        if envelope is not None:
            self._enqueue(envelope)
        retry_after = float(payload.get("retry_after", self.ack_timeout))
        now = self.host.network.scheduler.now
        resume_at = now + retry_after
        if resume_at > self._paused_until:
            self._paused_until = resume_at
            self.host.network.scheduler.schedule(
                retry_after, self._resume_publishing
            )
        emit(self.host.network, "publication_rejected",
             host=self.host.name, peer=self.host.name,
             broker=self.broker_host, retry_after=retry_after)

    def _resume_publishing(self) -> None:
        if self.paused or self._broker_suspect:
            return  # a later reject extended the pause, or broker is down
        flushed = 0
        while self._buffer and not self.paused and not self._broker_suspect:
            envelope = self._buffer.popleft()
            self.publications_flushed += 1
            flushed += 1
            self._send_reliable(envelope)
        if flushed:
            emit(self.host.network, "buffer_flush", host=self.host.name,
                 peer=self.host.name, broker=self.broker_host,
                 flushed=flushed)

    # -- subscription -----------------------------------------------------

    def subscribe(self, pattern: str, callback: EventCallback,
                  ack: bool = False) -> Subscription:
        """Subscribe *callback* to events matching *pattern*.

        The subscription becomes live once the broker's ack arrives (a
        network round-trip later); events published before that are not
        delivered, matching real broker semantics.

        With *ack*, every delivery is acknowledged back to the broker
        after the callback returns (at-least-once); a callback raising
        :class:`~repro.errors.BackpressureError` nacks *busy*, any
        other exception nacks *poison* (see the broker's dead-letter
        queue).
        """
        validate_filter(pattern)
        token = next(self._token_ids)
        subscription = Subscription(self, token, pattern, callback, ack=ack)
        self._by_token[token] = subscription
        self._send_subscribe(subscription)
        if len(self._brokers) > 1:
            # a lost sub-ack is a subscriber-only peer's first (and
            # possibly only) sign the broker is down: arm the suspect
            # probe so the rotation can steer this subscription to a
            # live broker (pointless without a rotation — and skipping
            # it keeps single-broker schedulers free of timer noise)
            self.host.network.scheduler.schedule(
                self.ack_timeout, self._sub_ack_check, subscription.token
            )
        return subscription

    def _sub_ack_check(self, token: int) -> None:
        subscription = self._by_token.get(token)
        if subscription is None or not subscription.active \
                or subscription.sub_id is not None:
            return
        self._mark_suspect()

    def _send_subscribe(self, subscription: Subscription) -> None:
        self.host.send(
            self.broker_host,
            BROKER_PORT,
            {
                "verb": "subscribe",
                "pattern": subscription.pattern,
                "port": self._port,
                "token": subscription.token,
                "ack": subscription.ack,
            },
        )

    def resubscribe_all(self) -> int:
        """Re-issue every active subscription (broker dedupes by token).

        Used after a broker crash-restart (manually or via the periodic
        keepalive) to repopulate the broker's lost subscription table;
        returns the number of subscriptions re-sent.
        """
        sent = 0
        for subscription in self._by_token.values():
            if subscription.active:
                self._send_subscribe(subscription)
                sent += 1
        self.resubscribes_sent += sent
        return sent

    def _keepalive(self) -> None:
        self.resubscribe_all()

    def _unsubscribe(self, subscription: Subscription) -> None:
        if subscription.sub_id is not None:
            self.host.send(
                self.broker_host,
                BROKER_PORT,
                {"verb": "unsubscribe", "sub_id": subscription.sub_id},
            )

    # -- inbound ----------------------------------------------------------

    def _on_message(self, message: Message) -> None:
        payload = message.payload
        kind = payload.get("kind")
        profiler = self.host.network.profiler
        if profiler is None:
            self._handle_frame(message, payload, kind)
            return
        frame = profiler.enter(self.host.name, "peer", kind or "?")
        try:
            self._handle_frame(message, payload, kind)
        finally:
            profiler.exit(frame)

    def _handle_frame(self, message: Message, payload, kind) -> None:
        """Dispatch one peer frame by kind (profiled by the caller).

        ``event`` — the fan-out delivery — is checked first: it
        outnumbers every control frame combined on a busy bus.
        """
        if kind == "event":
            sender = message.sender
            if sender != self._brokers[self._broker_index] \
                    and sender in self._brokers:
                # deliveries only ever come from the live primary: a
                # promoted standby redelivering the replicated pending
                # deliveries is this subscriber's cue to rotate (a
                # subscriber-only peer has no publish timeouts to
                # detect the failover otherwise)
                self.rotate_broker(sender)
            # the broker fans out one copy per matching subscription and
            # tags it with the subscription id, so dispatch is exact even
            # when several local filters overlap
            sub = self._by_sub_id.get(payload.get("sub_id"))
            if sub is None or not sub.active:
                return
            sub.events_received += 1
            network = self.host.network
            now = network.scheduler.clock._now
            event = Event(
                payload["topic"],
                payload["payload"],
                payload["published_at"],
                now,
                payload["publisher"],
                True if payload.get("retained") else False,
            )
            span = None
            tracer = network.tracer
            if tracer is not None and tracer.enabled:
                ctx = TraceContext.from_dict(payload.get("trace"))
                if ctx is not None:
                    # consumer span: child of the broker fanout span, so
                    # a delivery nests publish -> fanout -> deliver and
                    # its duration is the subscriber callback time
                    span = tracer.start_span(
                        f"deliver {event.topic}", kind=CONSUMER,
                        host=self.host.name, parent=ctx,
                        attributes={
                            "latency": now - event.published_at,
                            "retained": event.retained,
                        },
                    )
            if span is not None:
                tracer.push(span)
                try:
                    self._dispatch(sub, event, payload, sender)
                finally:
                    tracer.pop()
                    tracer.finish(span)
            elif payload.get("delivery_id") is None:
                # fire-and-forget delivery (no broker-tracked ack):
                # run the callback directly, exceptions propagate to
                # the scheduler exactly as _dispatch would
                sub.callback(event)
            else:
                self._dispatch(sub, event, payload, sender)
            return
        if kind == "sub-ack":
            sub = self._by_token.get(payload.get("token"))
            if sub is not None:
                if sub.sub_id is not None and sub.sub_id != payload["sub_id"]:
                    # broker restarted and assigned a fresh id
                    self._by_sub_id.pop(sub.sub_id, None)
                sub.sub_id = payload["sub_id"]
                self._by_sub_id[sub.sub_id] = sub
                if not sub.active:  # unsubscribed before the ack landed
                    self._unsubscribe(sub)
            return
        if kind == "pub-ack":
            if self._pending_pubs.pop(payload.get("pub_id"), None) \
                    is not None:
                self.publications_acked += 1
            self._receipts.discard(payload.get("pub_id"))
            self._broker_alive()
            return
        if kind == "pub-receipt":
            # broker took custody but its consumers are still settling:
            # extend this publication's patience to the settle budget
            # (see _pub_timeout) — and the broker is evidently alive
            if payload.get("pub_id") in self._pending_pubs:
                self._receipts.add(payload["pub_id"])
                self.publication_receipts += 1
            self._broker_alive()
            return
        if kind == "pub-reject":
            self._on_pub_reject(payload)
            return
        if kind == "pong":
            self._broker_alive()
            return
        if kind == "not-primary":
            self._on_not_primary(payload)

    def _dispatch(self, sub: Subscription, event: Event,
                  payload: dict, origin: str) -> None:
        """Run the callback; settle the delivery if the broker tracks it.

        Retained replays arrive without a ``delivery_id`` even on acked
        subscriptions and stay fire-and-forget.  Deliveries on plain
        subscriptions keep the historical behaviour (exceptions
        propagate to the scheduler).  Acks answer *origin* — the broker
        that actually delivered — which under failover may not be the
        rotation cursor yet.
        """
        delivery_id = payload.get("delivery_id")
        if delivery_id is None:
            sub.callback(event)
            return
        try:
            sub.callback(event)
        except BackpressureError:
            self.deliveries_nacked += 1
            self.host.send(origin, BROKER_PORT, {
                "verb": "delivery_nack", "delivery_id": delivery_id,
                "poison": False,
            })
        except Exception:
            self.deliveries_nacked += 1
            self.host.send(origin, BROKER_PORT, {
                "verb": "delivery_nack", "delivery_id": delivery_id,
                "poison": True,
            })
        else:
            self.deliveries_acked += 1
            self.host.send(origin, BROKER_PORT, {
                "verb": "delivery_ack", "delivery_id": delivery_id,
            })


def connect(host: Host, broker_host: Union[str, Sequence[str]]
            ) -> MiddlewarePeer:
    """Create a middleware peer on *host* talking to *broker_host*.

    *broker_host* may be a single host name or a list of replicated
    broker hosts in seniority order (the peer's failover rotation).
    """
    hosts = [broker_host] if isinstance(broker_host, str) \
        else list(broker_host)
    for name in hosts:
        if not host.network.has_host(name):
            raise ConfigurationError(
                f"broker host {name!r} is not on the network"
            )
    return MiddlewarePeer(host, broker_host)
