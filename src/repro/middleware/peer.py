"""Peer-side API of the pub/sub middleware.

A :class:`MiddlewarePeer` lives on any simulated host (device-proxy,
measurement database, end-user application) and provides ``publish`` /
``subscribe`` against a :class:`~repro.middleware.broker.Broker`.
Subscriptions carry a local callback; events arrive asynchronously as
the scheduler runs.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.middleware.broker import BROKER_PORT, Event
from repro.middleware.topics import validate_filter, validate_topic
from repro.network.transport import Host, Message

EventCallback = Callable[[Event], None]


class Subscription:
    """Handle to one active subscription; cancel with :meth:`unsubscribe`."""

    def __init__(self, peer: "MiddlewarePeer", token: int, pattern: str,
                 callback: EventCallback):
        self.peer = peer
        self.token = token
        self.pattern = pattern
        self.callback = callback
        self.sub_id: Optional[int] = None  # assigned by broker ack
        self.events_received = 0
        self.active = True

    def unsubscribe(self) -> None:
        """Stop receiving events on this subscription."""
        if self.active:
            self.active = False
            self.peer._unsubscribe(self)


class MiddlewarePeer:
    """Publish/subscribe endpoint on a simulated host."""

    _port_ids = itertools.count(1)

    def __init__(self, host: Host, broker_host: str):
        self.host = host
        self.broker_host = broker_host
        self.events_published = 0
        self._port = f"pubsub-peer-{next(self._port_ids)}"
        self._token_ids = itertools.count(1)
        self._by_token: Dict[int, Subscription] = {}
        self._by_sub_id: Dict[int, Subscription] = {}
        host.bind(self._port, self._on_message)

    def publish(self, topic: str, payload: Any, retain: bool = False
                ) -> None:
        """Publish *payload* on concrete *topic* via the broker.

        With *retain*, the broker stores the event as the topic's last
        value and replays it to future subscribers on subscribe.
        """
        validate_topic(topic)
        self.events_published += 1
        self.host.send(
            self.broker_host,
            BROKER_PORT,
            {
                "verb": "publish",
                "topic": topic,
                "payload": payload,
                "published_at": self.host.network.scheduler.now,
                "retain": retain,
            },
        )

    def subscribe(self, pattern: str, callback: EventCallback
                  ) -> Subscription:
        """Subscribe *callback* to events matching *pattern*.

        The subscription becomes live once the broker's ack arrives (a
        network round-trip later); events published before that are not
        delivered, matching real broker semantics.
        """
        validate_filter(pattern)
        token = next(self._token_ids)
        subscription = Subscription(self, token, pattern, callback)
        self._by_token[token] = subscription
        self.host.send(
            self.broker_host,
            BROKER_PORT,
            {
                "verb": "subscribe",
                "pattern": pattern,
                "port": self._port,
                "token": token,
            },
        )
        return subscription

    def _unsubscribe(self, subscription: Subscription) -> None:
        if subscription.sub_id is not None:
            self.host.send(
                self.broker_host,
                BROKER_PORT,
                {"verb": "unsubscribe", "sub_id": subscription.sub_id},
            )

    def _on_message(self, message: Message) -> None:
        payload = message.payload
        kind = payload.get("kind")
        if kind == "sub-ack":
            sub = self._by_token.get(payload.get("token"))
            if sub is not None:
                sub.sub_id = payload["sub_id"]
                self._by_sub_id[sub.sub_id] = sub
                if not sub.active:  # unsubscribed before the ack landed
                    self._unsubscribe(sub)
            return
        if kind == "event":
            # the broker fans out one copy per matching subscription and
            # tags it with the subscription id, so dispatch is exact even
            # when several local filters overlap
            sub = self._by_sub_id.get(payload.get("sub_id"))
            if sub is None or not sub.active:
                return
            sub.events_received += 1
            sub.callback(Event(
                topic=payload["topic"],
                payload=payload["payload"],
                published_at=payload["published_at"],
                delivered_at=self.host.network.scheduler.now,
                publisher=payload["publisher"],
                retained=bool(payload.get("retained", False)),
            ))


def connect(host: Host, broker_host: str) -> MiddlewarePeer:
    """Create a middleware peer on *host* talking to *broker_host*."""
    if not host.network.has_host(broker_host):
        raise ConfigurationError(
            f"broker host {broker_host!r} is not on the network"
        )
    return MiddlewarePeer(host, broker_host)
