"""Hierarchical topic grammar for the event-driven middleware.

Topics are ``/``-separated hierarchies mirroring the district ontology,
e.g. ``district/dst-0001/building/bld-0007/device/dev-00a3/power``.
Subscription filters may use ``+`` to match exactly one level and a
trailing ``#`` to match any remainder (MQTT semantics, which the
SEEMPubS middleware the paper builds on also adopted).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import ConfigurationError

SINGLE = "+"
MULTI = "#"


def validate_topic(topic: str) -> List[str]:
    """Split and validate a concrete (wildcard-free) topic."""
    levels = _split(topic)
    for level in levels:
        if level in (SINGLE, MULTI):
            raise ConfigurationError(
                f"wildcard {level!r} not allowed in concrete topic {topic!r}"
            )
    return levels


def validate_filter(pattern: str) -> List[str]:
    """Split and validate a subscription filter."""
    levels = _split(pattern)
    for i, level in enumerate(levels):
        if level == MULTI and i != len(levels) - 1:
            raise ConfigurationError(
                f"'#' must be the last level in filter {pattern!r}"
            )
    return levels


def _split(text: str) -> List[str]:
    if not text or text.startswith("/") or text.endswith("/"):
        raise ConfigurationError(f"malformed topic {text!r}")
    levels = text.split("/")
    if any(level == "" for level in levels):
        raise ConfigurationError(f"empty level in topic {text!r}")
    return levels


def topic_matches(pattern: str, topic: str) -> bool:
    """True if concrete *topic* matches subscription *pattern*."""
    filter_levels = validate_filter(pattern)
    topic_levels = validate_topic(topic)
    i = 0
    for i, flevel in enumerate(filter_levels):
        if flevel == MULTI:
            return True
        if i >= len(topic_levels):
            return False
        if flevel != SINGLE and flevel != topic_levels[i]:
            return False
    return len(filter_levels) == len(topic_levels)


def join(*levels: str) -> str:
    """Join topic levels, validating each is non-empty and slash-free."""
    for level in levels:
        if not level or "/" in level:
            raise ConfigurationError(f"bad topic level {level!r}")
    return "/".join(levels)


# --------------------------------------------------------------------------
# canonical topic layout used across the infrastructure


def measurement_topic(district_id: str, entity_id: str, device_id: str,
                      quantity: str) -> str:
    """Topic on which a device-proxy publishes one device quantity."""
    return join("district", district_id, "entity", entity_id,
                "device", device_id, quantity)


def measurement_filter(district_id: str = SINGLE, entity_id: str = SINGLE,
                       device_id: str = SINGLE, quantity: str = SINGLE
                       ) -> str:
    """Filter over measurement topics; unset levels default to ``+``."""
    return join("district", district_id, "entity", entity_id,
                "device", device_id, quantity)


def district_filter(district_id: str) -> str:
    """Filter matching every event of one district."""
    return join("district", district_id) + "/" + MULTI


def registry_topic(district_id: str) -> str:
    """Topic announcing proxy registrations in a district."""
    return join("registry", district_id)


def actuation_topic(device_id: str) -> str:
    """Topic carrying actuation results for a device."""
    return join("actuation", device_id)


def topic_device(topic: str) -> str:
    """Extract the device id from a canonical measurement topic."""
    levels = validate_topic(topic)
    for i, level in enumerate(levels[:-1]):
        if level == "device":
            return levels[i + 1]
    raise ConfigurationError(f"no device level in topic {topic!r}")


def topics_overlap(filters: Iterable[str], topic: str) -> bool:
    """True if any filter in *filters* matches *topic*."""
    return any(topic_matches(f, topic) for f in filters)
