"""Replicated brokers: the middleware loses its single point of failure.

After PR 3 the masters fail over and after PR 6 the measurement store
survives crashes — the broker remained the one hub whose outage stalls
the whole data plane.  This module binds the reusable replication core
(:class:`repro.core.replication.ReplicatedNode`: epoch-fenced seniority
election, self-fencing, snapshot catch-up) to the broker's durable
state:

* the primary broker's durable-state log (retained events,
  subscriptions, pending acked deliveries, dead letters — see
  :meth:`~repro.middleware.broker.Broker._log`) streams to 1–2 standby
  brokers; a standby holds a live replica of the full middleware state
  but delivers nothing (only the primary runs redelivery timers);
* a standby, or a fenced deposed primary, answers every data-plane
  frame with ``not-primary`` + a primary hint, so
  :class:`~repro.middleware.peer.MiddlewarePeer`'s broker rotation
  steers publishers and subscribers to the promoted broker;
* at promotion the new primary re-arms every replicated pending
  delivery and serves retained-event replay to re-subscribers —
  at-least-once delivery holds across a broker kill, and epoch fencing
  keeps a healed partition from split-braining deliveries.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.replication import (
    ReplicatedNode,
    ReplicationConfig,
    ReplicationGroup,
)
from repro.errors import ConfigurationError
from repro.middleware.broker import Broker
from repro.network.transport import Host
from repro.network.webservice import WebService


class BrokerReplica(ReplicatedNode):
    """One member of a replicated broker group.

    Wraps a :class:`~repro.middleware.broker.Broker`, binding the
    replication core to the broker's durable-state surface
    (:meth:`~repro.middleware.broker.Broker.state_snapshot` /
    :meth:`~repro.middleware.broker.Broker.apply_op`).
    """

    kind = "broker"
    metric_prefix = "broker_replication."

    def __init__(self, broker: Broker, rank: int,
                 config: ReplicationConfig):
        self.broker = broker
        super().__init__(rank, config)

    @property
    def host(self) -> Host:
        return self.broker.host

    @property
    def service(self) -> WebService:
        return self.broker.service

    def bind_node(self) -> None:
        self.broker.replication = self

    def node_snapshot(self) -> Dict:
        return self.broker.state_snapshot()

    def node_restore(self, snapshot: Dict) -> None:
        # live=False: a restoring member is (or is becoming) a standby;
        # only a promotion arms redelivery timers
        self.broker.restore_state(snapshot, live=False)
        # the resync replaced local state wholesale, so any on-disk
        # artifacts of the previous epoch are stale: persist the new
        # state (write_snapshot also truncates the WAL) or, with only a
        # WAL configured, truncate the divergent log outright
        if self.broker.durability is not None:
            if self.broker.durability.snapshot_path:
                self.broker.write_snapshot()
            elif self.broker.wal is not None:
                self.broker.wal.reset()

    def node_apply(self, payload: Dict) -> None:
        self.broker.apply_op(payload, live=False)

    def on_promote(self) -> None:
        # the replicated pending deliveries were sent by the deposed
        # primary; re-arm their timers so unacked ones are redelivered
        # by this broker (consumers that already handled them just ack)
        self.broker.activate_pending_deliveries()

    def write_local_snapshot(self) -> None:
        self.broker.write_snapshot()


class BrokerReplicationGroup(ReplicationGroup):
    """A wired set of replicated brokers, in seniority (rank) order."""

    @property
    def primary_broker(self) -> Broker:
        return self.primary.broker

    def brokers(self) -> List[Broker]:
        return [m.broker for m in self.members]


def replicate_broker(broker: Broker, standbys: int = 1,
                     config: Optional[ReplicationConfig] = None,
                     durability: Optional[Callable[[int], object]] = None
                     ) -> BrokerReplicationGroup:
    """Stand up *standbys* replica brokers behind an existing primary.

    Each standby gets its own host (``<primary>-r1``, ``<primary>-r2``,
    ...) on the primary's network with the primary's overload/delivery
    knobs, and a replication agent wired to every peer.  *durability*
    optionally maps a standby's rank to its own
    :class:`~repro.storage.durability.BrokerDurabilityConfig` (distinct
    WAL/snapshot paths per replica).  Returns the group with streaming
    and failure detection running; feed ``group.hosts()`` to peers as
    their broker rotation.
    """
    if broker.replication is not None:
        raise ConfigurationError(
            f"broker {broker.host.name!r} is already replicated"
        )
    if standbys < 1:
        raise ConfigurationError("replication needs >= 1 standby")
    config = config or ReplicationConfig()
    network = broker.host.network
    members = [BrokerReplica(broker, 0, config)]
    for index in range(1, standbys + 1):
        host = network.add_host(f"{broker.host.name}-r{index}")
        standby = Broker(
            host, overload=broker.overload,
            delivery_ack_timeout=broker.delivery_ack_timeout,
            max_delivery_attempts=broker.max_delivery_attempts,
            dead_letter_capacity=broker.dead_letter_capacity,
            durability=durability(index) if durability is not None
            else None,
        )
        members.append(BrokerReplica(standby, index, config))
    group = BrokerReplicationGroup(members)
    for member in members:
        member.attach(group)
    for member in members:
        member.start()
    return group
