"""The master node: unique entry point of the infrastructure.

"The master node is the unique entry point of the system, and it
maintains an ontology of relationships between the different entities
present in a district.  It receives data queries from the users, refers
to the ontology to get the interested data sources URIs, and redirects
the users to the interested data sources."

The master never relays data: ``/resolve`` returns proxy URIs.  Proxies
register themselves over ``/register`` (database proxies bind to entity
nodes, device proxies add device leaves, GIS and measurement services
attach to the district root), growing the ontology incrementally as the
district deploys.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.cdf import DeviceDescription
from repro.common.identifiers import entity_kind
from repro.datasources.geometry import BoundingBox
from repro.errors import (
    OntologyError,
    QueryError,
    RegistrationError,
    UnknownEntityError,
)
from repro.network.transport import Host
from repro.network.webservice import (
    GET,
    POST,
    Request,
    Response,
    WebService,
    error,
    ok,
)
from repro.ontology.model import DeviceNode, DistrictOntology, EntityNode
from repro.ontology.queries import AreaQuery, resolve


class MasterNode:
    """Registration target and query resolver for one or more districts."""

    def __init__(self, host: Host, processing_delay: float = 2e-4):
        self.host = host
        self.ontology = DistrictOntology()
        self.registrations = 0
        self.resolves_served = 0
        self.service = WebService(host, processing_delay=processing_delay)
        self.service.add_route(POST, "/register", self._register_route)
        self.service.add_route(GET, "/resolve", self._resolve_route)
        self.service.add_route(GET, "/ontology", self._ontology_route)
        self.service.add_route(GET, "/districts", self._districts_route)

    @property
    def uri(self) -> str:
        """The master's Web-Service base URI."""
        return self.service.base_uri

    def reset(self) -> None:
        """Simulate a master restart: the in-memory ontology is lost.

        Recovery relies on proxies re-registering (see
        :meth:`~repro.simulation.faults.FaultInjector.restart_master`),
        exactly as a stateless-registration design would in production.
        """
        self.ontology = DistrictOntology()

    # -- registration (in-process API; the route wraps this) -----------------

    def register(self, payload: Dict) -> Dict:
        """Apply one proxy registration to the ontology."""
        kind = payload.get("proxy_kind")
        if kind == "database":
            return self._register_database(payload)
        if kind == "device":
            return self._register_device_proxy(payload)
        if kind == "measurement":
            return self._register_measurement(payload)
        raise RegistrationError(f"unknown proxy kind {kind!r}")

    def _district_node(self, district_id: str, name: str = ""):
        try:
            return self.ontology.district(district_id)
        except UnknownEntityError:
            return self.ontology.add_district(district_id, name)

    def _entity_node(self, district_id: str, entity_id: str,
                     entity_type: Optional[str] = None,
                     name: str = "") -> EntityNode:
        district = self._district_node(district_id)
        if entity_id in district.entities:
            return district.entities[entity_id]
        inferred = entity_kind(entity_id)
        if inferred not in ("building", "network"):
            raise RegistrationError(
                f"{entity_id!r} is not a building or network id"
            )
        node = EntityNode(
            entity_id=entity_id,
            entity_type=entity_type or inferred,
            name=name,
        )
        self.ontology.add_entity(district_id, node)
        return node

    def _register_database(self, payload: Dict) -> Dict:
        source_kind = payload.get("source_kind")
        district_id = payload.get("district_id")
        uri = payload.get("uri")
        if not district_id or not uri:
            raise RegistrationError("registration needs district_id and uri")
        if source_kind == "gis":
            district = self._district_node(district_id,
                                           payload.get("name", ""))
            if payload.get("name") and not district.name:
                district.name = payload["name"]
            if uri not in district.gis_uris:
                district.gis_uris.append(uri)
            self.registrations += 1
            return {"attached": "district", "district_id": district_id}
        if source_kind in ("bim", "sim"):
            entity_id = payload.get("entity_id")
            if not entity_id:
                raise RegistrationError(
                    f"{source_kind} registration needs entity_id"
                )
            entity = self._entity_node(
                district_id, entity_id,
                payload.get("entity_type"), payload.get("name", ""),
            )
            if payload.get("name") and not entity.name:
                entity.name = payload["name"]
            entity.proxy_uris[source_kind] = uri
            bounds = payload.get("bounds")
            if bounds:
                entity.bounds = BoundingBox.from_list(bounds)
            if payload.get("gis_feature_id"):
                entity.gis_feature_id = payload["gis_feature_id"]
            if payload.get("commodity"):
                entity.properties["commodity"] = payload["commodity"]
            self.registrations += 1
            return {"attached": "entity", "entity_id": entity_id}
        raise RegistrationError(f"unknown source kind {source_kind!r}")

    def _register_device_proxy(self, payload: Dict) -> Dict:
        district_id = payload.get("district_id")
        uri = payload.get("uri")
        if not district_id or not uri:
            raise RegistrationError("registration needs district_id and uri")
        devices = payload.get("devices", [])
        if not devices:
            raise RegistrationError(
                "device proxy registered without devices"
            )
        attached = []
        for device_data in devices:
            description = DeviceDescription.from_dict(device_data)
            entity = self._entity_node(district_id, description.entity_id)
            node = DeviceNode(
                device_id=description.device_id,
                proxy_uri=uri,
                protocol=description.protocol,
                quantities=description.quantities,
                is_actuator=description.is_actuator,
                properties={"location": description.location},
            )
            try:
                entity.add_device(node)
            except OntologyError as exc:
                raise RegistrationError(str(exc)) from exc
            attached.append(description.device_id)
        self.registrations += 1
        return {"attached": "devices", "device_ids": attached}

    def _register_measurement(self, payload: Dict) -> Dict:
        district_id = payload.get("district_id")
        uri = payload.get("uri")
        if not district_id or not uri:
            raise RegistrationError("registration needs district_id and uri")
        district = self._district_node(district_id)
        if uri not in district.measurement_uris:
            district.measurement_uris.append(uri)
        self.registrations += 1
        return {"attached": "district", "district_id": district_id}

    # -- queries (in-process API) ------------------------------------------

    def resolve_area(self, query: AreaQuery):
        """Resolve an area query against the ontology."""
        self.resolves_served += 1
        return resolve(self.ontology, query)

    # -- web-service routes ---------------------------------------------------

    def _register_route(self, request: Request) -> Response:
        try:
            body = self.register(request.body or {})
        except RegistrationError as exc:
            return error(400, str(exc))
        return ok(body)

    def _resolve_route(self, request: Request) -> Response:
        try:
            query = AreaQuery.from_params(request.params)
            resolved = self.resolve_area(query)
        except QueryError as exc:
            return error(400, str(exc))
        except UnknownEntityError as exc:
            return error(404, str(exc))
        return ok(resolved.to_dict())

    def _ontology_route(self, request: Request) -> Response:
        return ok(self.ontology.to_dict())

    def _districts_route(self, request: Request) -> Response:
        return ok({
            "districts": [
                {
                    "district_id": d.district_id,
                    "name": d.name,
                    "entities": len(d.entities),
                    "devices": sum(len(e.devices)
                                   for e in d.entities.values()),
                }
                for d in self.ontology.districts()
            ]
        })
