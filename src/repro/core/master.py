"""The master node: unique entry point of the infrastructure.

"The master node is the unique entry point of the system, and it
maintains an ontology of relationships between the different entities
present in a district.  It receives data queries from the users, refers
to the ontology to get the interested data sources URIs, and redirects
the users to the interested data sources."

The master never relays data: ``/resolve`` returns proxy URIs.  Proxies
register themselves over ``/register`` (database proxies bind to entity
nodes, device proxies add device leaves, GIS and measurement services
attach to the district root), growing the ontology incrementally as the
district deploys.

Registrations may carry a **lease**: a validity horizon in simulated
seconds that the proxy renews by periodically re-registering (the
heartbeat, see :meth:`repro.proxies.base.Proxy.start_heartbeat`).  When
a lease expires un-renewed the master *evicts* every ontology reference
to that proxy's URI, so ``/resolve`` stops redirecting clients to dead
services — crash recovery becomes automatic instead of an operator
action.  Registrations without a lease are permanent (the pre-lease
behaviour, still the default).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro import persistence
from repro.common.cdf import DeviceDescription
from repro.common.identifiers import entity_kind
from repro.datasources.geometry import BoundingBox
from repro.errors import (
    NotPrimaryError,
    OntologyError,
    QueryError,
    RegistrationError,
    UnknownEntityError,
)
from repro.network.transport import Host, estimate_size
from repro.network.webservice import (
    GET,
    POST,
    Request,
    Response,
    WebService,
    error,
    ok,
)
from repro.observability.tracing import INTERNAL, emit
from repro.ontology.model import DeviceNode, DistrictOntology, EntityNode
from repro.ontology.queries import AreaQuery, resolve


#: bound on the master-side resolve cache (serialized answers)
RESOLVE_CACHE_MAX = 256


class MasterNode:
    """Registration target and query resolver for one or more districts.

    ``/resolve`` answers are cached behind an **ontology epoch**: a
    version counter bumped by every mutation of the forest
    (:meth:`apply_registration`, :meth:`_evict_uri`, :meth:`reset`,
    :meth:`restore_snapshot`).  A cached serialized answer is served
    only while the epoch is unchanged, so a cache hit can never
    redirect a client to an evicted proxy.  Clients may revalidate a
    previous answer with an ``if_none_match`` parameter carrying the
    answer's :meth:`epoch_token`; an unchanged token earns a bodyless
    304-style response (see
    :meth:`repro.core.client.DistrictClient.resolve`).
    """

    def __init__(self, host: Host, processing_delay: float = 2e-4,
                 default_lease: Optional[float] = None):
        self.host = host
        self.ontology = DistrictOntology()
        self.registrations = 0
        self.resolves_served = 0
        self.lease_evictions = 0
        #: forest version: bumped by every registration, eviction,
        #: reset and snapshot restore — the resolve-cache validator
        self.ontology_epoch = 0
        self.resolve_cache_hits = 0
        self.resolve_cache_misses = 0
        self.resolve_not_modified = 0
        self.resolve_cache_max = RESOLVE_CACHE_MAX
        #: canonical query params -> serialized ResolvedArea dict, valid
        #: only while the epoch token matches (lazy invalidation)
        self._resolve_cache: "OrderedDict[Tuple, Dict]" = OrderedDict()
        self._resolve_cache_token: Optional[str] = None
        #: default lease applied to registrations that do not name one;
        #: None keeps legacy permanent registrations
        self.default_lease = default_lease
        self._leases: Dict[str, float] = {}  # proxy uri -> expiry time
        #: proxy uri -> (last applied devices payload, attached ids,
        #: response body size).
        #: A heartbeat re-registration with a payload equal to the last
        #: applied one is an ontology no-op, so it skips the parse /
        #: node-replace / prune work entirely (the epoch still bumps
        #: and the lease still renews).  Invalidated whenever anything
        #: other than that slow path mutates the proxy's leaves:
        #: eviction, reset, snapshot restore.
        self._device_reg_cache: Dict[str, tuple] = {}
        #: measured body size of the registration answer just built, so
        #: the route can hand the reply send a size hint (None when the
        #: answer shape was not measured)
        self._last_register_size: Optional[int] = None
        self._sweeper = None
        #: replication agent (see :mod:`repro.core.replication`); None
        #: keeps the legacy single-master behaviour
        self.replication = None
        #: periodic persisted snapshots (see :meth:`start_snapshots`)
        self.snapshot_path: Optional[str] = None
        self.snapshots_written = 0
        self.last_snapshot_time: Optional[float] = None
        self._snapshot_task = None
        self.service = WebService(host, processing_delay=processing_delay)
        self.service.add_route(POST, "/register", self._register_route)
        self.service.add_route(GET, "/resolve", self._resolve_route)
        self.service.add_route(GET, "/ontology", self._ontology_route)
        self.service.add_route(GET, "/districts", self._districts_route)
        self.service.add_route(GET, "/health", self._health_route)
        self.service.add_route(GET, "/metrics", self._metrics_route)

    @property
    def uri(self) -> str:
        """The master's Web-Service base URI."""
        return self.service.base_uri

    def reset(self) -> None:
        """Simulate a master restart: the in-memory ontology is lost.

        Recovery relies on proxies re-registering (the registration
        heartbeat, or
        :meth:`~repro.simulation.faults.FaultInjector.reregister_all`),
        exactly as a stateless-registration design would in production.
        """
        self.ontology = DistrictOntology()
        self._leases.clear()
        self._device_reg_cache.clear()
        self.bump_epoch()

    # -- epoch + resolve cache ------------------------------------------------

    def bump_epoch(self) -> None:
        """Advance the ontology epoch (monotone, never reset to zero)."""
        self.ontology_epoch += 1

    def epoch_token(self) -> str:
        """The resolve-cache validator (the ``/resolve`` ETag).

        Combines the serving member's name, its replication epoch and
        the ontology epoch: a token can only compare equal when the
        same master answers from provably unchanged state.  Including
        the member name keeps a lagging standby's token from ever
        matching the primary's; including the replication epoch
        invalidates every client cache across a failover even though
        the promoted standby keeps its own ontology-epoch counter.
        """
        repl_epoch = self.replication.epoch \
            if self.replication is not None else 0
        return f"{self.host.name}:{repl_epoch}:{self.ontology_epoch}"

    def invalidate_resolve_cache(self) -> None:
        """Drop every cached resolve answer (epoch transitions)."""
        self._resolve_cache.clear()
        self._resolve_cache_token = None

    # -- leases ---------------------------------------------------------------

    @property
    def active_leases(self) -> int:
        return len(self._leases)

    def expire_leases(self, now: Optional[float] = None) -> List[str]:
        """Evict every proxy whose lease expired; returns their URIs.

        Called lazily before each resolve and optionally from a periodic
        sweep, so a crashed proxy disappears from answers no later than
        one lease after its last heartbeat.
        """
        if not self._leases:
            return []
        if now is None:
            now = self.host.network.scheduler.now
        expired = [uri for uri, expiry in self._leases.items()
                   if expiry <= now]
        for uri in expired:
            del self._leases[uri]
            self._evict_uri(uri)
            self.lease_evictions += 1
            emit(self.host.network, "lease_evicted",
                 host=self.host.name, uri=uri, master=self.host.name)
        return expired

    def start_lease_sweeper(self, period: float) -> None:
        """Periodically expire leases (idempotent)."""
        if self._sweeper is None:
            self._sweeper = self.host.network.scheduler.every(
                period, self.expire_leases
            )

    def stop_lease_sweeper(self) -> None:
        if self._sweeper is not None:
            self._sweeper.stop()
            self._sweeper = None

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict:
        """The master's replicable state: ontology forest + lease table."""
        return {
            "ontology": self.ontology.to_dict(),
            "leases": dict(self._leases),
            "ontology_epoch": self.ontology_epoch,
        }

    def restore_snapshot(self, snapshot: Dict) -> None:
        """Replace the master's state with a :meth:`snapshot` payload.

        The local ontology epoch jumps past both its own value and the
        snapshot's, so it stays monotone whichever side was ahead, and
        every answer cached against the pre-restore state is invalid.
        """
        self.ontology = DistrictOntology.from_dict(snapshot["ontology"])
        self._leases = {uri: float(expiry) for uri, expiry
                        in snapshot.get("leases", {}).items()}
        self._device_reg_cache.clear()
        self.ontology_epoch = max(
            self.ontology_epoch, int(snapshot.get("ontology_epoch", 0))
        ) + 1
        self.invalidate_resolve_cache()

    def start_snapshots(self, path: str, period: float) -> None:
        """Persist the ontology + leases to *path* every *period* seconds.

        The durable complement of proxy re-registration: after a clean
        restart :meth:`recover_from_snapshot` restores the last persisted
        state, so ``/resolve`` answers immediately instead of waiting a
        full heartbeat round.  Idempotent; stop with
        :meth:`stop_snapshots`.
        """
        self.snapshot_path = path
        if self._snapshot_task is None:
            self._snapshot_task = self.host.network.scheduler.every(
                period, self.write_snapshot
            )

    def stop_snapshots(self) -> None:
        if self._snapshot_task is not None:
            self._snapshot_task.stop()
            self._snapshot_task = None

    def write_snapshot(self) -> None:
        """Persist one snapshot now (requires :attr:`snapshot_path`)."""
        if self.snapshot_path is None:
            return
        persistence.save_ontology(self.ontology, self.snapshot_path,
                                  leases=self._leases,
                                  epoch=self.ontology_epoch)
        self.snapshots_written += 1
        self.last_snapshot_time = self.host.network.scheduler.now
        emit(self.host.network, "master_snapshot", host=self.host.name,
             path=self.snapshot_path, master=self.host.name)

    def recover_from_snapshot(self) -> bool:
        """Restore ontology and leases from the persisted snapshot.

        Returns True when a snapshot was loaded, False when no snapshot
        path is configured or none has been written yet.  Leases are
        restored with their original absolute expiries, so proxies that
        died while the master was down still get evicted on schedule.
        """
        if self.snapshot_path is None or \
                not os.path.exists(self.snapshot_path):
            return False
        snap = persistence.load_ontology_snapshot(self.snapshot_path)
        self.ontology = snap.ontology
        self._leases = dict(snap.leases)
        self._device_reg_cache.clear()
        self.ontology_epoch = max(self.ontology_epoch,
                                  snap.ontology_epoch) + 1
        self.invalidate_resolve_cache()
        return True

    @property
    def last_snapshot_age(self) -> Optional[float]:
        """Seconds since the last persisted snapshot (None if never)."""
        if self.last_snapshot_time is None:
            return None
        return self.host.network.scheduler.now - self.last_snapshot_time

    def _track_lease(self, uri: str, lease: Optional[float]) -> None:
        if lease is None:
            lease = self.default_lease
        if lease is None:
            # permanent registration; drop any stale lease on this uri
            self._leases.pop(uri, None)
            return
        if lease <= 0:
            raise RegistrationError(f"bad lease {lease!r}")
        self._leases[uri] = self.host.network.scheduler.now + float(lease)

    def _evict_uri(self, uri: str) -> None:
        """Remove every ontology reference to one proxy URI.

        Entities hollowed out by the eviction (no proxy URIs left, no
        devices left) are pruned with their subtree: a URI-less entity
        would still match area queries while redirecting the client
        nowhere, and would inflate ``ontology_nodes`` forever.  Any
        actual removal bumps the ontology epoch, so no cached resolve
        answer can keep pointing at the dead proxy.
        """
        self._device_reg_cache.pop(uri, None)
        changed = False
        for district in self.ontology.districts():
            if uri in district.gis_uris:
                district.gis_uris.remove(uri)
                changed = True
            if uri in district.measurement_uris:
                district.measurement_uris.remove(uri)
                changed = True
            for entity in list(district.entities.values()):
                for kind in [k for k, u in entity.proxy_uris.items()
                             if u == uri]:
                    del entity.proxy_uris[kind]
                    changed = True
                for device_id in [d_id for d_id, node
                                  in entity.devices.items()
                                  if node.proxy_uri == uri]:
                    district.remove_device(entity.entity_id, device_id)
                    changed = True
                if not entity.proxy_uris and not entity.devices:
                    district.remove_entity(entity.entity_id)
                    changed = True
        if changed:
            self.bump_epoch()

    # -- registration (in-process API; the route wraps this) -----------------

    def register(self, payload: Dict) -> Dict:
        """Apply one proxy registration to the ontology.

        Re-registering the same proxy (same URI) is idempotent — it
        refreshes the registration and renews its lease, which is
        exactly what the periodic heartbeat does.

        On a replicated master the write is gated first (standbys and
        fenced primaries raise :class:`NotPrimaryError`) and streamed to
        the standbys afterwards.
        """
        if self.replication is not None:
            self.replication.check_writable()
        result = self.apply_registration(payload)
        if self.replication is not None:
            self.replication.record_write(payload)
        return result

    def apply_registration(self, payload: Dict) -> Dict:
        """Apply a registration without replication gating/streaming.

        The raw state transition shared by client-facing
        :meth:`register` and by replicated log entries applied on a
        standby (which must bypass the primary-only write gate).
        """
        self._last_register_size = None
        kind = payload.get("proxy_kind")
        lease = payload.get("lease")
        if lease is not None and float(lease) <= 0:
            raise RegistrationError(f"bad lease {lease!r}")
        if kind == "database":
            result = self._register_database(payload)
        elif kind == "device":
            result = self._register_device_proxy(payload)
        elif kind == "measurement":
            result = self._register_measurement(payload)
        else:
            raise RegistrationError(f"unknown proxy kind {kind!r}")
        uri = payload.get("uri")
        if uri:
            self._track_lease(uri, None if lease is None else float(lease))
        # conservative invalidation: every accepted registration (even
        # an unchanged heartbeat refresh) advances the epoch, so cached
        # answers can only ever under-live the truth, never outlive it
        self.bump_epoch()
        return result

    def _district_node(self, district_id: str, name: str = ""):
        try:
            return self.ontology.district(district_id)
        except UnknownEntityError:
            return self.ontology.add_district(district_id, name)

    def _entity_node(self, district, entity_id: str,
                     entity_type: Optional[str] = None,
                     name: str = "") -> EntityNode:
        if entity_id in district.entities:
            return district.entities[entity_id]
        inferred = entity_kind(entity_id)
        if inferred not in ("building", "network"):
            raise RegistrationError(
                f"{entity_id!r} is not a building or network id"
            )
        node = EntityNode(
            entity_id=entity_id,
            entity_type=entity_type or inferred,
            name=name,
        )
        self.ontology.add_entity(district.district_id, node)
        return node

    def _register_database(self, payload: Dict) -> Dict:
        source_kind = payload.get("source_kind")
        district_id = payload.get("district_id")
        uri = payload.get("uri")
        if not district_id or not uri:
            raise RegistrationError("registration needs district_id and uri")
        if source_kind == "gis":
            district = self._district_node(district_id,
                                           payload.get("name", ""))
            if payload.get("name") and not district.name:
                district.name = payload["name"]
            if uri not in district.gis_uris:
                district.gis_uris.append(uri)
            self.registrations += 1
            return {"attached": "district", "district_id": district_id}
        if source_kind in ("bim", "sim"):
            entity_id = payload.get("entity_id")
            if not entity_id:
                raise RegistrationError(
                    f"{source_kind} registration needs entity_id"
                )
            district = self._district_node(district_id)
            entity = self._entity_node(
                district, entity_id,
                payload.get("entity_type"), payload.get("name", ""),
            )
            if payload.get("name") and not entity.name:
                entity.name = payload["name"]
            entity.proxy_uris[source_kind] = uri
            bounds = payload.get("bounds")
            if bounds:
                district.set_bounds(entity_id,
                                    BoundingBox.from_list(bounds))
            if payload.get("gis_feature_id"):
                entity.gis_feature_id = payload["gis_feature_id"]
            if payload.get("commodity"):
                entity.properties["commodity"] = payload["commodity"]
            self.registrations += 1
            return {"attached": "entity", "entity_id": entity_id}
        raise RegistrationError(f"unknown source kind {source_kind!r}")

    def _register_device_proxy(self, payload: Dict) -> Dict:
        district_id = payload.get("district_id")
        uri = payload.get("uri")
        if not district_id or not uri:
            raise RegistrationError("registration needs district_id and uri")
        devices = payload.get("devices", [])
        if not devices:
            raise RegistrationError(
                "device proxy registered without devices"
            )
        cached = self._device_reg_cache.get(uri)
        if cached is not None and cached[0] == devices:
            # identical heartbeat refresh: applying it leaves the
            # ontology exactly as it stands (replace with equal nodes,
            # nothing stale to prune), so skip the parse/write work
            self.registrations += 1
            self._last_register_size = cached[2]
            return {"attached": "devices", "device_ids": list(cached[1])}
        attached = []
        district = self._district_node(district_id)
        for device_data in devices:
            description = DeviceDescription.from_dict(device_data)
            entity = self._entity_node(district, description.entity_id)
            node = DeviceNode(
                device_id=description.device_id,
                proxy_uri=uri,
                protocol=description.protocol,
                quantities=description.quantities,
                is_actuator=description.is_actuator,
                properties={"location": description.location},
            )
            existing = entity.devices.get(description.device_id)
            if existing is not None:
                if existing.proxy_uri != uri:
                    raise RegistrationError(
                        f"device {description.device_id} already "
                        f"registered by {existing.proxy_uri}"
                    )
                district.replace_device(entity.entity_id, node)  # heartbeat
            else:
                try:
                    district.add_device(entity.entity_id, node)
                except OntologyError as exc:
                    raise RegistrationError(str(exc)) from exc
            attached.append(description.device_id)
        self._prune_stale_devices(district, uri, set(attached))
        body = {"attached": "devices", "device_ids": attached}
        size = estimate_size(body)
        self._device_reg_cache[uri] = (devices, list(attached), size)
        self._last_register_size = size
        self.registrations += 1
        return body

    def _prune_stale_devices(self, district, uri: str,
                             reported: set) -> None:
        """Drop this proxy's device leaves that vanished from its payload.

        A registration is the proxy's authoritative full device list:
        when a heartbeat re-registers with *fewer* devices (a sensor
        was unplugged, a fleet shrank), the leaves it no longer reports
        must stop resolving immediately rather than lingering until a
        full lease eviction.  Entities hollowed out by the prune (no
        proxy URIs, no devices) are removed with it.
        """
        for entity in list(district.entities.values()):
            stale = [d_id for d_id, node in entity.devices.items()
                     if node.proxy_uri == uri and d_id not in reported]
            for device_id in stale:
                district.remove_device(entity.entity_id, device_id)
            if stale and not entity.proxy_uris and not entity.devices:
                district.remove_entity(entity.entity_id)

    def _register_measurement(self, payload: Dict) -> Dict:
        district_id = payload.get("district_id")
        uri = payload.get("uri")
        if not district_id or not uri:
            raise RegistrationError("registration needs district_id and uri")
        district = self._district_node(district_id)
        if uri not in district.measurement_uris:
            district.measurement_uris.append(uri)
        self.registrations += 1
        return {"attached": "district", "district_id": district_id}

    # -- queries (in-process API) ------------------------------------------

    def resolve_area(self, query: AreaQuery):
        """Resolve an area query against the ontology.

        Expired leases are swept first, so answers never redirect the
        client to a proxy whose heartbeat has stopped.
        """
        self.expire_leases()
        self.resolves_served += 1
        tracer = self.host.network.tracer
        if tracer is not None and tracer.enabled:
            # nests under the GET /resolve server span when the query
            # arrived over the Web Service
            with tracer.span("ontology resolve", kind=INTERNAL,
                             host=self.host.name):
                return resolve(self.ontology, query)
        return resolve(self.ontology, query)

    # -- web-service routes ---------------------------------------------------

    def _register_route(self, request: Request) -> Response:
        try:
            body = self.register(request.body or {})
        except NotPrimaryError as exc:
            # retryable: the caller should fail over to another master
            return error(503, str(exc))
        except RegistrationError as exc:
            return error(400, str(exc))
        return Response(200, body, body_size=self._last_register_size)

    def _resolve_route(self, request: Request) -> Response:
        self.expire_leases()  # evictions must land before the token read
        token = self.epoch_token()
        params = dict(request.params)
        claimed = params.pop("if_none_match", None)
        if claimed is not None and claimed == token:
            # conditional GET: the client's cached answer is still
            # valid — confirm with a bodyless 304 instead of rebuilding
            # and re-serializing the whole tuple forest
            self.resolve_not_modified += 1
            self.resolves_served += 1
            emit(self.host.network, "resolve_cache_not_modified",
                 host=self.host.name, epoch=token, master=self.host.name)
            return Response(304, {"epoch": token}, "not modified")
        if self._resolve_cache_token != token:
            # lazy invalidation: the first resolve after any epoch bump
            # drops every answer cached against the previous forest
            self._resolve_cache.clear()
            self._resolve_cache_token = token
        key = tuple(sorted(params.items()))
        cached = self._resolve_cache.get(key)
        if cached is not None:
            self._resolve_cache.move_to_end(key)
            self.resolve_cache_hits += 1
            self.resolves_served += 1
            emit(self.host.network, "resolve_cache_hit",
                 host=self.host.name, epoch=token, master=self.host.name)
            return ok(cached)
        try:
            query = AreaQuery.from_params(params)
            resolved = self.resolve_area(query)
        except QueryError as exc:
            return error(400, str(exc))
        except UnknownEntityError as exc:
            return error(404, str(exc))
        body = resolved.to_dict()
        body["epoch"] = token
        self._resolve_cache[key] = body
        while len(self._resolve_cache) > self.resolve_cache_max:
            self._resolve_cache.popitem(last=False)
        self.resolve_cache_misses += 1
        emit(self.host.network, "resolve_cache_miss",
             host=self.host.name, epoch=token, master=self.host.name)
        return ok(body)

    def _ontology_route(self, request: Request) -> Response:
        return ok(self.ontology.to_dict())

    def replication_status(self) -> Dict:
        """Role/epoch/lag summary, also valid for unreplicated masters.

        An unreplicated master reports itself as a lone primary at epoch
        0 with zero lag, so operators read one uniform shape from
        ``/health`` whether or not HA is deployed.
        """
        if self.replication is not None:
            status = self.replication.status()
        else:
            status = {"role": "primary", "epoch": 0, "fenced": False,
                      "replication_lag": 0, "peers": 0}
        status["last_snapshot_age"] = self.last_snapshot_age
        return status

    def _health_route(self, request: Request) -> Response:
        self.expire_leases()
        payload = {
            "status": "ok",
            "registrations": self.registrations,
            "resolves_served": self.resolves_served,
            "active_leases": self.active_leases,
            "lease_evictions": self.lease_evictions,
            "ontology_nodes": self.ontology.node_count(),
            "ontology_epoch": self.ontology_epoch,
        }
        payload.update(self.replication_status())
        return ok(payload)

    def metrics(self) -> Dict:
        """Flat counter snapshot served by ``GET /metrics``."""
        counters = {
            "registrations": self.registrations,
            "resolves_served": self.resolves_served,
            "active_leases": self.active_leases,
            "lease_evictions": self.lease_evictions,
            "ontology_nodes": self.ontology.node_count(),
            "ontology_epoch": self.ontology_epoch,
            "resolve_cache_hits": self.resolve_cache_hits,
            "resolve_cache_misses": self.resolve_cache_misses,
            "resolve_not_modified": self.resolve_not_modified,
            "requests_served": self.service.requests_served,
            "requests_failed": self.service.requests_failed,
            "snapshots_written": self.snapshots_written,
        }
        counters.update(self.replication_status())
        return counters

    def _metrics_route(self, request: Request) -> Response:
        self.expire_leases()
        registry = self.host.network.metrics
        return ok({
            "component": self.metrics(),
            "registry": registry.snapshot() if registry is not None
            else {},
        })

    def _districts_route(self, request: Request) -> Response:
        return ok({
            "districts": [
                {
                    "district_id": d.district_id,
                    "name": d.name,
                    "entities": len(d.entities),
                    "devices": sum(len(e.devices)
                                   for e in d.entities.values()),
                }
                for d in self.ontology.districts()
            ]
        })
