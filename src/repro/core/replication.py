"""Replication core: log streaming, epoch-fenced failover, rejoin.

The paper makes the master the *unique entry point* of the district —
which makes it the unique point of failure too.  This module keeps the
entry point logically unique while physically replicating it, and
factors the machinery into a reusable :class:`ReplicatedNode` core so
other hub nodes (the middleware broker, see
:mod:`repro.middleware.replication`) get the same guarantees:

* a **primary** accepts writes, appends each one to a replication log
  and streams the entries (plus periodic full state snapshots) to 1–2
  **standby** replicas over the simulated network;
* standbys apply the log to their own state and serve read-only
  queries — reads survive the primary;
* when the primary misses heartbeats, a deterministic **seniority
  failover** promotes the most senior live standby: each member owns a
  static rank, and standby *r* waits ``failover_timeout + r *
  promotion_stagger`` simulated seconds of primary silence before
  promoting itself with a bumped **epoch** — no wall clock, no votes,
  fully reproducible.  Ranks never collide, so no two members can ever
  promote into the same epoch: the most senior silent standby always
  moves first, juniors only when it is dead too (a deposed original
  primary re-enters the line at its own rank 0, the most senior);
* **epoch fencing** makes a healed partition safe: every replication
  message carries the sender's epoch, receivers reject anything from an
  older epoch, and a deposed primary that learns of a newer epoch steps
  down and resyncs from the new primary's snapshot.

The no-split-brain invariant
----------------------------

A primary that cannot reach *any* standby **fences itself**: after
``fencing_timeout`` seconds without a replication ack it rejects writes
with :class:`~repro.errors.NotPrimaryError` (a retryable 503 on the
wire).  Because the configuration enforces

``fencing_timeout + heartbeat_period <= failover_timeout``

the old primary is read-only *before* the most senior standby's
failover timer can fire, so at no point do two replicas accept writes
concurrently — a healed partition cannot split-brain the state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # import cycle: master -> persistence -> storage -> broker
    from repro.core.master import MasterNode

from repro.errors import (
    ConfigurationError,
    NotPrimaryError,
    RegistrationError,
)
from repro.network.webservice import (
    GET,
    POST,
    HttpClient,
    Request,
    Response,
    WebService,
    ok,
)
from repro.network.transport import Host
from repro.observability.tracing import emit

PRIMARY = "primary"
STANDBY = "standby"


@dataclass
class ReplicationConfig:
    """Timing knobs of a replication group (simulated seconds)."""

    #: primary -> standby heartbeat/stream period
    heartbeat_period: float = 2.0
    #: primary self-fences after this long without any standby ack
    fencing_timeout: float = 6.0
    #: a standby promotes after this long without primary contact
    #: (plus its rank's stagger)
    failover_timeout: float = 8.0
    #: extra wait per seniority rank, so exactly one standby promotes
    promotion_stagger: float = 4.0
    #: period of full-snapshot streaming (and persisted snapshots when
    #: the primary has a snapshot path configured)
    snapshot_period: float = 30.0

    def __post_init__(self) -> None:
        if self.heartbeat_period <= 0:
            raise ConfigurationError("heartbeat period must be positive")
        if self.fencing_timeout <= self.heartbeat_period:
            raise ConfigurationError(
                "fencing timeout must exceed the heartbeat period"
            )
        if self.fencing_timeout + self.heartbeat_period \
                > self.failover_timeout:
            raise ConfigurationError(
                "no-split-brain invariant violated: need fencing_timeout "
                "+ heartbeat_period <= failover_timeout so a cut-off "
                "primary fences itself before any standby can promote"
            )
        if self.promotion_stagger < 0:
            raise ConfigurationError("promotion stagger must be >= 0")
        if self.snapshot_period <= 0:
            raise ConfigurationError("snapshot period must be positive")


class ReplicationApplyError(Exception):
    """A replicated entry could not be applied to local state.

    Raised by :meth:`ReplicatedNode.node_apply` implementations; the
    receiver answers with ``resync`` so the primary streams a snapshot
    that replaces the divergent state.
    """


class ReplicatedNode:
    """One member of a replication group — the reusable core.

    Owns role/epoch/fencing/sequence bookkeeping, the ``/replicate``
    and ``/repl/status`` routes, the periodic tick (heartbeats and
    fencing on the primary, failure detection on standbys) on the DES
    scheduler, and the write-path gates.  Subclasses bind the machinery
    to a concrete node by implementing the small hook surface below
    (:meth:`node_snapshot`, :meth:`node_apply`, ...).
    """

    #: target-kind label used in emitted events and error messages
    kind = "node"
    #: prefix of the promotion/stepdown/fencing metric counters
    metric_prefix = "replication."

    def __init__(self, rank: int, config: ReplicationConfig):
        self.rank = rank
        self.config = config
        self.role = PRIMARY if rank == 0 else STANDBY
        self.epoch = 0
        self.fenced = False
        #: last log sequence appended (primary) — monotone per epoch chain
        self.log_seq = 0
        #: last log sequence applied locally (standby)
        self.applied_seq = 0
        #: newest sequence the primary has advertised to us
        self.primary_seq = 0
        self.primary_name: Optional[str] = self.name if rank == 0 else None
        self.counters: Dict[str, int] = {
            "writes_accepted": 0,
            "writes_rejected_not_primary": 0,
            "writes_rejected_fenced": 0,
            "entries_applied": 0,
            "snapshots_sent": 0,
            "snapshots_applied": 0,
            "stale_epoch_rejections": 0,
            "promotions": 0,
            "stepdowns": 0,
            "fencings": 0,
            "epoch_adoptions": 0,
            "resyncs": 0,
        }
        self._group: Optional["ReplicationGroup"] = None
        self._peers: Dict[str, str] = {}  # name -> base uri, rank order
        self._acked_seq: Dict[str, int] = {}
        #: set on epoch adoption: local state may diverge from the new
        #: primary's chain, so apply nothing until a snapshot replaces it
        self._needs_resync = False
        self._client = HttpClient(self.host, timeout=config.fencing_timeout)
        self._tick_task = None
        self._last_primary_contact = 0.0
        self._last_any_ack = 0.0
        self._last_snapshot_stream = 0.0

    # -- hook surface (bind the core to a concrete node) -------------------

    @property
    def host(self) -> Host:
        """The member's network host."""
        raise NotImplementedError

    @property
    def service(self) -> WebService:
        """The member's Web Service (gains the replication routes)."""
        raise NotImplementedError

    @property
    def uri(self) -> str:
        return self.service.base_uri

    @property
    def name(self) -> str:
        return self.host.name

    def bind_node(self) -> None:
        """Point the wrapped node back at this agent (``.replication``)."""

    def node_snapshot(self) -> Dict:
        """Full replicable state, as a JSON-able dict."""
        raise NotImplementedError

    def node_restore(self, snapshot: Dict) -> None:
        """Replace local state with *snapshot* (resync / catch-up)."""
        raise NotImplementedError

    def node_apply(self, payload: Dict) -> None:
        """Apply one streamed log entry; raise
        :class:`ReplicationApplyError` on divergence to force a resync."""
        raise NotImplementedError

    def on_promote(self) -> None:
        """Extra node work on promotion (epoch bumps, timer arming...)."""

    def on_epoch_adopted(self) -> None:
        """Extra node work when a newer epoch is adopted."""

    def write_local_snapshot(self) -> None:
        """Persist a local durable snapshot, if the node has one."""

    # -- identity ---------------------------------------------------------

    @property
    def _now(self) -> float:
        return self.host.network.scheduler.now

    # -- wiring -----------------------------------------------------------

    def attach(self, group: "ReplicationGroup") -> None:
        """Join *group*: learn the peer set and claim the node's hooks."""
        self._group = group
        self._peers = {m.name: m.uri for m in group.members
                       if m is not self}
        self.bind_node()
        self.service.add_route(POST, "/replicate", self._replicate_route)
        self.service.add_route(GET, "/repl/status", self._status_route)

    def start(self) -> None:
        """Arm the periodic tick (idempotent)."""
        if self._tick_task is not None:
            return
        now = self._now
        self._last_primary_contact = now
        self._last_any_ack = now
        self._last_snapshot_stream = now
        # tiny rank-staggered start keeps member tick ordering
        # deterministic without aligning every send on the same instant
        self._tick_task = self.host.network.scheduler.every(
            self.config.heartbeat_period, self._tick,
            initial_delay=self.rank * 1e-3,
        )

    def stop(self) -> None:
        if self._tick_task is not None:
            self._tick_task.stop()
            self._tick_task = None

    # -- write path (hooks called by the wrapped node) ---------------------

    def check_writable(self) -> None:
        """Gate a write: only an unfenced primary accepts writes."""
        if self.role != PRIMARY:
            self.counters["writes_rejected_not_primary"] += 1
            hint = f"; primary is {self.primary_name}" \
                if self.primary_name else ""
            raise NotPrimaryError(
                f"{self.kind} {self.name} is a standby and rejects "
                f"writes{hint}"
            )
        if self.fenced:
            self.counters["writes_rejected_fenced"] += 1
            raise NotPrimaryError(
                f"primary {self.name} is fenced (no standby contact for "
                f"> {self.config.fencing_timeout}s) and rejects writes"
            )

    def record_write(self, payload: Dict) -> None:
        """Append one accepted write to the log and stream it."""
        self.log_seq += 1
        self.applied_seq = self.log_seq
        self.counters["writes_accepted"] += 1
        entry = {"seq": self.log_seq, "payload": payload}
        for peer in self._peers:
            self._send(peer, entries=[entry])

    # -- replication transport --------------------------------------------

    def _send(self, peer: str, entries: Optional[List[Dict]] = None,
              snapshot: Optional[Dict] = None) -> None:
        body = {
            "sender": self.name,
            "epoch": self.epoch,
            "seq": self.log_seq,
            "entries": entries or [],
        }
        if snapshot is not None:
            body["snapshot"] = snapshot
        future = self._client.request(
            self._peers[peer] + "replicate", POST, body=body,
            timeout=self.config.heartbeat_period,
        )
        future.add_done_callback(
            lambda fut, name=peer: self._on_ack(name, fut)
        )

    def _send_snapshot(self, peer: str) -> None:
        snapshot = dict(self.node_snapshot(), seq=self.log_seq)
        self.counters["snapshots_sent"] += 1
        emit(self.host.network, "repl_snapshot", host=self.name,
             peer=peer, seq=self.log_seq, **{self.kind: self.name})
        self._send(peer, snapshot=snapshot)

    def _on_ack(self, peer: str, future) -> None:
        try:
            response = future.result()
        except Exception:
            return  # unreachable peer: fencing/failover timers handle it
        if not response.ok or not isinstance(response.body, dict):
            return
        body = response.body
        if not body.get("accepted"):
            peer_epoch = int(body.get("epoch", -1))
            if peer_epoch > self.epoch:
                # we were deposed while partitioned away
                self._adopt_epoch(peer_epoch, deposed_by=peer)
            return
        now = self._now
        self._acked_seq[peer] = int(body.get("applied", 0))
        self._last_any_ack = now
        if self.fenced:
            self.fenced = False
            emit(self.host.network, "repl_unfenced", host=self.name,
                 epoch=self.epoch, **{self.kind: self.name})
        if body.get("resync") and self.role == PRIMARY:
            self.counters["resyncs"] += 1
            self._send_snapshot(peer)

    # -- inbound replication ----------------------------------------------

    def _replicate_route(self, request: Request) -> Response:
        body = request.body or {}
        epoch = int(body.get("epoch", 0))
        sender = body.get("sender", "")
        if epoch < self.epoch:
            # epoch fencing: a deposed primary's stream is rejected, and
            # the rejection carries our epoch so it steps down
            self.counters["stale_epoch_rejections"] += 1
            emit(self.host.network, "repl_stale_rejected",
                 host=self.name, sender=sender, sender_epoch=epoch,
                 epoch=self.epoch, **{self.kind: self.name})
            return ok({"accepted": False, "epoch": self.epoch,
                       "applied": self.applied_seq})
        if epoch > self.epoch:
            self._adopt_epoch(epoch, deposed_by=sender)
        self.primary_name = sender
        self.primary_seq = int(body.get("seq", 0))
        self._last_primary_contact = self._now
        snapshot = body.get("snapshot")
        if snapshot is not None and (
                self._needs_resync
                or int(snapshot.get("seq", 0)) >= self.applied_seq):
            # after an epoch change the snapshot replaces local state
            # even if our sequence was ahead: entries the old primary
            # never replicated are a divergent tail, discarded here
            self.node_restore(snapshot)
            self.applied_seq = int(snapshot.get("seq", 0))
            self.counters["snapshots_applied"] += 1
            self._needs_resync = False
        resync = self._needs_resync
        if not resync:
            for entry in body.get("entries", []):
                seq = int(entry["seq"])
                if seq <= self.applied_seq:
                    continue  # duplicate delivery of an applied entry
                if seq != self.applied_seq + 1:
                    resync = True  # gap: ask the primary for a snapshot
                    break
                try:
                    self.node_apply(entry["payload"])
                except ReplicationApplyError:
                    resync = True  # divergent state: snapshot resolves it
                    break
                self.applied_seq = seq
                self.counters["entries_applied"] += 1
        if not resync and self.primary_seq > self.applied_seq:
            resync = True
        return ok({"accepted": True, "epoch": self.epoch,
                   "applied": self.applied_seq, "resync": resync})

    def _status_route(self, request: Request) -> Response:
        return ok(self.status())

    # -- role transitions --------------------------------------------------

    def _adopt_epoch(self, epoch: int, deposed_by: str = "") -> None:
        self.epoch = epoch
        self._needs_resync = True  # cleared by the new primary's snapshot
        self.on_epoch_adopted()
        self.counters["epoch_adoptions"] += 1
        emit(self.host.network, "repl_epoch_adopted", host=self.name,
             epoch=epoch, **{self.kind: self.name})
        if self.role == PRIMARY:
            self.role = STANDBY
            self.fenced = False
            self.counters["stepdowns"] += 1
            self._last_primary_contact = self._now  # grace before retrying
            emit(self.host.network, "repl_stepdown", host=self.name,
                 epoch=epoch, deposed_by=deposed_by,
                 **{self.kind: self.name})
            self._count_metric(self.metric_prefix + "stepdowns")

    def _promote(self) -> None:
        self.epoch += 1
        self.role = PRIMARY
        self.fenced = False
        self._needs_resync = False
        self.log_seq = self.applied_seq
        self.primary_name = self.name
        self.on_promote()
        now = self._now
        self._last_any_ack = now
        self._last_snapshot_stream = now
        self._acked_seq = {}
        self.counters["promotions"] += 1
        emit(self.host.network, "repl_promotion", host=self.name,
             epoch=self.epoch, **{self.kind: self.name})
        self._count_metric(self.metric_prefix + "promotions")
        # announce with a full snapshot: peers adopt the new epoch (any
        # surviving old primary steps down) and catch up in one hop
        for peer in self._peers:
            self._send_snapshot(peer)

    def _count_metric(self, name: str) -> None:
        registry = self.host.network.metrics
        if registry is not None:
            registry.counter(name).inc()

    # -- periodic tick -----------------------------------------------------

    def _tick(self) -> None:
        now = self._now
        if self.role == PRIMARY:
            if now - self._last_snapshot_stream \
                    >= self.config.snapshot_period:
                self._last_snapshot_stream = now
                self.write_local_snapshot()
                for peer in self._peers:
                    self._send_snapshot(peer)
            else:
                for peer in self._peers:
                    self._send(peer)  # heartbeat (epoch + seq, no entries)
            if self._peers and not self.fenced and \
                    now - self._last_any_ack > self.config.fencing_timeout:
                self.fenced = True
                self.counters["fencings"] += 1
                emit(self.host.network, "repl_fenced", host=self.name,
                     epoch=self.epoch, **{self.kind: self.name})
                self._count_metric(self.metric_prefix + "fencings")
        else:
            # distinct per-rank deadlines: no two members can promote
            # into the same epoch, even a deposed rank-0 primary
            deadline = self.config.failover_timeout \
                + self.rank * self.config.promotion_stagger
            if now - self._last_primary_contact > deadline:
                self._promote()

    # -- reporting ---------------------------------------------------------

    def replication_lag(self) -> int:
        """Entries the slowest replica is behind (primary view), or how
        far this standby trails the primary's advertised sequence."""
        if self.role == PRIMARY:
            if not self._peers:
                return 0
            slowest = min(self._acked_seq.get(name, 0)
                          for name in self._peers)
            return max(0, self.log_seq - slowest)
        return max(0, self.primary_seq - self.applied_seq)

    def status(self) -> Dict:
        """Role/epoch/lag summary merged into ``/health`` and ``/metrics``."""
        return {
            "role": self.role,
            "epoch": self.epoch,
            "fenced": self.fenced,
            "replication_lag": self.replication_lag(),
            "log_seq": self.log_seq if self.role == PRIMARY
            else self.applied_seq,
            "primary": self.primary_name,
            "peers": len(self._peers),
        }


class ReplicatedMaster(ReplicatedNode):
    """One member of a replicated master group.

    Wraps a :class:`~repro.core.master.MasterNode`, binding the
    :class:`ReplicatedNode` core to the master's snapshot/registration
    surface.
    """

    kind = "master"
    metric_prefix = "replication."

    def __init__(self, master: MasterNode, rank: int,
                 config: ReplicationConfig):
        self.master = master
        super().__init__(rank, config)

    @property
    def host(self) -> Host:
        return self.master.host

    @property
    def service(self) -> WebService:
        return self.master.service

    @property
    def uri(self) -> str:
        return self.master.uri

    def bind_node(self) -> None:
        self.master.replication = self

    def node_snapshot(self) -> Dict:
        return self.master.snapshot()

    def node_restore(self, snapshot: Dict) -> None:
        self.master.restore_snapshot(snapshot)

    def node_apply(self, payload: Dict) -> None:
        try:
            self.master.apply_registration(payload)
        except RegistrationError as exc:
            raise ReplicationApplyError(str(exc)) from exc

    def on_promote(self) -> None:
        # bump the ontology epoch too: token monotonicity across
        # failover — no client revalidation against the new primary can
        # 304-match an answer minted by the deposed one
        self.master.bump_epoch()
        self.master.invalidate_resolve_cache()

    def on_epoch_adopted(self) -> None:
        # the replication epoch is part of the resolve-cache validator:
        # answers cached under the old epoch must stop being served now,
        # before the new primary's snapshot rewrites local state
        self.master.invalidate_resolve_cache()

    def write_local_snapshot(self) -> None:
        self.master.write_snapshot()


class ReplicationGroup:
    """A wired set of replicas, in seniority (rank) order."""

    def __init__(self, members: List[ReplicatedNode]):
        if len(members) < 2:
            raise ConfigurationError(
                "a replication group needs a primary and >= 1 standby"
            )
        self.members = list(members)

    @property
    def primary(self) -> ReplicatedNode:
        """The current primary: highest epoch, seniority breaking ties."""
        primaries = [m for m in self.members if m.role == PRIMARY]
        if primaries:
            return max(primaries, key=lambda m: (m.epoch, -m.rank))
        return self.members[0]  # mid-failover: the original seniority

    def uris(self) -> List[str]:
        """Every member's base URI, seniority first — the client's
        :class:`~repro.network.resilience.FailoverSet` order."""
        return [m.uri for m in self.members]

    def hosts(self) -> List[str]:
        """Every member's host name, seniority first (raw-transport
        peers rotate over host names, not HTTP URIs)."""
        return [m.name for m in self.members]

    def member(self, name: str) -> ReplicatedNode:
        for member in self.members:
            if member.name == name:
                return member
        raise ConfigurationError(f"no replica named {name!r}")

    def counters(self) -> Dict[str, int]:
        """Group-wide counter totals (benchmark/metrics reporting)."""
        totals: Dict[str, int] = {}
        for member in self.members:
            for key, value in member.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def status(self) -> List[Dict]:
        return [dict(m.status(), name=m.name) for m in self.members]

    def stop(self) -> None:
        for member in self.members:
            member.stop()


class MasterReplicationGroup(ReplicationGroup):
    """A wired set of replicated masters, in seniority (rank) order."""

    @property
    def primary_master(self) -> MasterNode:
        return self.primary.master

    def masters(self) -> List[MasterNode]:
        return [m.master for m in self.members]


def replicate_master(master: MasterNode, standbys: int = 1,
                     config: Optional[ReplicationConfig] = None
                     ) -> MasterReplicationGroup:
    """Stand up *standbys* replica masters behind an existing primary.

    Each standby gets its own host (``<primary>-r1``, ``<primary>-r2``,
    ...) on the primary's network, a full :class:`MasterNode` serving
    read-only queries, and a replication agent wired to every peer.
    Returns the group with streaming and failure detection running.
    """
    from repro.core.master import MasterNode

    if master.replication is not None:
        raise ConfigurationError(
            f"master {master.host.name!r} is already replicated"
        )
    if standbys < 1:
        raise ConfigurationError("replication needs >= 1 standby")
    config = config or ReplicationConfig()
    network = master.host.network
    members = [ReplicatedMaster(master, 0, config)]
    for index in range(1, standbys + 1):
        host = network.add_host(f"{master.host.name}-r{index}")
        standby = MasterNode(host, default_lease=master.default_lease)
        members.append(ReplicatedMaster(standby, index, config))
    group = MasterReplicationGroup(members)
    for member in members:
        member.attach(group)
    for member in members:
        member.start()
    return group
