"""The paper's primary contribution: master node, client, integration.

* :class:`MasterNode` — unique entry point, ontology, redirect-only
  query resolution;
* :class:`DistrictClient` — the end-user application workflow
  (resolve -> fetch from proxies -> integrate);
* :func:`integrate` / :class:`IntegratedModel` — client-side merging of
  heterogeneous source models with conflict detection;
* :class:`ConsumptionProfiler` / :func:`awareness_report` — the energy
  profiling and user-awareness products built on top;
* :func:`replicate_master` / :class:`MasterReplicationGroup` — master
  high availability: replicated masters with epoch-fenced failover
  (see :mod:`repro.core.replication`).
"""

from repro.core.analytics import (
    Anomaly,
    AnomalyDetector,
    DemandResponsePlanner,
    SheddingPlan,
)
from repro.core.client import DistrictClient
from repro.core.integration import (
    IntegratedEntity,
    IntegratedModel,
    PropertyConflict,
    integrate,
)
from repro.core.master import MasterNode
from repro.core.monitoring import (
    AwarenessReport,
    BuildingAwareness,
    ConsumptionProfiler,
    awareness_report,
)
from repro.core.relay import RelayingMaster
from repro.core.replication import (
    MasterReplicationGroup,
    ReplicatedMaster,
    ReplicationConfig,
    replicate_master,
)

__all__ = [
    "Anomaly",
    "AnomalyDetector",
    "AwarenessReport",
    "BuildingAwareness",
    "ConsumptionProfiler",
    "DemandResponsePlanner",
    "DistrictClient",
    "IntegratedEntity",
    "IntegratedModel",
    "MasterNode",
    "MasterReplicationGroup",
    "PropertyConflict",
    "RelayingMaster",
    "ReplicatedMaster",
    "ReplicationConfig",
    "SheddingPlan",
    "awareness_report",
    "integrate",
    "replicate_master",
]
