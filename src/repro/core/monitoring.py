"""Consumption profiling and user-awareness reporting.

The paper's stated purposes: "(i) manage data to profile energy
consumption, from the whole city-district point-of-view down to the
single building" and "(iii) increase user awareness".  This module
computes exactly those products from an integrated area model:

* :class:`ConsumptionProfiler` — bucketed power profiles and energy
  totals at device, building, network and district level, rolled up
  from the retrieved measurements;
* :func:`awareness_report` — per-building energy intensity (kWh/m2,
  joining BIM floor areas with measured energy), rankings against the
  district average, and peak analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.integration import IntegratedEntity, IntegratedModel
from repro.errors import QueryError
from repro.storage.timeseries import TimeSeries, aligned_sum


def _power_series(entity: IntegratedEntity) -> List[TimeSeries]:
    """One series per power-sensing device of an entity."""
    out = []
    for device in entity.devices:
        if "power" not in device.quantities:
            continue
        samples = entity.samples(device.device_id, "power")
        if samples:
            out.append(TimeSeries(samples))
    return out


class ConsumptionProfiler:
    """Multi-resolution power/energy profiling over an integrated model."""

    def __init__(self, model: IntegratedModel, bucket: float = 900.0):
        if bucket <= 0:
            raise QueryError("profiling bucket must be positive")
        self.model = model
        self.bucket = bucket

    # -- single building ---------------------------------------------------

    def device_profile(self, entity_id: str, device_id: str
                       ) -> List[Tuple[float, float]]:
        """Bucketed mean power of one device."""
        entity = self.model.entity(entity_id)
        samples = entity.samples(device_id, "power")
        return TimeSeries(samples).resample(self.bucket, "mean")

    def building_profile(self, entity_id: str) -> List[Tuple[float, float]]:
        """Bucketed total power of one building (sum over its devices).

        Uses only the feeder meters (the first power device) when one
        exists, otherwise sums every power-sensing device — summing
        feeder and sub-meters would double-count.
        """
        entity = self.model.entity(entity_id)
        series = self._feeder_series(entity)
        if series is None:
            return aligned_sum(_power_series(entity), self.bucket)
        return series.resample(self.bucket, "mean")

    def _feeder_series(self, entity: IntegratedEntity
                       ) -> Optional[TimeSeries]:
        for device in entity.devices:
            if "power" in device.quantities and "energy" in \
                    device.quantities:
                samples = entity.samples(device.device_id, "power")
                if samples:
                    return TimeSeries(samples)
        return None

    # -- district ------------------------------------------------------------

    def district_profile(self) -> List[Tuple[float, float]]:
        """Bucketed total power of every building in the model."""
        per_building = []
        for entity in self.model.buildings:
            profile = self.building_profile(entity.entity_id)
            if profile:
                per_building.append(TimeSeries(profile))
        return aligned_sum(per_building, self.bucket)

    def building_energy_wh(self, entity_id: str) -> float:
        """Energy consumed by a building over the retrieved window."""
        profile = self.building_profile(entity_id)
        return TimeSeries(profile).integrate_hours()

    def district_energy_wh(self) -> float:
        """Energy consumed by the whole modelled area."""
        return sum(
            self.building_energy_wh(e.entity_id)
            for e in self.model.buildings
        )

    def peak(self, entity_id: Optional[str] = None
             ) -> Tuple[float, float]:
        """(time, power) of the peak bucket, district-wide or per building."""
        profile = (self.building_profile(entity_id) if entity_id
                   else self.district_profile())
        if not profile:
            raise QueryError("no samples to find a peak in")
        return max(profile, key=lambda p: p[1])


@dataclass
class BuildingAwareness:
    """Per-building awareness figures."""

    entity_id: str
    name: str
    energy_wh: float
    floor_area_m2: Optional[float]
    intensity_wh_per_m2: Optional[float]
    vs_district_average: Optional[float]  # 1.0 = average
    peak_time: float
    peak_watts: float


@dataclass
class AwarenessReport:
    """District awareness summary, ranked worst-first by intensity."""

    district_id: str
    window_hours: float
    district_energy_wh: float
    buildings: List[BuildingAwareness] = field(default_factory=list)

    @property
    def ranked(self) -> List[BuildingAwareness]:
        """Buildings with known intensity, most intensive first."""
        known = [b for b in self.buildings
                 if b.intensity_wh_per_m2 is not None]
        return sorted(known, key=lambda b: -b.intensity_wh_per_m2)

    def building(self, entity_id: str) -> BuildingAwareness:
        for building in self.buildings:
            if building.entity_id == entity_id:
                return building
        raise QueryError(f"no building {entity_id!r} in report")


def awareness_report(model: IntegratedModel, bucket: float = 900.0,
                     window_hours: Optional[float] = None
                     ) -> AwarenessReport:
    """Build the user-awareness report for an integrated area model.

    Floor areas come from the BIM models (via the merged properties),
    energy from the measured power profiles — the cross-source join the
    infrastructure exists to make easy.
    """
    profiler = ConsumptionProfiler(model, bucket)
    entries: List[BuildingAwareness] = []
    intensities: List[float] = []
    for entity in model.buildings:
        energy = profiler.building_energy_wh(entity.entity_id)
        raw_area = entity.properties.get("floor_area_m2")
        area = float(raw_area) if raw_area else None
        intensity = energy / area if area else None
        try:
            peak_time, peak_watts = profiler.peak(entity.entity_id)
        except QueryError:
            peak_time, peak_watts = 0.0, 0.0
        entries.append(BuildingAwareness(
            entity_id=entity.entity_id,
            name=entity.name,
            energy_wh=energy,
            floor_area_m2=area,
            intensity_wh_per_m2=intensity,
            vs_district_average=None,
            peak_time=peak_time,
            peak_watts=peak_watts,
        ))
        if intensity is not None:
            intensities.append(intensity)
    average = sum(intensities) / len(intensities) if intensities else None
    if average:
        for entry in entries:
            if entry.intensity_wh_per_m2 is not None:
                entry.vs_district_average = \
                    entry.intensity_wh_per_m2 / average
    if window_hours is None:
        window_hours = _window_hours(model)
    return AwarenessReport(
        district_id=model.district_id,
        window_hours=window_hours,
        district_energy_wh=profiler.district_energy_wh(),
        buildings=entries,
    )


def _window_hours(model: IntegratedModel) -> float:
    lo, hi = float("inf"), float("-inf")
    for entity in model.entities.values():
        for samples in entity.measurements.values():
            if samples:
                lo = min(lo, samples[0][0])
                hi = max(hi, samples[-1][0])
    if hi <= lo:
        return 0.0
    return (hi - lo) / 3600.0
