"""The end-user application: resolve, fetch, integrate.

:class:`DistrictClient` implements the client workflow of Figure 1(a):

1. ask the master to resolve an area query — the master answers with
   proxy Web-Service URIs, never data;
2. fetch each entity's models directly from its BIM/SIM proxies and its
   GIS feature from the district's GIS proxy;
3. fetch device data directly from the Device-proxies;
4. integrate everything client-side into an
   :class:`~repro.core.integration.IntegratedModel`.

The client also exposes remote control (actuation through the owning
Device-proxy) and live subscriptions on the middleware.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.common import serialization
from repro.common.cdf import ActuationResult, EntityModel
from repro.common.serialization import JSON_FORMAT
from repro.errors import (
    CircuitOpenError,
    IntegrationError,
    QueryError,
    RequestTimeoutError,
    ServiceError,
)
from repro.middleware.broker import Event
from repro.middleware.peer import MiddlewarePeer, Subscription
from repro.middleware.topics import actuation_topic, measurement_filter
from repro.network.resilience import FailoverSet, ResiliencePolicy
from repro.network.transport import Host
from repro.network.webservice import HttpClient
from repro.observability.tracing import INTERNAL, emit
from repro.core.integration import IntegratedModel, integrate
from repro.ontology.queries import (
    AreaQuery,
    ResolvedArea,
    ResolvedDevice,
    ResolvedEntity,
)
from repro.storage.query import RangeQuery


class _ResolveCacheEntry:
    """One cached ``/resolve`` answer with its validator and fetch time."""

    __slots__ = ("area", "epoch", "fetched_at")

    def __init__(self, area: ResolvedArea, epoch: str, fetched_at: float):
        self.area = area
        self.epoch = epoch
        self.fetched_at = fetched_at


class DistrictClient:
    """An end-user application speaking to a master (or master set).

    *master_uri* accepts one URI (the paper's single master), a
    sequence of URIs, or a shared
    :class:`~repro.network.resilience.FailoverSet` — a replicated
    master set in seniority order (see
    :mod:`repro.core.replication`).  Master calls stick to the replica
    that last worked and rotate to the next on timeouts, open circuits
    and 5xx answers, so a primary kill costs one failed call instead of
    an outage.

    *resolve_cache_ttl* (simulated seconds) opts the client into the
    resolve fast path: a :meth:`resolve` answer younger than the TTL is
    served from memory with no network traffic, and an older one is
    *revalidated* with a conditional GET (``if_none_match`` carrying the
    answer's epoch token) — the master confirms an unchanged ontology
    with a bodyless 304-style reply, skipping the full payload.  The
    TTL bounds staleness: a proxy evicted mid-TTL can keep resolving
    from this client's cache for at most ``resolve_cache_ttl`` seconds.
    None (the default) disables caching entirely.
    """

    def __init__(self, host: Host,
                 master_uri: Union[str, Sequence[str], FailoverSet],
                 broker_host: Union[str, Sequence[str], None] = None,
                 timeout: float = 5.0,
                 policy: Optional[ResiliencePolicy] = None,
                 resolve_cache_ttl: Optional[float] = None,
                 resolve_cache_max: int = 64):
        self.host = host
        self.masters = master_uri if isinstance(master_uri, FailoverSet) \
            else FailoverSet(master_uri)
        self.http = HttpClient(host, timeout=timeout, policy=policy)
        self.peer = MiddlewarePeer(host, broker_host) if broker_host \
            else None
        self.models_fetched = 0
        self.data_requests = 0
        self.fetch_failures = 0
        self.resolve_cache_ttl = resolve_cache_ttl
        self.resolve_cache_max = resolve_cache_max
        self.resolve_cache_hits = 0
        self.resolve_cache_misses = 0
        self.resolve_revalidations = 0
        self.resolve_not_modified = 0
        self._resolve_cache: "OrderedDict[Tuple, _ResolveCacheEntry]" = \
            OrderedDict()

    @property
    def master_uri(self) -> str:
        """The master URI calls currently target (current set member)."""
        return self.masters.current

    @property
    def master_failovers(self) -> int:
        """How many times master calls rotated to another replica."""
        return self.masters.failovers

    def _master_get(self, path: str,
                    params: Optional[Dict[str, str]] = None):
        """GET from the master set, failing over across replicas.

        Tries each replica at most once per call, starting from the one
        that last worked; re-raises the final error when the whole set
        is down.  Retryable failures are the same ones the resilience
        layer recognises: timeouts, open circuits and 5xx answers
        (including the 503 a standby/fenced master returns for writes).
        """
        last_error: Optional[Exception] = None
        for _ in range(len(self.masters)):
            uri = self.masters.current
            try:
                return self.http.get(uri + path, params=params)
            except (RequestTimeoutError, CircuitOpenError) as exc:
                last_error = exc
            except ServiceError as exc:
                if exc.status < 500:
                    raise
                last_error = exc
            failed, uri = uri, self.masters.advance()
            emit(self.host.network, "master_failover", host=self.host.name,
                 failed=failed, next=uri, client=self.host.name)
        raise last_error

    # -- step 1: resolution ----------------------------------------------

    def resolve(self, query: AreaQuery,
                use_cache: bool = True) -> ResolvedArea:
        """Ask the master which proxies serve the queried area.

        With a replicated master set the answer may come from a
        read-only standby while the primary is down.

        With :attr:`resolve_cache_ttl` set, repeat queries are served
        from the client cache (fresh within the TTL) or revalidated
        against the master's ontology epoch (one tiny conditional GET
        instead of the full payload); ``use_cache=False`` forces a full
        fetch for one call.
        """
        if self.resolve_cache_ttl is None or not use_cache:
            response = self._master_get("/resolve",
                                        params=query.to_params())
            return ResolvedArea.from_dict(response.body)
        return self._resolve_cached(query)

    def _resolve_cached(self, query: AreaQuery) -> ResolvedArea:
        params = query.to_params()
        key = tuple(sorted(params.items()))
        now = self.host.network.scheduler.now
        entry = self._resolve_cache.get(key)
        if entry is not None and \
                now - entry.fetched_at < self.resolve_cache_ttl:
            self._resolve_cache.move_to_end(key)
            self.resolve_cache_hits += 1
            emit(self.host.network, "resolve_cache_hit",
                 host=self.host.name, epoch=entry.epoch,
                 client=self.host.name)
            return entry.area
        if entry is not None and entry.epoch:
            # stale entry with a validator: revalidate via conditional
            # GET — a 304 refreshes the TTL without any payload
            self.resolve_revalidations += 1
            params["if_none_match"] = entry.epoch
            try:
                response = self._master_get("/resolve", params=params)
            except ServiceError as exc:
                if exc.status == 304:
                    entry.fetched_at = self.host.network.scheduler.now
                    self._resolve_cache.move_to_end(key)
                    self.resolve_not_modified += 1
                    emit(self.host.network, "resolve_cache_not_modified",
                         host=self.host.name, epoch=entry.epoch,
                         client=self.host.name)
                    return entry.area
                raise
        else:
            self.resolve_cache_misses += 1
            emit(self.host.network, "resolve_cache_miss",
                 host=self.host.name, client=self.host.name)
            response = self._master_get("/resolve", params=params)
        area = ResolvedArea.from_dict(response.body)
        epoch = response.body.get("epoch", "") \
            if isinstance(response.body, dict) else ""
        self._resolve_cache[key] = _ResolveCacheEntry(
            area, epoch, self.host.network.scheduler.now
        )
        self._resolve_cache.move_to_end(key)
        while len(self._resolve_cache) > self.resolve_cache_max:
            self._resolve_cache.popitem(last=False)
        return area

    # -- step 2: model retrieval --------------------------------------------

    def fetch_entity_models(self, entity: ResolvedEntity,
                            gis_uris: Tuple[str, ...] = (),
                            fmt: str = JSON_FORMAT,
                            strict: bool = True) -> List[EntityModel]:
        """Fetch every source model of one entity from its proxies.

        With ``strict=False`` an unreachable or failing proxy degrades
        the answer (its model is simply missing) instead of raising —
        the behaviour a resilient dashboard wants during partial
        outages.  Failures are counted in :attr:`fetch_failures`.
        """
        models: List[EntityModel] = []
        for source_kind in sorted(entity.proxy_uris):
            uri = entity.proxy_uris[source_kind]
            document = self._fetch_model(
                uri.rstrip("/") + "/model", {"format": fmt}, strict
            )
            if document is None:
                continue
            if isinstance(document, list):
                raise IntegrationError(
                    f"{source_kind} proxy returned a list for a model"
                )
            models.append(document)
        if entity.gis_feature_id and gis_uris:
            document = self._fetch_model(
                gis_uris[0].rstrip("/")
                + f"/feature/{entity.gis_feature_id}",
                {"format": fmt, "entity_id": entity.entity_id},
                strict,
            )
            if document is not None:
                models.append(document)
        return models

    def _fetch_model(self, uri: str, params: Dict[str, str], strict: bool):
        try:
            response = self.http.get(uri, params=params)
        except (ServiceError, RequestTimeoutError, CircuitOpenError):
            if strict:
                raise
            self.fetch_failures += 1
            return None
        self.models_fetched += 1
        return serialization.decode(response.body["document"],
                                    response.body["format"])

    # -- step 3: data retrieval ------------------------------------------------

    def fetch_device_data(self, device: ResolvedDevice, quantity: str,
                          start: Optional[float] = None,
                          end: Optional[float] = None,
                          bucket: Optional[float] = None,
                          agg: str = "mean",
                          strict: bool = True
                          ) -> List[Tuple[float, float]]:
        """Fetch one device quantity's samples from its Device-proxy.

        With ``strict=False`` an unreachable or failing Device-proxy
        yields an empty sample list (counted in :attr:`fetch_failures`)
        instead of raising — mirroring the model-fetch behaviour so a
        degraded ``build_area_model(with_data=True)`` completes.
        """
        if quantity not in device.quantities:
            raise QueryError(
                f"device {device.device_id} does not sense {quantity!r}"
            )
        query = RangeQuery(device.device_id, quantity, start=start, end=end,
                           bucket=bucket, agg=agg)
        self.data_requests += 1
        try:
            response = self.http.get(
                device.proxy_uri.rstrip("/") + "/data",
                params=query.to_params(),
            )
        except ServiceError as exc:
            if exc.status == 404:
                return []  # no samples collected yet
            if strict:
                raise
            self.fetch_failures += 1
            return []
        except (RequestTimeoutError, CircuitOpenError):
            if strict:
                raise
            self.fetch_failures += 1
            return []
        return [(t, v) for t, v in response.body["samples"]]

    def fetch_latest(self, device: ResolvedDevice, quantity: str,
                     strict: bool = True) -> Optional[Dict]:
        """Fetch the most recent sample of one device quantity.

        With ``strict=False`` a failed fetch returns None (counted in
        :attr:`fetch_failures`) instead of raising.
        """
        self.data_requests += 1
        try:
            response = self.http.get(
                device.proxy_uri.rstrip("/")
                + f"/latest/{device.device_id}/{quantity}"
            )
        except (ServiceError, RequestTimeoutError, CircuitOpenError):
            if strict:
                raise
            self.fetch_failures += 1
            return None
        return response.body

    # -- step 4: integration ---------------------------------------------------

    def build_area_model(self, query: AreaQuery,
                         with_data: bool = False,
                         data_start: Optional[float] = None,
                         data_end: Optional[float] = None,
                         data_bucket: Optional[float] = None,
                         strict: bool = True
                         ) -> IntegratedModel:
        """The full workflow: resolve, fetch models (and data), integrate.

        ``strict=False`` degrades gracefully through proxy outages (the
        affected sources are missing from the model) instead of raising.

        With tracing installed on the network the whole workflow roots
        one trace: a ``build_area_model`` span whose children are the
        per-request client spans (resolve, each model/data fetch), each
        in turn parenting the server span of the proxy that answered.
        """
        tracer = self.host.network.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span("build_area_model", kind=INTERNAL,
                             host=self.host.name,
                             attributes={"strict": strict,
                                         "with_data": with_data}):
                return self._build_area_model(
                    query, with_data, data_start, data_end, data_bucket,
                    strict,
                )
        return self._build_area_model(query, with_data, data_start,
                                      data_end, data_bucket, strict)

    def _build_area_model(self, query: AreaQuery, with_data: bool,
                          data_start: Optional[float],
                          data_end: Optional[float],
                          data_bucket: Optional[float],
                          strict: bool) -> IntegratedModel:
        resolved = self.resolve(query)
        models: Dict[str, List[EntityModel]] = {}
        measurements: Dict[str, Dict] = {}
        for entity in resolved.entities:
            models[entity.entity_id] = self.fetch_entity_models(
                entity, resolved.gis_uris, strict=strict
            )
            if with_data:
                per_device: Dict[Tuple[str, str], List] = {}
                for device in entity.devices:
                    for quantity in device.quantities:
                        per_device[(device.device_id, quantity)] = \
                            self.fetch_device_data(
                                device, quantity, start=data_start,
                                end=data_end, bucket=data_bucket,
                                strict=strict,
                            )
                measurements[entity.entity_id] = per_device
        return integrate(resolved, models,
                         measurements if with_data else None)

    # -- control and live data --------------------------------------------------

    def actuate(self, device: ResolvedDevice, command: str,
                value: Optional[float] = None,
                on_result: Optional[Callable[[ActuationResult], None]] = None
                ) -> Dict:
        """Send a command to an actuator through its Device-proxy.

        Returns the dispatch acknowledgement; the eventual
        :class:`ActuationResult` arrives on the middleware and is passed
        to *on_result* if given (requires a broker connection).
        """
        if not device.is_actuator:
            raise QueryError(f"device {device.device_id} is not an actuator")
        if on_result is not None:
            if self.peer is None:
                raise QueryError(
                    "actuation callback requires a broker connection"
                )

            subscription: List[Subscription] = []

            def deliver(event: Event) -> None:
                if isinstance(event.payload, dict) and \
                        event.payload.get("record") == "actuation_result":
                    on_result(ActuationResult.from_dict(event.payload))
                    # one-shot: drop the subscription once the matching
                    # result arrived, so repeated actuate() calls do not
                    # accumulate live subscriptions on the broker
                    if subscription:
                        subscription.pop().unsubscribe()

            subscription.append(
                self.peer.subscribe(actuation_topic(device.device_id),
                                    deliver)
            )
        response = self.http.post(
            device.proxy_uri.rstrip("/") + f"/actuate/{device.device_id}",
            body={"command": command, "value": value},
        )
        return response.body

    def subscribe_measurements(self, callback: Callable[[Event], None],
                               district_id: str = "+",
                               entity_id: str = "+",
                               device_id: str = "+",
                               quantity: str = "+") -> Subscription:
        """Live subscription to measurement events (requires broker)."""
        if self.peer is None:
            raise QueryError("subscription requires a broker connection")
        pattern = measurement_filter(district_id, entity_id, device_id,
                                     quantity)
        return self.peer.subscribe(pattern, callback)
