"""Relay mode: the ablation of the master's redirect design.

The paper's master "redirects the users to the interested data sources"
instead of fetching data itself.  :class:`RelayingMaster` adds the
alternative — a ``/fetch`` endpoint where the master resolves the area,
queries every proxy itself, and returns the merged payload — so the A1
ablation benchmark can measure what the redirect design buys: with a
relay, every byte of every answer flows through the master's host and
concurrent clients queue behind each other.

This is deliberately a subclass used only by the ablation; the
production deployment never relays.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common import serialization
from repro.errors import (
    QueryError,
    RequestTimeoutError,
    ServiceError,
    UnknownEntityError,
)
from repro.network.transport import Host
from repro.network.webservice import GET, HttpClient, Request, Response, error, ok
from repro.core.master import MasterNode
from repro.ontology.queries import AreaQuery
from repro.storage.query import RangeQuery


class RelayingMaster(MasterNode):
    """A master node that can also fetch and merge on the client's behalf."""

    def __init__(self, host: Host, processing_delay: float = 2e-4):
        super().__init__(host, processing_delay)
        self.relays_served = 0
        self._relay_client = HttpClient(host)
        self.service.add_route(GET, "/fetch", self._fetch_route)

    def _fetch_route(self, request: Request) -> Response:
        try:
            query = AreaQuery.from_params(request.params)
            resolved = self.resolve_area(query)
        except QueryError as exc:
            return error(400, str(exc))
        except UnknownEntityError as exc:
            return error(404, str(exc))
        with_data = request.params.get("with_data") == "1"
        entities: List[Dict] = []
        for entity in resolved.entities:
            models = []
            for source_kind in sorted(entity.proxy_uris):
                uri = entity.proxy_uris[source_kind]
                try:
                    response = self._relay_client.get(
                        uri.rstrip("/") + "/model",
                        params={"format": "json"},
                    )
                except (ServiceError, RequestTimeoutError):
                    continue  # a dark proxy degrades the answer, not 500s
                models.append(response.body["document"])
            if entity.gis_feature_id and resolved.gis_uris:
                try:
                    response = self._relay_client.get(
                        resolved.gis_uris[0].rstrip("/")
                        + f"/feature/{entity.gis_feature_id}",
                        params={"format": "json",
                                "entity_id": entity.entity_id},
                    )
                    models.append(response.body["document"])
                except (ServiceError, RequestTimeoutError):
                    pass
            samples: Dict[str, List] = {}
            if with_data:
                for device in entity.devices:
                    for quantity in device.quantities:
                        data_query = RangeQuery(device.device_id, quantity)
                        try:
                            response = self._relay_client.get(
                                device.proxy_uri.rstrip("/") + "/data",
                                params=data_query.to_params(),
                            )
                        except (ServiceError, RequestTimeoutError):
                            continue
                        samples[f"{device.device_id}/{quantity}"] = \
                            response.body["samples"]
            entities.append({
                "entity_id": entity.entity_id,
                "entity_type": entity.entity_type,
                "models": models,
                "samples": samples,
            })
        self.relays_served += 1
        return ok({
            "district_id": resolved.district_id,
            "entities": entities,
        })


def decode_relayed_models(entity_payload: Dict) -> List:
    """Decode the JSON model documents in a relayed entity payload."""
    return [serialization.from_json(doc)
            for doc in entity_payload.get("models", [])]
