"""Client-side data integration.

"The end-user application queries directly each returned proxy and
retrieves the model and the data for each entity.  In this way, the
translation needed for the integration is carried out by each proxy and
the end-user application can easily integrate the retrieved data, in
order to build a comprehensive model of the interested area."

:func:`integrate` merges the per-source CDF models of each entity into
one :class:`IntegratedEntity`: properties are unioned with provenance,
geometry comes from the GIS model, and disagreements between sources
are recorded as :class:`PropertyConflict` instead of being silently
overwritten — the paper's "conflicting values across different
databases" made visible.  The SIM's cadastral service points are joined
to building entities through the GIS cadastral ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.cdf import EntityModel
from repro.errors import IntegrationError
from repro.ontology.queries import ResolvedArea, ResolvedDevice

#: property precedence when sources disagree: later wins for the merged
#: view (BIM is authoritative for building attributes, GIS for location)
_SOURCE_PRECEDENCE = ("sim", "gis", "bim")


@dataclass(frozen=True)
class PropertyConflict:
    """Two sources reported different values for the same property."""

    entity_id: str
    prop: str
    values: Tuple[Tuple[str, object], ...]  # (source_kind, value) pairs


@dataclass
class IntegratedEntity:
    """One entity's comprehensive, multi-source model."""

    entity_id: str
    entity_type: str
    name: str
    sources: Dict[str, EntityModel] = field(default_factory=dict)
    properties: Dict[str, object] = field(default_factory=dict)
    provenance: Dict[str, str] = field(default_factory=dict)
    geometry: Optional[Dict] = None
    devices: Tuple[ResolvedDevice, ...] = ()
    conflicts: List[PropertyConflict] = field(default_factory=list)
    #: (device_id, quantity) -> list of (t, value) samples
    measurements: Dict[Tuple[str, str], List[Tuple[float, float]]] = \
        field(default_factory=dict)

    @property
    def source_kinds(self) -> List[str]:
        return sorted(self.sources)

    def samples(self, device_id: str, quantity: str
                ) -> List[Tuple[float, float]]:
        """Retrieved samples for one device quantity (empty if none)."""
        return self.measurements.get((device_id, quantity), [])


@dataclass
class IntegratedModel:
    """The comprehensive model of a queried district area."""

    district_id: str
    district_name: str
    entities: Dict[str, IntegratedEntity] = field(default_factory=dict)

    def entity(self, entity_id: str) -> IntegratedEntity:
        try:
            return self.entities[entity_id]
        except KeyError:
            raise IntegrationError(
                f"no entity {entity_id!r} in integrated model"
            ) from None

    @property
    def buildings(self) -> List[IntegratedEntity]:
        return [e for e in self.entities.values()
                if e.entity_type == "building"]

    @property
    def networks(self) -> List[IntegratedEntity]:
        return [e for e in self.entities.values()
                if e.entity_type == "network"]

    @property
    def device_count(self) -> int:
        return sum(len(e.devices) for e in self.entities.values())

    @property
    def conflicts(self) -> List[PropertyConflict]:
        out: List[PropertyConflict] = []
        for entity in self.entities.values():
            out.extend(entity.conflicts)
        return out

    def served_buildings(self, network_id: str) -> List[str]:
        """Building entity ids served by a network (SIM x GIS join).

        The SIM model references buildings by cadastral parcel id; the
        GIS models carry each building's cadastral id.  The join is the
        integration the paper's architecture exists to enable.
        """
        network = self.entity(network_id)
        sim_model = network.sources.get("sim")
        if sim_model is None:
            raise IntegrationError(
                f"network {network_id!r} has no SIM model"
            )
        parcels = {
            relation.object
            for relation in sim_model.relations
            if relation.relation == "serves"
        }
        served = []
        for entity in self.buildings:
            cadastral = entity.properties.get("cadastral_id")
            if cadastral in parcels:
                served.append(entity.entity_id)
        return sorted(served)


def _merge_properties(entity: IntegratedEntity) -> None:
    by_prop: Dict[str, List[Tuple[str, object]]] = {}
    for source_kind in _SOURCE_PRECEDENCE:
        model = entity.sources.get(source_kind)
        if model is None:
            continue
        for prop, value in model.properties.items():
            if value is None:
                continue
            by_prop.setdefault(prop, []).append((source_kind, value))
    for prop, pairs in by_prop.items():
        values = {repr(v) for _s, v in pairs}
        if len(values) > 1:
            entity.conflicts.append(PropertyConflict(
                entity_id=entity.entity_id,
                prop=prop,
                values=tuple(pairs),
            ))
        # precedence order means the last pair wins the merged view
        source, value = pairs[-1]
        entity.properties[prop] = value
        entity.provenance[prop] = source


def integrate(
    resolved: ResolvedArea,
    models: Dict[str, Sequence[EntityModel]],
    measurements: Optional[Dict[str, Dict[Tuple[str, str],
                                          List[Tuple[float, float]]]]] = None,
) -> IntegratedModel:
    """Merge per-entity source models (and optional data) into one model.

    *models* maps entity id -> the CDF models fetched from that entity's
    proxies; *measurements* optionally maps entity id -> per-device
    sample lists.  Models whose ``entity_id`` disagrees with their key
    indicate a wiring bug and raise :class:`IntegrationError`.
    """
    integrated = IntegratedModel(
        district_id=resolved.district_id,
        district_name=resolved.district_name,
    )
    for resolved_entity in resolved.entities:
        entity = IntegratedEntity(
            entity_id=resolved_entity.entity_id,
            entity_type=resolved_entity.entity_type,
            name=resolved_entity.name,
            devices=resolved_entity.devices,
        )
        for model in models.get(resolved_entity.entity_id, []):
            if model.entity_id != resolved_entity.entity_id:
                raise IntegrationError(
                    f"model for {model.entity_id!r} filed under "
                    f"{resolved_entity.entity_id!r}"
                )
            if model.source_kind in entity.sources:
                raise IntegrationError(
                    f"duplicate {model.source_kind} model for "
                    f"{model.entity_id!r}"
                )
            entity.sources[model.source_kind] = model
            if not entity.name and model.name:
                entity.name = model.name
        _merge_properties(entity)
        gis_model = entity.sources.get("gis")
        if gis_model is not None and gis_model.geometry is not None:
            entity.geometry = dict(gis_model.geometry)
        if measurements:
            entity.measurements = dict(
                measurements.get(resolved_entity.entity_id, {})
            )
        integrated.entities[entity.entity_id] = entity
    return integrated
