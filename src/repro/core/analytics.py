"""Energy analytics on integrated data: anomalies and demand response.

The paper motivates the infrastructure with energy optimisation and
user feedback (§IV claims ii and iii).  This module supplies the two
analytics a district operator runs on the integrated data:

* :class:`AnomalyDetector` — learns each building's typical load shape
  (mean/std per weekday-class and hour) from history and flags buckets
  that deviate beyond a z-score threshold; catches stuck meters,
  always-on HVAC, weekend waste;
* :class:`DemandResponsePlanner` — given a peak-shaving target, ranks
  the district's HVAC actuators by estimated savings per setpoint
  degree (inferred from their measured power and setpoint — no device
  model parameters needed) and produces an actuation plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.common.simtime import hour_of_day, is_weekend
from repro.core.integration import IntegratedModel
from repro.errors import QueryError
from repro.ontology.queries import ResolvedDevice


# --------------------------------------------------------------------------
# anomaly detection


@dataclass(frozen=True)
class Anomaly:
    """One flagged deviation from a building's typical load."""

    entity_id: str
    timestamp: float
    observed_watts: float
    expected_watts: float
    z_score: float

    @property
    def excess_watts(self) -> float:
        return self.observed_watts - self.expected_watts


@dataclass
class LoadBaseline:
    """Per (weekday-class, hour) load statistics for one building."""

    entity_id: str
    mean: Dict[Tuple[bool, int], float] = field(default_factory=dict)
    std: Dict[Tuple[bool, int], float] = field(default_factory=dict)

    def slot(self, t: float) -> Tuple[bool, int]:
        return is_weekend(t), int(hour_of_day(t))

    def expected(self, t: float) -> float:
        """Expected power at *t*; raises if the slot was never trained."""
        key = self.slot(t)
        try:
            return self.mean[key]
        except KeyError:
            raise QueryError(
                f"baseline for {self.entity_id} has no data for slot {key}"
            ) from None

    def deviation(self, t: float, observed: float) -> float:
        """z-score of *observed* against the slot's statistics."""
        key = self.slot(t)
        sigma = max(self.std.get(key, 0.0), 1e-6)
        return (observed - self.mean[key]) / sigma


class AnomalyDetector:
    """Baseline-and-z-score anomaly detection on building loads."""

    def __init__(self, z_threshold: float = 3.0,
                 min_floor_sigma: float = 50.0):
        if z_threshold <= 0:
            raise QueryError("z threshold must be positive")
        self.z_threshold = z_threshold
        # floor on sigma so near-constant baselines don't flag noise
        self.min_floor_sigma = min_floor_sigma
        self._baselines: Dict[str, LoadBaseline] = {}

    def fit(self, entity_id: str,
            samples: List[Tuple[float, float]]) -> LoadBaseline:
        """Learn a building's baseline from historical (t, W) samples."""
        if not samples:
            raise QueryError(f"no history to fit baseline for {entity_id}")
        buckets: Dict[Tuple[bool, int], List[float]] = {}
        for t, watts in samples:
            key = (is_weekend(t), int(hour_of_day(t)))
            buckets.setdefault(key, []).append(watts)
        baseline = LoadBaseline(entity_id)
        for key, values in buckets.items():
            arr = np.asarray(values, dtype=float)
            baseline.mean[key] = float(np.mean(arr))
            baseline.std[key] = max(float(np.std(arr)),
                                    self.min_floor_sigma)
        self._baselines[entity_id] = baseline
        return baseline

    def baseline(self, entity_id: str) -> LoadBaseline:
        try:
            return self._baselines[entity_id]
        except KeyError:
            raise QueryError(
                f"no baseline fitted for {entity_id!r}"
            ) from None

    def detect(self, entity_id: str,
               samples: List[Tuple[float, float]]) -> List[Anomaly]:
        """Flag samples deviating beyond the z threshold."""
        baseline = self.baseline(entity_id)
        anomalies: List[Anomaly] = []
        for t, watts in samples:
            key = baseline.slot(t)
            if key not in baseline.mean:
                continue  # untrained slot: cannot judge
            z = baseline.deviation(t, watts)
            if abs(z) >= self.z_threshold:
                anomalies.append(Anomaly(
                    entity_id=entity_id,
                    timestamp=t,
                    observed_watts=watts,
                    expected_watts=baseline.mean[key],
                    z_score=z,
                ))
        return anomalies

    def fit_from_model(self, model: IntegratedModel,
                       feeder_only: bool = True) -> List[str]:
        """Fit baselines for every building in an integrated model."""
        fitted = []
        for entity in model.buildings:
            samples: List[Tuple[float, float]] = []
            for device in entity.devices:
                if "power" not in device.quantities:
                    continue
                if feeder_only and "energy" not in device.quantities:
                    continue
                samples.extend(entity.samples(device.device_id, "power"))
            if samples:
                self.fit(entity.entity_id, sorted(samples))
                fitted.append(entity.entity_id)
        return fitted


# --------------------------------------------------------------------------
# demand-response planning


@dataclass(frozen=True)
class SheddingAction:
    """One planned actuation with its estimated effect."""

    device: ResolvedDevice
    entity_id: str
    current_setpoint: float
    new_setpoint: float
    estimated_savings_watts: float


@dataclass
class SheddingPlan:
    """An ordered set of actions meeting (or approaching) the target."""

    target_watts: float
    actions: List[SheddingAction] = field(default_factory=list)

    @property
    def estimated_savings_watts(self) -> float:
        return sum(a.estimated_savings_watts for a in self.actions)

    @property
    def meets_target(self) -> bool:
        return self.estimated_savings_watts >= self.target_watts


class DemandResponsePlanner:
    """Plans HVAC setpoint reductions to shave a given load target.

    Savings per degree are estimated purely from observed data: a heat
    pump holding setpoint ``sp`` against outdoor temperature ``T_out``
    draws ``P ~ k (sp - T_out)``, so one degree of setpoint reduction
    saves about ``P / (sp - T_out)`` watts.
    """

    def __init__(self, outdoor_temperature: float,
                 max_reduction_degrees: float = 3.0,
                 min_setpoint: float = 16.0):
        if max_reduction_degrees <= 0:
            raise QueryError("reduction must be positive")
        self.outdoor_temperature = outdoor_temperature
        self.max_reduction_degrees = max_reduction_degrees
        self.min_setpoint = min_setpoint

    def _candidates(self, model: IntegratedModel
                    ) -> List[Tuple[ResolvedDevice, str, float, float]]:
        out = []
        for entity in model.entities.values():
            for device in entity.devices:
                if not device.is_actuator or \
                        "setpoint" not in device.quantities or \
                        "power" not in device.quantities:
                    continue
                power = entity.samples(device.device_id, "power")
                setpoint = entity.samples(device.device_id, "setpoint")
                if not power or not setpoint:
                    continue
                out.append((device, entity.entity_id, power[-1][1],
                            setpoint[-1][1]))
        return out

    def savings_per_degree(self, power_watts: float,
                           setpoint: float) -> float:
        """Estimated watts saved per degree of setpoint reduction."""
        gap = setpoint - self.outdoor_temperature
        if gap <= 0.5 or power_watts <= 0:
            return 0.0
        return power_watts / gap

    def plan(self, model: IntegratedModel, target_watts: float
             ) -> SheddingPlan:
        """Greedy plan: biggest savers first, until the target is met."""
        if target_watts <= 0:
            raise QueryError("shaving target must be positive")
        candidates = []
        for device, entity_id, power, setpoint in self._candidates(model):
            per_degree = self.savings_per_degree(power, setpoint)
            if per_degree <= 0:
                continue
            reduction = min(self.max_reduction_degrees,
                            max(setpoint - self.min_setpoint, 0.0))
            if reduction <= 0:
                continue
            candidates.append(SheddingAction(
                device=device,
                entity_id=entity_id,
                current_setpoint=setpoint,
                new_setpoint=setpoint - reduction,
                estimated_savings_watts=per_degree * reduction,
            ))
        candidates.sort(key=lambda a: -a.estimated_savings_watts)
        plan = SheddingPlan(target_watts=target_watts)
        for action in candidates:
            if plan.estimated_savings_watts >= target_watts:
                break
            plan.actions.append(action)
        return plan

    def execute(self, plan: SheddingPlan, client,
                on_result=None) -> int:
        """Dispatch every action through the client; returns the count."""
        for action in plan.actions:
            client.actuate(action.device, "setpoint",
                           action.new_setpoint, on_result=on_result)
        return len(plan.actions)
