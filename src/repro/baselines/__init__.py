"""Comparison baselines: the centralized monolithic-union architecture."""

from repro.baselines.centralized import (
    CentralDatabase,
    CentralGateway,
    CentralServer,
    CentralizedDeployment,
    deploy_centralized,
)

__all__ = [
    "CentralDatabase",
    "CentralGateway",
    "CentralServer",
    "CentralizedDeployment",
    "deploy_centralized",
]
