"""Centralized baseline: the monolithic union database.

The paper argues that "the union of different databases into a single
one is usually not feasible, because of data format heterogeneity and
conflicting values across different databases".  This baseline builds
that union anyway, so the benchmarks can quantify the comparison:

* every BIM/SIM/GIS source is bulk-imported into one
  :class:`CentralDatabase` with a flattened union schema — conflicting
  property values are silently overwritten (the ``conflicts_overwritten``
  counter records the information loss);
* imports happen on a sync schedule, so source changes are invisible
  until the next re-import (*staleness*, measured by bench C3);
* device gateways relay every sample to the central server over HTTP
  (no pub/sub, no local buffering) — the central host becomes the
  funnel for all ingest traffic;
* clients ask the central server for areas and receive *data*, not
  URIs: the server performs the join and ships everything back itself
  (relay architecture, the opposite of the paper's redirect design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.cdf import Measurement
from repro.datasources.generators import DistrictDataset
from repro.datasources.geometry import BoundingBox
from repro.devices.base import SimulatedDevice
from repro.devices.firmware import DeviceFirmware, RadioLink
from repro.errors import FrameDecodeError, QueryError, SeriesNotFoundError
from repro.network.scheduler import Scheduler
from repro.network.transport import Host, LatencyModel, Network
from repro.network.webservice import (
    GET,
    POST,
    HttpClient,
    Request,
    Response,
    WebService,
    error,
    ok,
)
from repro.protocols.base import ProtocolAdapter, RawReading, make_adapter
from repro.proxies.translators import (
    translate_bim,
    translate_gis_feature,
    translate_sim,
)
from repro.storage.localdb import LocalDatabase
from repro.storage.query import RangeQuery


class CentralDatabase:
    """The union store: flattened entity rows plus one measurement table."""

    def __init__(self) -> None:
        self.entities: Dict[str, Dict] = {}
        self.measurements = LocalDatabase(retention=None)
        self.conflicts_overwritten = 0
        self.imports = 0
        self.last_sync_at: float = float("-inf")

    def upsert_entity(self, entity_id: str, entity_type: str,
                      properties: Dict, geometry: Optional[Dict] = None
                      ) -> None:
        """Merge one source's view of an entity into its union row.

        Union semantics: same-key disagreements are overwritten by the
        latest import and counted — the information the per-source
        proxies would have preserved.
        """
        row = self.entities.setdefault(entity_id, {
            "entity_id": entity_id,
            "entity_type": entity_type,
            "properties": {},
            "geometry": None,
        })
        for key, value in properties.items():
            if value is None:
                continue
            existing = row["properties"].get(key)
            if existing is not None and existing != value:
                self.conflicts_overwritten += 1
            row["properties"][key] = value
        if geometry is not None:
            row["geometry"] = dict(geometry)
        self.imports += 1

    def entities_in(self, bbox: Optional[BoundingBox]) -> List[Dict]:
        """Entity rows, optionally filtered by geometry bounds."""
        rows = list(self.entities.values())
        if bbox is None:
            return rows
        out = []
        for row in rows:
            geometry = row.get("geometry")
            if not geometry or "bounds" not in geometry:
                continue
            if bbox.intersects(BoundingBox.from_list(geometry["bounds"])):
                out.append(row)
        return out


class CentralServer:
    """The single server of the centralized architecture."""

    def __init__(self, host: Host):
        self.host = host
        self.database = CentralDatabase()
        self.ingests = 0
        self.service = WebService(host, processing_delay=2e-4)
        self.service.add_route(POST, "/ingest", self._ingest_route)
        self.service.add_route(GET, "/area", self._area_route)
        self.service.add_route(GET, "/entity/{entity_id}",
                               self._entity_route)
        self.service.add_route(GET, "/measurements",
                               self._measurements_route)

    @property
    def uri(self) -> str:
        return self.service.base_uri

    def _ingest_route(self, request: Request) -> Response:
        try:
            measurement = Measurement.from_dict(request.body or {})
        except Exception as exc:
            return error(400, f"bad measurement: {exc}")
        self.database.measurements.insert(measurement)
        self.ingests += 1
        return ok({"stored": True})

    def _area_route(self, request: Request) -> Response:
        bbox_raw = request.params.get("bbox")
        bbox = None
        if bbox_raw:
            try:
                bbox = BoundingBox.from_list(
                    [float(v) for v in bbox_raw.split(",")]
                )
            except (ValueError, QueryError) as exc:
                return error(400, f"bad bbox: {exc}")
        rows = self.database.entities_in(bbox)
        with_data = request.params.get("with_data") == "1"
        response_rows = []
        for row in rows:
            out = dict(row)
            if with_data:
                samples = {}
                for device_id in self.database.measurements.devices():
                    for quantity in \
                            self.database.measurements.quantities(device_id):
                        series = self.database.measurements.series(
                            device_id, quantity
                        )
                        owner = row["properties"].get("device_ids", [])
                        if device_id in owner:
                            samples[f"{device_id}/{quantity}"] = \
                                series.to_pairs()
                out["samples"] = samples
            response_rows.append(out)
        return ok({"entities": response_rows})

    def _entity_route(self, request: Request) -> Response:
        entity_id = request.path_params["entity_id"]
        row = self.database.entities.get(entity_id)
        if row is None:
            return error(404, f"no entity {entity_id!r}")
        return ok(row)

    def _measurements_route(self, request: Request) -> Response:
        try:
            query = RangeQuery.from_params(request.params)
            samples = self.database.measurements.query(query)
        except QueryError as exc:
            return error(400, str(exc))
        except SeriesNotFoundError as exc:
            return error(404, str(exc))
        return ok({"samples": [[t, v] for t, v in samples]})


class CentralGateway:
    """Protocol gateway that relays every sample to the central server.

    Unlike the Device-proxy it keeps no local database and publishes
    nothing: each decoded reading becomes one HTTP POST to the central
    ``/ingest`` endpoint.
    """

    def __init__(self, host: Host, adapter: ProtocolAdapter,
                 central_uri: str):
        self.host = host
        self.adapter = adapter
        self.central_uri = central_uri.rstrip("/")
        self.http = HttpClient(host)
        self.relayed = 0
        self.failed = 0
        self.frames_rejected = 0
        self._by_address: Dict[str, Tuple[str, str]] = {}

    def attach_device(self, device: SimulatedDevice, link: RadioLink
                      ) -> None:
        self._by_address[device.address] = (device.device_id,
                                            device.entity_id)
        link.attach_gateway(self._on_frame)

    def _on_frame(self, frame: bytes) -> None:
        now = self.host.network.scheduler.now
        try:
            readings = self.adapter.decode_frame(frame, received_at=now)
        except FrameDecodeError:
            self.frames_rejected += 1
            return
        for reading in readings:
            self._relay(reading)

    def _relay(self, reading: RawReading) -> None:
        owner = self._by_address.get(reading.device_address)
        if owner is None:
            self.frames_rejected += 1
            return
        device_id, entity_id = owner
        measurement = Measurement(
            device_id=device_id,
            entity_id=entity_id,
            quantity=reading.quantity,
            value=reading.value,
            timestamp=reading.timestamp,
            source=self.host.name,
        )
        future = self.http.request(self.central_uri + "/ingest",
                                   method=POST, body=measurement.to_dict())
        self.relayed += 1

        def check(f):
            try:
                response = f.result()
            except Exception:
                self.failed += 1
                return
            if not response.ok:
                self.failed += 1

        future.add_done_callback(check)


@dataclass
class CentralizedDeployment:
    """A running centralized deployment (the C3 comparison system)."""

    dataset: DistrictDataset
    scheduler: Scheduler
    network: Network
    server: CentralServer
    sync_period: Optional[float]
    gateways: List[CentralGateway] = field(default_factory=list)
    firmwares: List[DeviceFirmware] = field(default_factory=list)

    def run(self, duration: float) -> None:
        self.scheduler.run_for(duration)

    def sync_models(self) -> None:
        """Bulk re-import every source into the union database (the ETL).

        This is what keeps the central store fresh; anything changed in
        a source since the last sync is invisible until this runs.
        """
        dataset = self.dataset
        db = self.server.database
        for building in dataset.buildings:
            bim_model = translate_bim(building.bim, building.entity_id)
            db.upsert_entity(building.entity_id, "building",
                             bim_model.properties)
            feature = dataset.gis.feature(building.feature_id)
            gis_model = translate_gis_feature(feature, building.entity_id)
            db.upsert_entity(building.entity_id, "building",
                             gis_model.properties, gis_model.geometry)
            db.upsert_entity(building.entity_id, "building", {
                "device_ids": [d.device_id for d in building.devices],
            })
        for network_spec in dataset.networks:
            sim_model = translate_sim(network_spec.sim,
                                      network_spec.entity_id)
            db.upsert_entity(network_spec.entity_id, "network",
                             sim_model.properties)
            db.upsert_entity(network_spec.entity_id, "network", {
                "device_ids": [d.device_id for d in network_spec.devices],
            })
        db.last_sync_at = self.scheduler.now

    def client_host(self, name: str = "central-user") -> HttpClient:
        return HttpClient(self.network.add_host(name))


def deploy_centralized(dataset: DistrictDataset,
                       seed: int = 0,
                       radio_latency: float = 0.01,
                       net_jitter: float = 0.1,
                       sync_period: Optional[float] = 3600.0,
                       start_devices: bool = True) -> CentralizedDeployment:
    """Deploy the same district on the centralized architecture."""
    from repro.simulation.scenario import build_device

    scheduler = Scheduler()
    network = Network(
        scheduler,
        latency=LatencyModel(jitter=net_jitter, seed=seed),
        seed=seed,
    )
    server = CentralServer(network.add_host("central"))
    deployment = CentralizedDeployment(
        dataset=dataset,
        scheduler=scheduler,
        network=network,
        server=server,
        sync_period=sync_period,
    )
    groups: Dict[Tuple[str, str], List] = {}
    for spec in dataset.devices:
        groups.setdefault((spec.entity_id, spec.protocol), []).append(spec)
    for (entity_id, protocol), specs in sorted(groups.items()):
        gateway = CentralGateway(
            network.add_host(f"gw-{entity_id}-{protocol}"),
            make_adapter(protocol),
            server.uri,
        )
        for spec in specs:
            device = build_device(spec, dataset)
            link = RadioLink(scheduler, latency=radio_latency,
                             seed=seed + len(deployment.firmwares))
            gateway.attach_device(device, link)
            firmware = DeviceFirmware(device, make_adapter(protocol), link,
                                      scheduler)
            if start_devices:
                firmware.start()
            deployment.firmwares.append(firmware)
        deployment.gateways.append(gateway)
    deployment.sync_models()
    if sync_period is not None:
        scheduler.every(sync_period, deployment.sync_models)
    return deployment
