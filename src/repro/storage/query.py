"""Query structures shared by local and global measurement stores."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import QueryError
from repro.storage.timeseries import AGGREGATIONS


@dataclass(frozen=True)
class RangeQuery:
    """A time-range query for one device quantity.

    *bucket*/*agg* request server-side aggregation; when *bucket* is
    ``None`` raw samples are returned.
    """

    device_id: str
    quantity: str
    start: Optional[float] = None
    end: Optional[float] = None
    bucket: Optional[float] = None
    agg: str = "mean"

    def __post_init__(self) -> None:
        if self.start is not None and self.end is not None \
                and self.end < self.start:
            raise QueryError(
                f"reversed query window [{self.start}, {self.end})"
            )
        if self.bucket is not None and self.bucket <= 0:
            raise QueryError("bucket width must be positive")
        if self.agg not in AGGREGATIONS:
            raise QueryError(f"unknown aggregation {self.agg!r}")

    def to_params(self) -> Dict[str, str]:
        """Encode as flat string params for a web-service request."""
        params = {"device_id": self.device_id, "quantity": self.quantity,
                  "agg": self.agg}
        if self.start is not None:
            params["start"] = repr(self.start)
        if self.end is not None:
            params["end"] = repr(self.end)
        if self.bucket is not None:
            params["bucket"] = repr(self.bucket)
        return params

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "RangeQuery":
        """Decode from web-service request params."""
        def opt_float(key: str) -> Optional[float]:
            raw = params.get(key)
            if raw is None or raw == "":
                return None
            try:
                return float(raw)
            except (TypeError, ValueError):
                raise QueryError(f"bad numeric parameter {key}={raw!r}") \
                    from None

        try:
            device_id = params["device_id"]
            quantity = params["quantity"]
        except KeyError as exc:
            raise QueryError(f"missing query parameter {exc}") from None
        return cls(
            device_id=device_id,
            quantity=quantity,
            start=opt_float("start"),
            end=opt_float("end"),
            bucket=opt_float("bucket"),
            agg=params.get("agg", "mean"),
        )
