"""Query structures shared by local and global measurement stores."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.errors import QueryError
from repro.storage.timeseries import AGGREGATIONS

#: relative tolerance for "resolution divides step" float checks
_DIVIDES_RTOL = 1e-9


def choose_resolution(step: float,
                      resolutions: Sequence[float]) -> Optional[float]:
    """Pick the coarsest rollup resolution that can serve a *step* query.

    A resolution ``r`` can serve bucket width *step* when ``r <= step``
    and ``r`` divides *step* evenly (so rollup buckets nest exactly
    inside query buckets — both are floor-aligned to multiples of their
    width).  Returns ``None`` when no configured resolution qualifies,
    which sends the query down the raw-block scan path.
    """
    best: Optional[float] = None
    for resolution in resolutions:
        if resolution > step * (1 + _DIVIDES_RTOL):
            continue
        ratio = step / resolution
        if abs(ratio - round(ratio)) > _DIVIDES_RTOL * ratio:
            continue
        if best is None or resolution > best:
            best = resolution
    return best


@dataclass(frozen=True)
class RangeQuery:
    """A time-range query for one device quantity.

    *bucket*/*agg* request server-side aggregation; when *bucket* is
    ``None`` raw samples are returned.
    """

    device_id: str
    quantity: str
    start: Optional[float] = None
    end: Optional[float] = None
    bucket: Optional[float] = None
    agg: str = "mean"

    def __post_init__(self) -> None:
        if self.start is not None and self.end is not None \
                and self.end < self.start:
            raise QueryError(
                f"reversed query window [{self.start}, {self.end})"
            )
        if self.bucket is not None and self.bucket <= 0:
            raise QueryError("bucket width must be positive")
        if self.agg not in AGGREGATIONS:
            raise QueryError(f"unknown aggregation {self.agg!r}")

    def to_params(self) -> Dict[str, str]:
        """Encode as flat string params for a web-service request."""
        params = {"device_id": self.device_id, "quantity": self.quantity,
                  "agg": self.agg}
        if self.start is not None:
            params["start"] = repr(self.start)
        if self.end is not None:
            params["end"] = repr(self.end)
        if self.bucket is not None:
            params["bucket"] = repr(self.bucket)
        return params

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "RangeQuery":
        """Decode from web-service request params."""
        def opt_float(key: str) -> Optional[float]:
            raw = params.get(key)
            if raw is None or raw == "":
                return None
            try:
                return float(raw)
            except (TypeError, ValueError):
                raise QueryError(f"bad numeric parameter {key}={raw!r}") \
                    from None

        try:
            device_id = params["device_id"]
            quantity = params["quantity"]
        except KeyError as exc:
            raise QueryError(f"missing query parameter {exc}") from None
        return cls(
            device_id=device_id,
            quantity=quantity,
            start=opt_float("start"),
            end=opt_float("end"),
            bucket=opt_float("bucket"),
            agg=params.get("agg", "mean"),
        )


@dataclass(frozen=True)
class RollupQuery:
    """A rollup-backed range query against the measurement database.

    *target* is a device id (or an entity id — the measurement DB
    resolves entities to their devices and combines per-device
    buckets).  Unlike :class:`RangeQuery`, the window and *step* are
    mandatory: this is the dashboard query shape the block store plans
    rollups for.  ``prefer`` forces a serving path — ``"raw"`` for the
    scan arm of benchmark comparisons, ``"rollup"`` to fail loudly when
    no rollup resolution divides *step*.
    """

    target: str
    quantity: str
    start: float
    end: float
    step: float
    agg: str = "mean"
    prefer: Optional[str] = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise QueryError(
                f"reversed query window [{self.start}, {self.end})"
            )
        if self.step <= 0:
            raise QueryError("step width must be positive")
        if self.agg not in AGGREGATIONS:
            raise QueryError(f"unknown aggregation {self.agg!r}")
        if self.prefer not in (None, "raw", "rollup"):
            raise QueryError(f"unknown prefer mode {self.prefer!r}")

    def to_params(self) -> Dict[str, str]:
        """Encode as flat string params for a web-service request."""
        params = {"target": self.target, "quantity": self.quantity,
                  "start": repr(self.start), "end": repr(self.end),
                  "step": repr(self.step), "agg": self.agg}
        if self.prefer is not None:
            params["prefer"] = self.prefer
        return params

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "RollupQuery":
        """Decode from web-service request params."""
        def need_float(key: str) -> float:
            raw = params.get(key)
            if raw is None or raw == "":
                raise QueryError(f"missing query parameter {key!r}")
            try:
                return float(raw)
            except (TypeError, ValueError):
                raise QueryError(f"bad numeric parameter {key}={raw!r}") \
                    from None

        try:
            target = params["target"]
            quantity = params["quantity"]
        except KeyError as exc:
            raise QueryError(f"missing query parameter {exc}") from None
        return cls(
            target=target,
            quantity=quantity,
            start=need_float("start"),
            end=need_float("end"),
            step=need_float("step"),
            agg=params.get("agg", "mean"),
            prefer=params.get("prefer") or None,
        )
