"""Proxy-local sample database — the Device-proxy's middle layer.

Keyed by (device id, quantity), with an optional retention horizon so a
constrained gateway does not grow without bound (old samples are pruned
on insert once they age past ``retention``; the global measurement
database keeps the full history).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.cdf import Measurement
from repro.errors import SeriesNotFoundError
from repro.storage.query import RangeQuery
from repro.storage.timeseries import TimeSeries


class LocalDatabase:
    """In-memory sample store for one proxy."""

    def __init__(self, retention: Optional[float] = None):
        self._series: Dict[Tuple[str, str], TimeSeries] = {}
        self.retention = retention
        self.inserts = 0

    def insert(self, measurement: Measurement) -> None:
        """Store one measurement, pruning expired samples of that series."""
        key = (measurement.device_id, measurement.quantity)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = TimeSeries()
        series.append(measurement.timestamp, measurement.value)
        self.inserts += 1
        if self.retention is not None:
            series.prune_before(measurement.timestamp - self.retention)

    def series(self, device_id: str, quantity: str) -> TimeSeries:
        """The series for one device quantity; raises if absent."""
        try:
            return self._series[(device_id, quantity)]
        except KeyError:
            raise SeriesNotFoundError(
                f"no samples for {device_id}/{quantity}"
            ) from None

    def has_series(self, device_id: str, quantity: str) -> bool:
        """True when at least one sample exists for the series."""
        return (device_id, quantity) in self._series

    def devices(self) -> List[str]:
        """Sorted device ids present in the store."""
        return sorted({device for device, _q in self._series})

    def quantities(self, device_id: str) -> List[str]:
        """Sorted quantities recorded for *device_id*."""
        return sorted(q for d, q in self._series if d == device_id)

    def latest(self, device_id: str, quantity: str) -> Tuple[float, float]:
        """Most recent (timestamp, value) for a device quantity."""
        return self.series(device_id, quantity).latest()

    def query(self, query: RangeQuery) -> List[Tuple[float, float]]:
        """Run a range query; aggregated if the query asks for buckets."""
        series = self.series(query.device_id, query.quantity)
        start = query.start if query.start is not None else float("-inf")
        end = query.end if query.end is not None else float("inf")
        if start == float("-inf") and not len(series):
            return []
        windowed = series.window(
            start if start != float("-inf") else series.first()[0],
            end,
        ) if len(series) else TimeSeries()
        if query.bucket is None:
            return windowed.to_pairs()
        return windowed.resample(query.bucket, query.agg)

    def sample_count(self) -> int:
        """Total stored samples across all series."""
        return sum(len(s) for s in self._series.values())
