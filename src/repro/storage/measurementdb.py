"""Global measurements database.

The paper's Figure 1(a) shows "one or more measurements databases
(which store data collected by sensors placed in the district)".  This
service subscribes to the whole district's measurement topics on the
middleware and ingests every published sample; a Web Service interface
serves range queries and per-device freshness so clients (and the
benchmarks) can ask one place for historical data.

Passing a :class:`~repro.storage.durability.DurabilityConfig` opts the
store into the durable data plane:

* **crash safety** — every accepted sample is appended (and fsync'd) to
  a write-ahead log before the delivery is acknowledged; a periodic
  snapshot (:func:`repro.persistence.save_measurement_state`) bounds
  replay time and truncates the WAL.  :meth:`recover` restores snapshot
  + WAL tail after a crash-restart (see
  :meth:`repro.simulation.faults.FaultInjector.restart_measurement_db`);
* **idempotent ingest** — samples are deduplicated on
  ``(device_id, timestamp, quantity, seq)`` over a bounded window, so
  broker redeliveries and offline-buffer re-flushes never double-count;
* **bounded ingest queue** — beyond ``queue_capacity`` the consumer
  raises :class:`~repro.errors.BackpressureError`, which the middleware
  peer turns into a *busy* nack (the broker redelivers later); malformed
  payloads raise :class:`~repro.errors.PoisonPayloadError` so repeated
  failures land in the broker's dead-letter queue instead of wedging
  ingestion.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.common.cdf import Measurement
from repro.common.lineproto import BATCH_RECORD, decode_frame, is_batch
from repro.errors import (
    BackpressureError,
    PoisonPayloadError,
    QueryError,
    SerializationError,
    SeriesNotFoundError,
)
from repro.middleware.broker import Event
from repro.middleware.peer import MiddlewarePeer
from repro.middleware.topics import district_filter
from repro.network.resilience import FailoverSet
from repro.network.transport import Host
from repro.network.webservice import (
    GET,
    POST,
    HttpClient,
    Request,
    Response,
    WebService,
    error,
    ok,
)
from repro.persistence import load_measurement_state, save_measurement_state
from repro.storage.blocks import BlockStore, TsdbConfig
from repro.storage.durability import DurabilityConfig, WriteAheadLog
from repro.storage.localdb import LocalDatabase
from repro.storage.query import RangeQuery, RollupQuery

#: dedup key of one sample: (device_id, timestamp, quantity, seq)
DedupKey = Tuple[str, float, str, Optional[int]]


class MeasurementDatabase:
    """District-wide measurement store fed by the pub/sub middleware."""

    def __init__(self, host: Host,
                 broker_host: Union[str, Sequence[str]],
                 district_id: str,
                 peer_keepalive: Optional[float] = None,
                 durability: Optional[DurabilityConfig] = None,
                 tsdb: Optional[TsdbConfig] = None):
        self.host = host
        self.district_id = district_id
        self.durability = durability
        self.tsdb = tsdb
        self.store = self._new_store()
        self.ingested = 0
        self.rejected = 0
        self.batches_ingested = 0
        self.batch_samples = 0
        self.ingest_duplicates = 0
        self.backpressure_signals = 0
        self.poison_rejected = 0
        self.snapshots_written = 0
        self.recoveries = 0
        self.recovered_samples = 0
        self.wal_records_replayed = 0
        self.heartbeats_sent = 0
        self.heartbeats_failed = 0
        self._freshness: Dict[str, float] = {}  # device -> last sample time
        # a restarted store must not report the downtime as device
        # staleness: freshness_lag_max() stays 0 until the first live
        # sample confirms the pipeline is flowing again
        self._stale_until_sample = False
        self._entity_for_device: Dict[str, str] = {}
        self._dedup_keys: Set[DedupKey] = set()
        self._dedup_order: Deque[DedupKey] = deque()
        self._queue: Deque[Measurement] = deque()
        self._drain_scheduled = False
        self.wal: Optional[WriteAheadLog] = None
        self._snapshot_task = None
        if durability is not None:
            if durability.wal_path is not None:
                self.wal = WriteAheadLog(durability.wal_path)
            if durability.snapshot_path is not None:
                self._snapshot_task = host.network.scheduler.every(
                    durability.snapshot_period, self.write_snapshot
                )
        self._compaction_task = None
        if tsdb is not None and tsdb.compaction_period is not None:
            self._compaction_task = host.network.scheduler.every(
                tsdb.compaction_period, self._compact
            )
        # rolling window of recent publish->delivery latencies; a rolling
        # percentile (unlike a cumulative histogram) recovers once an
        # outage's flushed backlog ages out of the window
        self._delivery_latencies: Deque[float] = deque(maxlen=256)
        self._client = HttpClient(host)
        self._heartbeat_task = None
        self.peer = MiddlewarePeer(host, broker_host,
                                   keepalive=peer_keepalive)
        self.peer.subscribe(
            district_filter(district_id), self._on_event,
            ack=durability.ack_deliveries if durability is not None
            else False,
        )
        self.service = WebService(host)
        self.service.add_route(GET, "/measurements", self._query_route)
        self.service.add_route(GET, "/query_range", self._query_range_route)
        self.service.add_route(GET, "/devices", self._devices_route)
        self.service.add_route(GET, "/freshness/{device_id}",
                               self._freshness_route)
        self.service.add_route(GET, "/health", self._health_route)
        self.service.add_route(GET, "/metrics", self._metrics_route)

    @property
    def uri(self) -> str:
        """Base URI of this store's web-service interface."""
        return self.service.base_uri

    def _new_store(self) -> Union[LocalDatabase, BlockStore]:
        """A fresh storage engine per the configured profile."""
        if self.tsdb is not None:
            return BlockStore(self.tsdb)
        return LocalDatabase(retention=None)

    def _registration_payload(self, lease: Optional[float]) -> Dict:
        payload = {
            "proxy_kind": "measurement",
            "district_id": self.district_id,
            "uri": self.uri,
        }
        if lease is not None:
            payload["lease"] = lease
        return payload

    def register_with(self, master_uri: Union[str, Sequence[str],
                                              FailoverSet],
                      lease: Optional[float] = None) -> None:
        """Announce this measurement DB on the master's district root.

        Accepts one URI or a replicated master set (see
        :class:`~repro.network.resilience.FailoverSet`).
        """
        masters = master_uri if isinstance(master_uri, FailoverSet) \
            else FailoverSet(master_uri)
        self._client.post(masters.current + "/register",
                          body=self._registration_payload(lease))

    def start_heartbeat(self, master_uri: Union[str, Sequence[str],
                                                FailoverSet], period: float,
                        lease: Optional[float] = None) -> None:
        """Renew the registration every *period* simulated seconds.

        With a master set, a failed renewal rotates to the next replica
        (the same failover the proxies' heartbeat performs).
        """
        if self._heartbeat_task is not None:
            return
        if lease is None:
            lease = 3.0 * period
        if not isinstance(master_uri, FailoverSet):
            master_uri = FailoverSet(master_uri)
        self._heartbeat_task = self.host.network.scheduler.every(
            period, self._heartbeat, master_uri, lease
        )

    def stop_heartbeat(self) -> None:
        """Stop the periodic master re-registration heartbeat."""
        if self._heartbeat_task is not None:
            self._heartbeat_task.stop()
            self._heartbeat_task = None

    def _heartbeat(self, masters: FailoverSet, lease: float) -> None:
        future = self._client.request(
            masters.current + "/register", POST,
            body=self._registration_payload(lease),
        )

        def record(fut):
            try:
                if fut.result().ok:
                    self.heartbeats_sent += 1
                    return
            except Exception:
                pass
            self.heartbeats_failed += 1
            masters.advance()  # dead or deposed master: try the next

        future.add_done_callback(record)

    # -- middleware ingestion ---------------------------------------------

    @staticmethod
    def _dedup_key(measurement: Measurement) -> DedupKey:
        seq = None
        if isinstance(measurement.metadata, dict):
            seq = measurement.metadata.get("seq")
        return (measurement.device_id, float(measurement.timestamp),
                measurement.quantity, seq)

    def _remember(self, key: DedupKey) -> None:
        """Add *key* to the bounded idempotent-ingest window."""
        window = self.durability.dedup_window
        self._dedup_keys.add(key)
        self._dedup_order.append(key)
        while len(self._dedup_order) > window:
            evicted = self._dedup_order.popleft()
            self._dedup_keys.discard(evicted)

    def _on_event(self, event: Event) -> None:
        payload = event.payload
        if self.durability is None:
            self._on_event_legacy(payload, event)
            return
        if is_batch(payload):
            self._on_batch(payload, event)
            return
        if not isinstance(payload, dict) or \
                payload.get("record") != "measurement":
            self.rejected += 1
            self.poison_rejected += 1
            raise PoisonPayloadError("not a measurement record")
        try:
            measurement = Measurement.from_dict(payload)
        except Exception as exc:
            self.rejected += 1
            self.poison_rejected += 1
            raise PoisonPayloadError(
                f"measurement failed translation: {exc}"
            ) from exc
        key = self._dedup_key(measurement)
        if key in self._dedup_keys:
            # redelivery / duplicate offline-buffer flush: already
            # durably ingested, so acknowledge without double-counting
            self.ingest_duplicates += 1
            registry = self.host.network.metrics
            if registry is not None:
                registry.counter("mdb.ingest_duplicates").inc()
            return
        capacity = self.durability.queue_capacity
        if capacity is not None and len(self._queue) >= capacity:
            self.backpressure_signals += 1
            registry = self.host.network.metrics
            if registry is not None:
                registry.counter("mdb.backpressure_signals").inc()
            raise BackpressureError("measurement-DB ingest queue is full")
        # the point of no return: once the WAL append succeeds the
        # sample is durable, the key joins the dedup window, and the
        # delivery can be acknowledged (ack-after-fsync)
        if self.wal is not None:
            self.wal.append(measurement.to_dict())
        self._remember(key)
        self._record_latency(event)
        if self.durability.ingest_delay <= 0:
            self._ingest_sample(measurement)
            return
        self._queue.append(measurement)
        self._schedule_drain()

    def _on_batch(self, payload: Dict, event: Event) -> None:
        """Durable whole-frame ingest: one WAL fsync per frame.

        The frame is the unit of delivery and redelivery; dedup stays
        per-sample, so a redelivered frame whose samples were already
        ingested acks without double-counting, and a frame that
        partially overlaps the dedup window ingests only the fresh
        samples.  The WAL record holds only the fresh lines — replay
        cannot resurrect a duplicate.
        """
        tracer = self.host.network.tracer
        try:
            measurements = decode_frame(payload, tracer=tracer,
                                        host=self.host.name)
        except SerializationError as exc:
            self.rejected += 1
            self.poison_rejected += 1
            raise PoisonPayloadError(
                f"batch frame failed decoding: {exc}"
            ) from exc
        if tracer is not None and tracer.enabled:
            with tracer.span("mdb.ingest_frame", kind="consumer",
                             host=self.host.name,
                             attributes={"samples": len(measurements)}):
                self._ingest_frame(payload, measurements, event)
        else:
            self._ingest_frame(payload, measurements, event)

    def _ingest_frame(self, payload: Dict,
                      measurements: List[Measurement],
                      event: Event) -> None:
        """Dedup, WAL-append and ingest one decoded batch frame."""
        registry = self.host.network.metrics
        fresh: List[Tuple[str, Measurement, DedupKey]] = []
        seen: Set[DedupKey] = set()
        for line, measurement in zip(payload["lines"], measurements):
            key = self._dedup_key(measurement)
            if key in self._dedup_keys or key in seen:
                self.ingest_duplicates += 1
                if registry is not None:
                    registry.counter("mdb.ingest_duplicates").inc()
                continue
            seen.add(key)
            fresh.append((line, measurement, key))
        if not fresh:
            return  # fully redelivered frame: ack, nothing to store
        capacity = self.durability.queue_capacity
        if capacity is not None and len(self._queue) >= capacity:
            # whole-frame backpressure BEFORE any durable effect: the
            # broker redelivers the complete frame later and dedup
            # absorbs any samples a competing path landed meanwhile
            self.backpressure_signals += 1
            if registry is not None:
                registry.counter("mdb.backpressure_signals").inc()
            raise BackpressureError("measurement-DB ingest queue is full")
        if self.wal is not None:
            self.wal.append({"record": BATCH_RECORD,
                             "count": len(fresh),
                             "lines": [line for line, _m, _k in fresh]})
        for _line, _measurement, key in fresh:
            self._remember(key)
        self._record_latency(event)
        self.batches_ingested += 1
        self.batch_samples += len(fresh)
        if registry is not None:
            registry.counter("mdb.batches_ingested").inc()
            registry.counter("mdb.batch_samples").inc(len(fresh))
        if self.durability.ingest_delay <= 0:
            for _line, measurement, _key in fresh:
                self._ingest_sample(measurement)
            return
        for _line, measurement, _key in fresh:
            self._queue.append(measurement)
        self._schedule_drain()

    def _on_event_legacy(self, payload, event: Event) -> None:
        """Historical best-effort ingest (no durability configured)."""
        if is_batch(payload):
            try:
                measurements = decode_frame(
                    payload, tracer=self.host.network.tracer,
                    host=self.host.name)
            except SerializationError:
                self.rejected += 1
                return
            self._record_latency(event)
            self.batches_ingested += 1
            self.batch_samples += len(measurements)
            for measurement in measurements:
                self._ingest_sample(measurement)
            return
        if not isinstance(payload, dict) or \
                payload.get("record") != "measurement":
            self.rejected += 1
            return
        try:
            measurement = Measurement.from_dict(payload)
        except Exception:
            self.rejected += 1
            return
        self._record_latency(event)
        self._ingest_sample(measurement)

    def _record_latency(self, event: Event) -> None:
        latency = event.delivered_at - event.published_at
        if latency >= 0:
            self._delivery_latencies.append(latency)
            registry = self.host.network.metrics
            if registry is not None:
                registry.histogram("mdb.delivery_latency").observe(latency)

    def _schedule_drain(self) -> None:
        if self._drain_scheduled or not self._queue:
            return
        self._drain_scheduled = True
        self.host.network.scheduler.schedule(
            self.durability.ingest_delay, self._drain_one
        )

    def _drain_one(self) -> None:
        self._drain_scheduled = False
        if not self._queue:
            return
        measurement = self._queue.popleft()
        self._ingest_sample(measurement)
        self._schedule_drain()

    def _ingest_sample(self, measurement: Measurement) -> None:
        self.store.insert(measurement)
        self.ingested += 1
        self._entity_for_device[measurement.device_id] = \
            measurement.entity_id
        self._stale_until_sample = False
        previous = self._freshness.get(measurement.device_id, float("-inf"))
        if measurement.timestamp > previous:
            self._freshness[measurement.device_id] = measurement.timestamp

    # -- crash, recovery and snapshots -------------------------------------

    def reset(self) -> None:
        """Simulate a crash-restart: all in-memory state is lost.

        The WAL and snapshot files survive on disk; :meth:`recover`
        restores from them.  Until the first live sample arrives the
        staleness indicators report "no data yet" rather than a spike
        covering the downtime (which would false-fire the staleness
        SLO for an outage the devices are not guilty of).
        """
        self.store = self._new_store()
        self.ingested = 0
        self.rejected = 0
        self.batches_ingested = 0
        self.batch_samples = 0
        self.ingest_duplicates = 0
        self.backpressure_signals = 0
        self.poison_rejected = 0
        self._freshness.clear()
        self._entity_for_device.clear()
        self._dedup_keys.clear()
        self._dedup_order.clear()
        self._queue.clear()
        self._drain_scheduled = False
        self._delivery_latencies.clear()
        self._stale_until_sample = True
        if self.wal is not None:
            self.wal.close()  # the process died; the file remains

    def recover(self) -> int:
        """Restore state from the snapshot and the WAL tail.

        Returns the number of samples restored.  Recovery is
        idempotent: WAL records already contained in the snapshot (a
        crash between "snapshot written" and "WAL truncated") are
        absorbed by the restored dedup window.
        """
        if self.durability is None:
            return 0
        restored = 0
        snapshot_path = self.durability.snapshot_path
        if snapshot_path is not None:
            if os.path.exists(snapshot_path):
                state = load_measurement_state(snapshot_path)
                self.store = state.database
                self._freshness.update(state.freshness)
                self._entity_for_device.update(state.entity_for_device)
                for key in state.dedup_keys:
                    self._remember(tuple(key))
                restored += self.store.sample_count()
        if self.wal is not None:
            for record in self.wal.replay():
                if is_batch(record):
                    try:
                        measurements = decode_frame(record)
                    except SerializationError:
                        continue  # poison frames were never acked
                    self.wal_records_replayed += 1
                    for measurement in measurements:
                        restored += self._restore_sample(measurement)
                    continue
                try:
                    measurement = Measurement.from_dict(record)
                except Exception:
                    continue  # a poison record can never have been acked
                self.wal_records_replayed += 1
                restored += self._restore_sample(measurement)
        self.recoveries += 1
        self.recovered_samples += restored
        registry = self.host.network.metrics
        if registry is not None:
            registry.counter("mdb.recoveries").inc()
            registry.counter("mdb.recovered_samples").inc(restored)
        # recovered freshness describes the world before the crash;
        # stay "stale until first sample" so the lag metric reports the
        # pipeline's health, not the outage's length
        return restored

    def _restore_sample(self, measurement: Measurement) -> int:
        """Replay one WAL sample into the store; 1 if fresh, 0 if dupe."""
        key = self._dedup_key(measurement)
        if key in self._dedup_keys:
            return 0
        self._remember(key)
        self.store.insert(measurement)
        self._entity_for_device[measurement.device_id] = \
            measurement.entity_id
        previous = self._freshness.get(measurement.device_id,
                                       float("-inf"))
        if measurement.timestamp > previous:
            self._freshness[measurement.device_id] = measurement.timestamp
        return 1

    def write_snapshot(self) -> None:
        """Persist the full store + ingest bookkeeping, truncate the WAL."""
        if self.durability is None or \
                self.durability.snapshot_path is None:
            return
        # acknowledged samples may still sit in the ingest queue (with
        # ingest_delay > 0); their WAL records are about to be
        # truncated and their dedup keys persisted, so fold them into
        # the store first — otherwise a crash after this snapshot
        # would lose them while suppressing any redelivered copy
        while self._queue:
            self._ingest_sample(self._queue.popleft())
        save_measurement_state(
            self.store, self.durability.snapshot_path,
            freshness=self._freshness,
            dedup_keys=list(self._dedup_order),
            entity_for_device=self._entity_for_device,
        )
        self.snapshots_written += 1
        if self.wal is not None:
            # everything in the WAL is now in the snapshot; a crash
            # right here merely replays nothing
            self.wal.reset()

    def close(self) -> None:
        """Stop periodic tasks and release the WAL handle (teardown)."""
        self.stop_heartbeat()
        if self._snapshot_task is not None:
            self._snapshot_task.stop()
            self._snapshot_task = None
        if self._compaction_task is not None:
            self._compaction_task.stop()
            self._compaction_task = None
        if self.wal is not None:
            self.wal.close()
        self.peer.close()

    # -- background compaction ---------------------------------------------

    def _compact(self) -> None:
        """One block-store compaction pass on the simulated clock."""
        if not isinstance(self.store, BlockStore):
            return
        result = self.store.compact(self.host.network.scheduler.now)
        registry = self.host.network.metrics
        if registry is not None:
            registry.counter("mdb.compactions").inc()
            registry.counter("mdb.blocks_merged").inc(
                result["blocks_merged"])
            registry.counter("mdb.blocks_retired").inc(
                result["blocks_retired"])

    # -- direct (in-process) query API ------------------------------------

    def query(self, query: RangeQuery) -> List:
        """Run a range query against the global store."""
        return self.store.query(query)

    def query_range(self, query: RollupQuery) -> List[Tuple[float, float]]:
        """Bucketed aggregates for a device or an entity target.

        A device target queries its series directly (rollup-served when
        the engine is a :class:`~repro.storage.blocks.BlockStore` and a
        rollup resolution divides the step).  An entity target fans out
        to every device observed under that entity and combines the
        per-device buckets with district roll-up semantics: ``sum`` /
        ``mean`` / ``count`` add across devices (entity power is the
        sum of device powers), ``min``/``max`` take the envelope;
        ``first``/``last`` are per-device notions and are rejected.
        """
        if self.store.has_series(query.target, query.quantity):
            return self._device_range(query.target, query)
        devices = sorted(
            device
            for device, entity in self._entity_for_device.items()
            if entity == query.target
            and self.store.has_series(device, query.quantity)
        )
        if not devices:
            raise SeriesNotFoundError(
                f"no samples for {query.target}/{query.quantity}"
            )
        if query.agg in ("first", "last"):
            raise QueryError(
                f"{query.agg!r} is a per-device aggregation; "
                f"query a device id, not entity {query.target!r}"
            )
        combined: Dict[float, float] = {}
        for device in devices:
            for bucket, value in self._device_range(device, query):
                if bucket not in combined:
                    combined[bucket] = value
                elif query.agg == "min":
                    combined[bucket] = min(combined[bucket], value)
                elif query.agg == "max":
                    combined[bucket] = max(combined[bucket], value)
                else:
                    combined[bucket] += value
        return sorted(combined.items())

    def _device_range(self, device_id: str, query: RollupQuery
                      ) -> List[Tuple[float, float]]:
        if isinstance(self.store, BlockStore):
            return self.store.query_range(
                device_id, query.quantity, query.start, query.end,
                query.step, query.agg, prefer=query.prefer,
            )
        return self.store.query(RangeQuery(
            device_id=device_id, quantity=query.quantity,
            start=query.start, end=query.end,
            bucket=query.step, agg=query.agg,
        ))

    def freshness(self, device_id: str) -> Optional[float]:
        """Timestamp of the newest ingested sample for *device_id*."""
        return self._freshness.get(device_id)

    def delivery_latency_p90(self) -> float:
        """p90 of the rolling publish→delivery latency window (seconds)."""
        if not self._delivery_latencies:
            return 0.0
        return float(np.percentile(
            np.asarray(self._delivery_latencies, dtype=float), 90
        ))

    def freshness_lag_max(self) -> float:
        """Worst per-device age of the newest ingested sample (seconds).

        The district-level staleness indicator: a silent device (or a
        lost middleware path) shows up here as an ever-growing lag.
        Right after a restart the store reports 0 until the first live
        sample arrives — recovered timestamps describe the pre-crash
        world and would otherwise spike the staleness SLO for the
        duration of the outage.
        """
        if self._stale_until_sample or not self._freshness:
            return 0.0
        now = self.host.network.scheduler.now
        return max(now - last for last in self._freshness.values())

    # -- web-service routes -------------------------------------------------

    def _query_route(self, request: Request) -> Response:
        try:
            query = RangeQuery.from_params(request.params)
            samples = self.store.query(query)
        except QueryError as exc:
            return error(400, str(exc))
        except SeriesNotFoundError as exc:
            return error(404, str(exc))
        return ok({"samples": [[t, v] for t, v in samples]})

    def _query_range_route(self, request: Request) -> Response:
        try:
            query = RollupQuery.from_params(request.params)
            samples = self.query_range(query)
        except QueryError as exc:
            return error(400, str(exc))
        except SeriesNotFoundError as exc:
            return error(404, str(exc))
        return ok({
            "samples": [[t, v] for t, v in samples],
            "source": getattr(self.store, "last_query_source", None),
        })

    def _devices_route(self, request: Request) -> Response:
        return ok({"devices": self.store.devices()})

    def _freshness_route(self, request: Request) -> Response:
        device_id = request.path_params["device_id"]
        last = self._freshness.get(device_id)
        if last is None:
            return error(404, f"no samples from {device_id}")
        return ok({"device_id": device_id, "last_timestamp": last})

    def _health_route(self, request: Request) -> Response:
        return ok({
            "status": "ok",
            "host": self.host.name,
            "district_id": self.district_id,
            "ingested": self.ingested,
            "rejected": self.rejected,
            "durable": self.durability is not None,
            "stale_until_sample": self._stale_until_sample,
            "ingest_queue_depth": len(self._queue),
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_failed": self.heartbeats_failed,
        })

    def metrics(self) -> Dict:
        """Numeric counters for the ``/metrics`` endpoint."""
        payload = {
            "ingested": self.ingested,
            "rejected": self.rejected,
            "batches_ingested": self.batches_ingested,
            "batch_samples": self.batch_samples,
            "devices": len(self._freshness),
            "delivery_latency_p90": self.delivery_latency_p90(),
            "freshness_lag_max": self.freshness_lag_max(),
            "requests_served": self.service.requests_served,
            "requests_failed": self.service.requests_failed,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_failed": self.heartbeats_failed,
        }
        if self.durability is not None:
            queue_capacity = self.durability.queue_capacity
            payload.update({
                "ingest_duplicates": self.ingest_duplicates,
                "dedup_window_size": len(self._dedup_order),
                "ingest_queue_depth": len(self._queue),
                "backpressure_signals": self.backpressure_signals,
                "poison_rejected": self.poison_rejected,
                "snapshots_written": self.snapshots_written,
                "recoveries": self.recoveries,
                "recovered_samples": self.recovered_samples,
                "wal_records_replayed": self.wal_records_replayed,
                "stale_until_sample": int(self._stale_until_sample),
                "data_plane_saturation":
                    len(self._queue) / float(queue_capacity)
                    if queue_capacity else 0.0,
            })
        if isinstance(self.store, BlockStore):
            payload["tsdb"] = self.store.stats()
        if self.durability is not None:
            if self.wal is not None:
                payload.update({
                    "wal_appends": self.wal.appends,
                    "wal_fsyncs": self.wal.fsyncs,
                    "wal_fsynced_bytes": self.wal.fsynced_bytes,
                    "wal_size_bytes": self.wal.size_bytes(),
                    "wal_torn_records_skipped":
                        self.wal.torn_records_skipped,
                })
        return payload

    def _metrics_route(self, request: Request) -> Response:
        registry = self.host.network.metrics
        return ok({
            "component": self.metrics(),
            "registry": registry.snapshot() if registry is not None else {},
        })
