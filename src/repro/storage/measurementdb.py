"""Global measurements database.

The paper's Figure 1(a) shows "one or more measurements databases
(which store data collected by sensors placed in the district)".  This
service subscribes to the whole district's measurement topics on the
middleware and ingests every published sample; a Web Service interface
serves range queries and per-device freshness so clients (and the
benchmarks) can ask one place for historical data.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.common.cdf import Measurement
from repro.errors import QueryError, SeriesNotFoundError
from repro.middleware.broker import Event
from repro.middleware.peer import MiddlewarePeer
from repro.middleware.topics import district_filter
from repro.network.resilience import FailoverSet
from repro.network.transport import Host
from repro.network.webservice import (
    GET,
    POST,
    HttpClient,
    Request,
    Response,
    WebService,
    error,
    ok,
)
from repro.storage.localdb import LocalDatabase
from repro.storage.query import RangeQuery


class MeasurementDatabase:
    """District-wide measurement store fed by the pub/sub middleware."""

    def __init__(self, host: Host, broker_host: str, district_id: str,
                 peer_keepalive: Optional[float] = None):
        self.host = host
        self.district_id = district_id
        self.store = LocalDatabase(retention=None)
        self.ingested = 0
        self.rejected = 0
        self.heartbeats_sent = 0
        self.heartbeats_failed = 0
        self._freshness: Dict[str, float] = {}  # device -> last sample time
        # rolling window of recent publish->delivery latencies; a rolling
        # percentile (unlike a cumulative histogram) recovers once an
        # outage's flushed backlog ages out of the window
        self._delivery_latencies: Deque[float] = deque(maxlen=256)
        self._client = HttpClient(host)
        self._heartbeat_task = None
        self.peer = MiddlewarePeer(host, broker_host,
                                   keepalive=peer_keepalive)
        self.peer.subscribe(district_filter(district_id), self._on_event)
        self.service = WebService(host)
        self.service.add_route(GET, "/measurements", self._query_route)
        self.service.add_route(GET, "/devices", self._devices_route)
        self.service.add_route(GET, "/freshness/{device_id}",
                               self._freshness_route)
        self.service.add_route(GET, "/health", self._health_route)
        self.service.add_route(GET, "/metrics", self._metrics_route)

    @property
    def uri(self) -> str:
        return self.service.base_uri

    def _registration_payload(self, lease: Optional[float]) -> Dict:
        payload = {
            "proxy_kind": "measurement",
            "district_id": self.district_id,
            "uri": self.uri,
        }
        if lease is not None:
            payload["lease"] = lease
        return payload

    def register_with(self, master_uri: Union[str, Sequence[str],
                                              FailoverSet],
                      lease: Optional[float] = None) -> None:
        """Announce this measurement DB on the master's district root.

        Accepts one URI or a replicated master set (see
        :class:`~repro.network.resilience.FailoverSet`).
        """
        masters = master_uri if isinstance(master_uri, FailoverSet) \
            else FailoverSet(master_uri)
        self._client.post(masters.current + "/register",
                          body=self._registration_payload(lease))

    def start_heartbeat(self, master_uri: Union[str, Sequence[str],
                                                FailoverSet], period: float,
                        lease: Optional[float] = None) -> None:
        """Renew the registration every *period* simulated seconds.

        With a master set, a failed renewal rotates to the next replica
        (the same failover the proxies' heartbeat performs).
        """
        if self._heartbeat_task is not None:
            return
        if lease is None:
            lease = 3.0 * period
        if not isinstance(master_uri, FailoverSet):
            master_uri = FailoverSet(master_uri)
        self._heartbeat_task = self.host.network.scheduler.every(
            period, self._heartbeat, master_uri, lease
        )

    def stop_heartbeat(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.stop()
            self._heartbeat_task = None

    def _heartbeat(self, masters: FailoverSet, lease: float) -> None:
        future = self._client.request(
            masters.current + "/register", POST,
            body=self._registration_payload(lease),
        )

        def record(fut):
            try:
                if fut.result().ok:
                    self.heartbeats_sent += 1
                    return
            except Exception:
                pass
            self.heartbeats_failed += 1
            masters.advance()  # dead or deposed master: try the next

        future.add_done_callback(record)

    # -- middleware ingestion ---------------------------------------------

    def _on_event(self, event: Event) -> None:
        payload = event.payload
        if not isinstance(payload, dict) or \
                payload.get("record") != "measurement":
            self.rejected += 1
            return
        try:
            measurement = Measurement.from_dict(payload)
        except Exception:
            self.rejected += 1
            return
        self.store.insert(measurement)
        self.ingested += 1
        latency = event.delivered_at - event.published_at
        if latency >= 0:
            self._delivery_latencies.append(latency)
            registry = self.host.network.metrics
            if registry is not None:
                registry.histogram("mdb.delivery_latency").observe(latency)
        previous = self._freshness.get(measurement.device_id, float("-inf"))
        if measurement.timestamp > previous:
            self._freshness[measurement.device_id] = measurement.timestamp

    # -- direct (in-process) query API ------------------------------------

    def query(self, query: RangeQuery) -> List:
        """Run a range query against the global store."""
        return self.store.query(query)

    def freshness(self, device_id: str) -> Optional[float]:
        """Timestamp of the newest ingested sample for *device_id*."""
        return self._freshness.get(device_id)

    def delivery_latency_p90(self) -> float:
        """p90 of the rolling publish→delivery latency window (seconds)."""
        if not self._delivery_latencies:
            return 0.0
        return float(np.percentile(
            np.asarray(self._delivery_latencies, dtype=float), 90
        ))

    def freshness_lag_max(self) -> float:
        """Worst per-device age of the newest ingested sample (seconds).

        The district-level staleness indicator: a silent device (or a
        lost middleware path) shows up here as an ever-growing lag.
        """
        if not self._freshness:
            return 0.0
        now = self.host.network.scheduler.now
        return max(now - last for last in self._freshness.values())

    # -- web-service routes -------------------------------------------------

    def _query_route(self, request: Request) -> Response:
        try:
            query = RangeQuery.from_params(request.params)
            samples = self.store.query(query)
        except QueryError as exc:
            return error(400, str(exc))
        except SeriesNotFoundError as exc:
            return error(404, str(exc))
        return ok({"samples": [[t, v] for t, v in samples]})

    def _devices_route(self, request: Request) -> Response:
        return ok({"devices": self.store.devices()})

    def _freshness_route(self, request: Request) -> Response:
        device_id = request.path_params["device_id"]
        last = self._freshness.get(device_id)
        if last is None:
            return error(404, f"no samples from {device_id}")
        return ok({"device_id": device_id, "last_timestamp": last})

    def _health_route(self, request: Request) -> Response:
        return ok({
            "status": "ok",
            "host": self.host.name,
            "district_id": self.district_id,
            "ingested": self.ingested,
            "rejected": self.rejected,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_failed": self.heartbeats_failed,
        })

    def metrics(self) -> Dict:
        """Numeric counters for the ``/metrics`` endpoint."""
        return {
            "ingested": self.ingested,
            "rejected": self.rejected,
            "devices": len(self._freshness),
            "delivery_latency_p90": self.delivery_latency_p90(),
            "freshness_lag_max": self.freshness_lag_max(),
            "requests_served": self.service.requests_served,
            "requests_failed": self.service.requests_failed,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_failed": self.heartbeats_failed,
        }

    def _metrics_route(self, request: Request) -> Response:
        registry = self.host.network.metrics
        return ok({
            "component": self.metrics(),
            "registry": registry.snapshot() if registry is not None else {},
        })
