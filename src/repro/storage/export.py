"""Export of measurement data for downstream analysis tools.

District operators feed retrieved data into spreadsheets and BI tools;
these helpers turn query results and integrated models into CSV text
and row dictionaries without any further dependencies.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.simtime import isoformat
from repro.core.integration import IntegratedModel
from repro.errors import QueryError
from repro.storage.timeseries import TimeSeries


def samples_to_csv(samples: Sequence[Tuple[float, float]],
                   value_label: str = "value",
                   iso_timestamps: bool = True) -> str:
    """Render (t, value) samples as a two-column CSV document."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["timestamp", value_label])
    for t, value in samples:
        stamp = isoformat(t) if iso_timestamps else repr(t)
        writer.writerow([stamp, repr(value)])
    return out.getvalue()


def model_measurements_to_csv(model: IntegratedModel,
                              quantity: Optional[str] = None) -> str:
    """Flatten every measurement in an integrated model to long-form CSV.

    Columns: entity, device, quantity, timestamp, value.  Optionally
    filtered to one *quantity*.
    """
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["entity_id", "device_id", "quantity", "timestamp",
                     "value"])
    for entity in model.entities.values():
        for (device_id, q), samples in sorted(entity.measurements.items()):
            if quantity is not None and q != quantity:
                continue
            for t, value in samples:
                writer.writerow([entity.entity_id, device_id, q,
                                 isoformat(t), repr(value)])
    return out.getvalue()


def profile_table(profile: Sequence[Tuple[float, float]],
                  bucket: float) -> List[Dict[str, object]]:
    """Rows for a bucketed profile: start/end ISO stamps and the value."""
    if bucket <= 0:
        raise QueryError("bucket width must be positive")
    return [
        {
            "start": isoformat(t),
            "end": isoformat(t + bucket),
            "watts": value,
        }
        for t, value in profile
    ]


def downsample(samples: Sequence[Tuple[float, float]], bucket: float,
               agg: str = "mean") -> List[Tuple[float, float]]:
    """Re-bucket raw samples; thin wrapper over TimeSeries.resample."""
    return TimeSeries(list(samples)).resample(bucket, agg)


def energy_summary(model: IntegratedModel, bucket: float = 3600.0
                   ) -> List[Dict[str, object]]:
    """Per-building energy rows ready for a report or CSV writer."""
    from repro.core.monitoring import ConsumptionProfiler

    profiler = ConsumptionProfiler(model, bucket=bucket)
    rows: List[Dict[str, object]] = []
    for entity in model.buildings:
        energy = profiler.building_energy_wh(entity.entity_id)
        area = entity.properties.get("floor_area_m2")
        rows.append({
            "entity_id": entity.entity_id,
            "name": entity.name,
            "use": entity.properties.get("use", ""),
            "energy_wh": energy,
            "floor_area_m2": area,
            "intensity_wh_per_m2": (energy / area) if area else None,
        })
    rows.sort(key=lambda r: -(r["intensity_wh_per_m2"] or 0.0))
    return rows


def rows_to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Render uniform row dicts as CSV (columns from the first row)."""
    if not rows:
        return ""
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return out.getvalue()
