"""Append-only columnar block store with rollups — the measurement TSDB.

The dict-of-lists store behind the global measurement database caps out
long before the "10^5–10^6 devices" a district deployment implies.
This module is the high-volume engine that replaces it when a
:class:`TsdbConfig` is passed to
:class:`~repro.storage.measurementdb.MeasurementDatabase`:

* **columnar blocks** — each ``(device_id, quantity)`` series is a list
  of *sealed*, immutable blocks (two aligned numpy arrays, times and
  values) plus one small mutable *active* block receiving appends.
  Every sealed block carries per-column summaries (``t_min``/``t_max``,
  ``v_min``/``v_max``, ``count``) so range scans skip blocks whose time
  envelope misses the query window without touching the arrays;
* **pre-computed rollups** — every insert also folds the sample into
  downsampled buckets at each configured resolution (1 m / 15 m / 1 h
  by default).  A bucket keeps ``(count, sum, min, max, first, last)``,
  enough to answer every aggregation in
  :data:`~repro.storage.timeseries.AGGREGATIONS` without re-reading raw
  samples;
* **compaction + retention** — a periodic pass (driven by the
  measurement DB on the simulated clock) merges undersized sealed
  blocks, restores time order across overlapping blocks, drops blocks
  and rollup buckets that aged past ``retention``;
* **rollup-backed range queries** — :meth:`BlockStore.query_range`
  answers ``(t0, t1, step, agg)`` dashboard queries from the coarsest
  rollup resolution that divides *step*, falling back to a raw block
  scan when none does (or when ``prefer="raw"`` forces the comparison
  path, as benchmark C10 does).

The on-disk layout (via ``to_dict``/``from_dict``), the idempotency
contract and the WAL/snapshot interplay are specified in
``docs/storage.md``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.common.cdf import Measurement
from repro.errors import ConfigurationError, QueryError, SeriesNotFoundError
from repro.storage.query import RangeQuery, choose_resolution
from repro.storage.timeseries import TimeSeries

#: rollup bucket slots: [count, sum, min, max, first_t, first_v,
#: last_t, last_v]
_COUNT, _SUM, _MIN, _MAX, _FIRST_T, _FIRST_V, _LAST_T, _LAST_V = range(8)

_FORMAT_VERSION = 1


@dataclass
class TsdbConfig:
    """Knobs of the columnar time-series engine.

    Defaults suit the simulated district scale; every field is
    validated at construction so a misconfigured store fails at deploy
    time, not mid-ingest.
    """

    #: samples per sealed block (the active block seals when full)
    block_size: int = 512
    #: merge sealed blocks up to this many samples during compaction
    compaction_target: int = 4096
    #: period of the background compaction pass, simulated seconds;
    #: None disables automatic compaction (manual :meth:`BlockStore.
    #: compact` still works)
    compaction_period: Optional[float] = 900.0
    #: drop data older than this horizon (simulated seconds, enforced
    #: at compaction time); None keeps everything
    retention: Optional[float] = None
    #: pre-computed downsample resolutions, simulated seconds
    rollup_resolutions: Tuple[float, ...] = (60.0, 900.0, 3600.0)

    def __post_init__(self) -> None:
        """Validate the knob envelope."""
        if self.block_size < 2:
            raise ConfigurationError("block size must be >= 2 samples")
        if self.compaction_target < self.block_size:
            raise ConfigurationError(
                "compaction target must be >= block size"
            )
        if self.compaction_period is not None \
                and self.compaction_period <= 0:
            raise ConfigurationError("compaction period must be positive")
        if self.retention is not None and self.retention <= 0:
            raise ConfigurationError("retention must be positive")
        resolutions = tuple(float(r) for r in self.rollup_resolutions)
        if any(r <= 0 for r in resolutions):
            raise ConfigurationError("rollup resolutions must be positive")
        if len(set(resolutions)) != len(resolutions):
            raise ConfigurationError("duplicate rollup resolution")
        object.__setattr__(self, "rollup_resolutions",
                           tuple(sorted(resolutions)))

    def to_dict(self) -> Dict[str, Any]:
        """Serialise the config (rides inside store snapshots)."""
        return {
            "block_size": self.block_size,
            "compaction_target": self.compaction_target,
            "compaction_period": self.compaction_period,
            "retention": self.retention,
            "rollup_resolutions": list(self.rollup_resolutions),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TsdbConfig":
        """Rebuild a config from its snapshot form."""
        return cls(
            block_size=int(data["block_size"]),
            compaction_target=int(data["compaction_target"]),
            compaction_period=data.get("compaction_period"),
            retention=data.get("retention"),
            rollup_resolutions=tuple(
                float(r) for r in data.get("rollup_resolutions", ())
            ),
        )


class SealedBlock:
    """An immutable columnar run of one series: times + values arrays.

    Sealed blocks are never mutated — compaction replaces them with
    freshly built merged blocks.  The summary columns let the query
    planner prune whole blocks on the time axis and serve min/max
    probes without touching the arrays.
    """

    __slots__ = ("times", "values", "t_min", "t_max", "v_min", "v_max")

    def __init__(self, times: np.ndarray, values: np.ndarray):
        if len(times) == 0:
            raise ConfigurationError("a sealed block cannot be empty")
        self.times = times
        self.values = values
        self.t_min = float(times[0])
        self.t_max = float(times[-1])
        self.v_min = float(np.min(values))
        self.v_max = float(np.max(values))

    def __len__(self) -> int:
        return len(self.times)

    @property
    def count(self) -> int:
        """Number of samples in the block (summary column)."""
        return len(self.times)

    def overlaps(self, start: float, end: float) -> bool:
        """True when the block's time envelope intersects ``[start, end)``."""
        return self.t_max >= start and self.t_min < end

    def slice(self, start: float, end: float
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Samples with ``start <= t < end`` as (times, values) views."""
        lo = int(np.searchsorted(self.times, start, side="left"))
        hi = int(np.searchsorted(self.times, end, side="left"))
        return self.times[lo:hi], self.values[lo:hi]

    def to_dict(self) -> Dict[str, Any]:
        """Serialise the block columns for a snapshot."""
        return {"times": self.times.tolist(),
                "values": self.values.tolist()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SealedBlock":
        """Rebuild a sealed block from its snapshot form."""
        return cls(np.asarray(data["times"], dtype=float),
                   np.asarray(data["values"], dtype=float))

    @classmethod
    def from_pairs(cls, times: Sequence[float], values: Sequence[float]
                   ) -> "SealedBlock":
        """Build a block from parallel time/value sequences."""
        return cls(np.asarray(times, dtype=float),
                   np.asarray(values, dtype=float))


class _ActiveBlock:
    """The mutable head block receiving appends (python lists).

    Appends keep time order with a bisect fallback, so a sealed block
    is always internally sorted even when samples arrive out of order
    within the head's lifetime.
    """

    __slots__ = ("times", "values")

    def __init__(self):
        self.times: List[float] = []
        self.values: List[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def append(self, t: float, value: float) -> None:
        """Insert one sample, keeping the head sorted by timestamp."""
        if not self.times or t >= self.times[-1]:
            self.times.append(t)
            self.values.append(value)
            return
        index = bisect.bisect_right(self.times, t)
        self.times.insert(index, t)
        self.values.insert(index, value)

    def seal(self) -> SealedBlock:
        """Freeze the head into an immutable :class:`SealedBlock`."""
        return SealedBlock.from_pairs(self.times, self.values)

    def slice(self, start: float, end: float
              ) -> Tuple[List[float], List[float]]:
        """Samples with ``start <= t < end`` as (times, values) lists."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return self.times[lo:hi], self.values[lo:hi]


class _Series:
    """One ``(device, quantity)`` series: sealed blocks + head + rollups."""

    __slots__ = ("sealed", "active", "rollups")

    def __init__(self, resolutions: Tuple[float, ...]):
        self.sealed: List[SealedBlock] = []
        self.active = _ActiveBlock()
        #: resolution -> bucket_start -> 8-slot aggregate list
        self.rollups: Dict[float, Dict[float, List[float]]] = {
            resolution: {} for resolution in resolutions
        }

    def sample_count(self) -> int:
        """Raw samples held across sealed blocks and the active head."""
        return sum(len(b) for b in self.sealed) + len(self.active)


def _fold(bucket: List[float], t: float, value: float) -> None:
    """Fold one sample into an 8-slot rollup bucket aggregate."""
    bucket[_COUNT] += 1
    bucket[_SUM] += value
    if value < bucket[_MIN]:
        bucket[_MIN] = value
    if value > bucket[_MAX]:
        bucket[_MAX] = value
    if t < bucket[_FIRST_T]:
        bucket[_FIRST_T] = t
        bucket[_FIRST_V] = value
    if t >= bucket[_LAST_T]:
        bucket[_LAST_T] = t
        bucket[_LAST_V] = value


def _combine(target: List[float], source: Sequence[float]) -> None:
    """Merge rollup aggregate *source* into *target* (same invariants)."""
    target[_COUNT] += source[_COUNT]
    target[_SUM] += source[_SUM]
    if source[_MIN] < target[_MIN]:
        target[_MIN] = source[_MIN]
    if source[_MAX] > target[_MAX]:
        target[_MAX] = source[_MAX]
    if source[_FIRST_T] < target[_FIRST_T]:
        target[_FIRST_T] = source[_FIRST_T]
        target[_FIRST_V] = source[_FIRST_V]
    if source[_LAST_T] >= target[_LAST_T]:
        target[_LAST_T] = source[_LAST_T]
        target[_LAST_V] = source[_LAST_V]


def _finish(bucket: Sequence[float], agg: str) -> float:
    """Extract one aggregation from a combined rollup bucket."""
    if agg == "mean":
        return bucket[_SUM] / bucket[_COUNT]
    if agg == "sum":
        return bucket[_SUM]
    if agg == "min":
        return bucket[_MIN]
    if agg == "max":
        return bucket[_MAX]
    if agg == "count":
        return float(bucket[_COUNT])
    if agg == "first":
        return bucket[_FIRST_V]
    if agg == "last":
        return bucket[_LAST_V]
    raise QueryError(f"unknown aggregation {agg!r}")


def _new_bucket(t: float, value: float) -> List[float]:
    return [1, value, value, value, t, value, t, value]


class BlockStore:
    """Columnar measurement store: sealed blocks, rollups, compaction.

    Drop-in replacement for the storage surface of
    :class:`~repro.storage.localdb.LocalDatabase` that the measurement
    database and its callers use (``insert`` / ``series`` / ``devices``
    / ``quantities`` / ``latest`` / ``query`` / ``sample_count``), plus
    the TSDB surface: :meth:`query_range`, :meth:`compact`,
    :meth:`stats` and snapshot serialisation.
    """

    def __init__(self, config: Optional[TsdbConfig] = None):
        self.config = config or TsdbConfig()
        self.inserts = 0
        self.blocks_sealed = 0
        self.compactions = 0
        self.blocks_merged = 0
        self.blocks_retired = 0
        self.samples_retired = 0
        self.rollup_buckets_pruned = 0
        self.rollup_queries = 0
        self.raw_queries = 0
        #: where the most recent query_range was answered from
        #: ("rollup:<resolution>" or "raw"); introspection for tests
        #: and the benchmark harness
        self.last_query_source: Optional[str] = None
        self._series: Dict[Tuple[str, str], _Series] = {}

    # -- ingest -----------------------------------------------------------

    def insert(self, measurement: Measurement) -> None:
        """Append one sample to its series and fold it into every rollup."""
        key = (measurement.device_id, measurement.quantity)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series(
                self.config.rollup_resolutions
            )
        t = float(measurement.timestamp)
        value = float(measurement.value)
        series.active.append(t, value)
        self.inserts += 1
        if len(series.active) >= self.config.block_size:
            series.sealed.append(series.active.seal())
            series.active = _ActiveBlock()
            self.blocks_sealed += 1
        for resolution, buckets in series.rollups.items():
            start = (t // resolution) * resolution
            bucket = buckets.get(start)
            if bucket is None:
                buckets[start] = _new_bucket(t, value)
            else:
                _fold(bucket, t, value)

    # -- LocalDatabase-compatible read surface ----------------------------

    def devices(self) -> List[str]:
        """Sorted device ids present in the store."""
        return sorted({device for device, _q in self._series})

    def quantities(self, device_id: str) -> List[str]:
        """Sorted quantities recorded for *device_id*."""
        return sorted(q for d, q in self._series if d == device_id)

    def has_series(self, device_id: str, quantity: str) -> bool:
        """True when at least one sample exists for the pair."""
        return (device_id, quantity) in self._series

    def series(self, device_id: str, quantity: str) -> TimeSeries:
        """The full series materialised as a sorted :class:`TimeSeries`.

        A compatibility view (copies every sample); hot paths should
        use :meth:`query_range` or :meth:`query` instead.
        """
        data = self._get(device_id, quantity)
        times: List[float] = []
        values: List[float] = []
        for block in data.sealed:
            times.extend(block.times.tolist())
            values.extend(block.values.tolist())
        times.extend(data.active.times)
        values.extend(data.active.values)
        pairs = sorted(zip(times, values), key=lambda p: p[0])
        out = TimeSeries()
        for t, value in pairs:
            out.append(t, value)
        return out

    def latest(self, device_id: str, quantity: str) -> Tuple[float, float]:
        """Most recent (timestamp, value) for a device quantity."""
        data = self._get(device_id, quantity)
        best: Optional[Tuple[float, float]] = None
        if data.active.times:
            best = (data.active.times[-1], data.active.values[-1])
        for block in data.sealed:
            if best is None or block.t_max >= best[0]:
                candidate = (block.t_max, float(block.values[-1]))
                if best is None or candidate[0] >= best[0]:
                    best = candidate
        if best is None:
            raise SeriesNotFoundError(
                f"no samples for {device_id}/{quantity}"
            )
        return best

    def sample_count(self) -> int:
        """Total stored samples across all series."""
        return sum(s.sample_count() for s in self._series.values())

    def query(self, query: RangeQuery) -> List[Tuple[float, float]]:
        """Run a classic :class:`RangeQuery` (raw window or resample).

        Kept for surface compatibility with
        :class:`~repro.storage.localdb.LocalDatabase`; bucketed
        variants go through :meth:`query_range` so they benefit from
        rollups when the bucket aligns.
        """
        start = query.start if query.start is not None else float("-inf")
        end = query.end if query.end is not None else float("inf")
        if query.bucket is not None:
            self._get(query.device_id, query.quantity)  # 404 on absent
            return self.query_range(query.device_id, query.quantity,
                                    start, end, query.bucket, query.agg)
        times, values = self._scan(query.device_id, query.quantity,
                                   start, end)
        return list(zip(times.tolist(), values.tolist()))

    # -- range queries ----------------------------------------------------

    def query_range(self, device_id: str, quantity: str, start: float,
                    end: float, step: float, agg: str = "mean",
                    prefer: Optional[str] = None
                    ) -> List[Tuple[float, float]]:
        """Bucketed aggregates over ``[start, end)`` at *step* width.

        Buckets are aligned to multiples of *step* (the same alignment
        :meth:`~repro.storage.timeseries.TimeSeries.resample` uses);
        empty buckets are omitted.  Served from the coarsest rollup
        resolution dividing *step* when one exists, otherwise from a
        raw block scan.  ``prefer="raw"`` forces the scan path (the
        benchmark's comparison arm); ``prefer="rollup"`` raises if no
        rollup can serve the query.
        """
        if step <= 0:
            raise QueryError("step width must be positive")
        self._get(device_id, quantity)  # raise SeriesNotFound early
        resolution = choose_resolution(
            step, self.config.rollup_resolutions
        )
        if prefer == "rollup" and resolution is None:
            raise QueryError(
                f"no rollup resolution divides step={step}"
            )
        if resolution is not None and prefer != "raw":
            self.rollup_queries += 1
            self.last_query_source = f"rollup:{resolution:g}"
            return self._query_rollup(device_id, quantity, start, end,
                                      step, agg, resolution)
        self.raw_queries += 1
        self.last_query_source = "raw"
        return self._query_raw(device_id, quantity, start, end, step, agg)

    def _query_rollup(self, device_id: str, quantity: str, start: float,
                      end: float, step: float, agg: str,
                      resolution: float) -> List[Tuple[float, float]]:
        buckets = self._series[(device_id, quantity)].rollups[resolution]
        combined: Dict[float, List[float]] = {}
        for bucket_start, aggregate in buckets.items():
            if bucket_start < start or bucket_start >= end:
                continue
            slot = (bucket_start // step) * step
            target = combined.get(slot)
            if target is None:
                combined[slot] = list(aggregate)
            else:
                _combine(target, aggregate)
        return [(slot, _finish(combined[slot], agg))
                for slot in sorted(combined)]

    def _query_raw(self, device_id: str, quantity: str, start: float,
                   end: float, step: float, agg: str
                   ) -> List[Tuple[float, float]]:
        times, values = self._scan(device_id, quantity, start, end)
        return TimeSeries(list(zip(times.tolist(), values.tolist()))) \
            .resample(step, agg)

    def _scan(self, device_id: str, quantity: str, start: float,
              end: float) -> Tuple[np.ndarray, np.ndarray]:
        """Merged raw samples of one series inside ``[start, end)``."""
        return self._scan_series(self._get(device_id, quantity),
                                 start, end)

    def _scan_series(self, data: "_Series", start: float, end: float
                     ) -> Tuple[np.ndarray, np.ndarray]:
        chunks_t: List[np.ndarray] = []
        chunks_v: List[np.ndarray] = []
        sorted_so_far = True
        last_max = float("-inf")
        for block in data.sealed:
            if not block.overlaps(start, end):
                continue
            t, v = block.slice(start, end)
            if len(t):
                if t[0] < last_max:
                    sorted_so_far = False
                last_max = float(t[-1])
                chunks_t.append(t)
                chunks_v.append(v)
        at, av = data.active.slice(start, end)
        if at:
            if at[0] < last_max:
                sorted_so_far = False
            chunks_t.append(np.asarray(at, dtype=float))
            chunks_v.append(np.asarray(av, dtype=float))
        if not chunks_t:
            return (np.empty(0, dtype=float), np.empty(0, dtype=float))
        times = np.concatenate(chunks_t)
        values = np.concatenate(chunks_v)
        if not sorted_so_far:
            order = np.argsort(times, kind="stable")
            times = times[order]
            values = values[order]
        return times, values

    def _get(self, device_id: str, quantity: str) -> _Series:
        try:
            return self._series[(device_id, quantity)]
        except KeyError:
            raise SeriesNotFoundError(
                f"no samples for {device_id}/{quantity}"
            ) from None

    # -- compaction and retention -----------------------------------------

    def compact(self, now: Optional[float] = None) -> Dict[str, int]:
        """One compaction pass: retention, then block merging.

        With *now* and a configured retention horizon, sealed blocks
        whose entire time envelope is older than ``now - retention``
        are dropped and rollup buckets past the horizon pruned.
        Adjacent sealed blocks are then merged (re-sorting, so
        out-of-order overlap between blocks is repaired) into blocks of
        up to ``compaction_target`` samples.  Returns the pass's
        counters.
        """
        merged = retired = samples_retired = pruned = 0
        cutoff = None
        if now is not None and self.config.retention is not None:
            cutoff = now - self.config.retention
        for key in list(self._series):
            series = self._series[key]
            if cutoff is not None:
                kept: List[SealedBlock] = []
                for block in series.sealed:
                    if block.t_max < cutoff:
                        retired += 1
                        samples_retired += len(block)
                    else:
                        kept.append(block)
                series.sealed = kept
                # retention is block-granular, so raw data may survive
                # below the cutoff (a straddling block, the unsealed
                # head).  Keep rollup answers equal to raw answers
                # everywhere raw data still exists: prune buckets only
                # below the oldest REMAINING raw sample and rebuild the
                # buckets that straddle the horizon (they aggregated
                # now-dropped samples) from the surviving raw data.
                oldest = min(
                    [b.t_min for b in series.sealed]
                    + (series.active.times[:1] or []),
                    default=float("inf"),
                )
                horizon = min(cutoff, oldest)
                for resolution, buckets in series.rollups.items():
                    stale = []
                    for start in list(buckets):
                        if start + resolution <= horizon:
                            stale.append(start)
                        elif start < cutoff:
                            rebuilt = self._rebuild_bucket(
                                series, start, resolution
                            )
                            if rebuilt is None:
                                stale.append(start)
                            else:
                                buckets[start] = rebuilt
                    for start in stale:
                        del buckets[start]
                    pruned += len(stale)
                if not series.sealed and not len(series.active) \
                        and not any(series.rollups.values()):
                    del self._series[key]
                    continue
            merged += self._merge_blocks(series)
        self.compactions += 1
        self.blocks_merged += merged
        self.blocks_retired += retired
        self.samples_retired += samples_retired
        self.rollup_buckets_pruned += pruned
        return {"blocks_merged": merged, "blocks_retired": retired,
                "samples_retired": samples_retired,
                "rollup_buckets_pruned": pruned}

    def _rebuild_bucket(self, series: _Series, start: float,
                        resolution: float) -> Optional[List[float]]:
        """Recompute one rollup bucket from surviving raw samples.

        Returns ``None`` when no raw sample remains in the bucket's
        time range (the bucket should be dropped).
        """
        times, values = self._scan_series(series, start,
                                          start + resolution)
        if not len(times):
            return None
        bucket = _new_bucket(float(times[0]), float(values[0]))
        for t, value in zip(times[1:], values[1:]):
            _fold(bucket, float(t), float(value))
        return bucket

    def _merge_blocks(self, series: _Series) -> int:
        """Merge undersized sealed block runs; returns blocks absorbed."""
        target = self.config.compaction_target
        out: List[SealedBlock] = []
        run: List[SealedBlock] = []
        run_len = 0
        merged = 0

        def flush_run():
            nonlocal merged, run_len
            if not run:
                return
            if len(run) == 1:
                out.append(run[0])
            else:
                times = np.concatenate([b.times for b in run])
                values = np.concatenate([b.values for b in run])
                order = np.argsort(times, kind="stable")
                out.append(SealedBlock(times[order], values[order]))
                merged += len(run)
            run.clear()
            run_len = 0

        for block in series.sealed:
            if len(block) >= target:
                flush_run()
                out.append(block)
                continue
            if run_len + len(block) > target:
                flush_run()
            run.append(block)
            run_len += len(block)
        flush_run()
        series.sealed = out
        return merged

    # -- snapshots --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Serialise the whole store (blocks + rollups) for a snapshot."""
        series_out = []
        for (device_id, quantity), series in sorted(self._series.items()):
            series_out.append({
                "device_id": device_id,
                "quantity": quantity,
                "blocks": [b.to_dict() for b in series.sealed],
                "active": {"times": list(series.active.times),
                           "values": list(series.active.values)},
                "rollups": {
                    repr(resolution): {
                        repr(start): list(bucket)
                        for start, bucket in buckets.items()
                    }
                    for resolution, buckets in series.rollups.items()
                },
            })
        return {"version": _FORMAT_VERSION,
                "config": self.config.to_dict(),
                "series": series_out}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BlockStore":
        """Rebuild a store (blocks, heads, rollups) from its snapshot."""
        store = cls(TsdbConfig.from_dict(data["config"]))
        for record in data.get("series", []):
            key = (record["device_id"], record["quantity"])
            series = _Series(store.config.rollup_resolutions)
            series.sealed = [SealedBlock.from_dict(b)
                             for b in record.get("blocks", [])]
            active = record.get("active", {})
            series.active.times = [float(t)
                                   for t in active.get("times", [])]
            series.active.values = [float(v)
                                    for v in active.get("values", [])]
            for res_text, buckets in record.get("rollups", {}).items():
                resolution = float(res_text)
                if resolution not in series.rollups:
                    series.rollups[resolution] = {}
                series.rollups[resolution] = {
                    float(start): list(bucket)
                    for start, bucket in buckets.items()
                }
            store._series[key] = series
        return store

    # -- observability ----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Engine counters for the measurement DB's ``/metrics``."""
        sealed = sum(len(s.sealed) for s in self._series.values())
        active = sum(len(s.active) for s in self._series.values())
        rollup_points = sum(
            len(buckets)
            for s in self._series.values()
            for buckets in s.rollups.values()
        )
        return {
            "series": len(self._series),
            "sealed_blocks": sealed,
            "active_samples": active,
            "rollup_buckets": rollup_points,
            "blocks_sealed_total": self.blocks_sealed,
            "compactions": self.compactions,
            "blocks_merged": self.blocks_merged,
            "blocks_retired": self.blocks_retired,
            "samples_retired": self.samples_retired,
            "rollup_buckets_pruned": self.rollup_buckets_pruned,
            "rollup_queries": self.rollup_queries,
            "raw_queries": self.raw_queries,
        }
