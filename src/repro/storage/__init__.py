"""Measurement storage: time series, proxy-local DB, global DB."""

from repro.storage.localdb import LocalDatabase
from repro.storage.measurementdb import MeasurementDatabase
from repro.storage.query import RangeQuery
from repro.storage.timeseries import (
    AGGREGATIONS,
    TimeSeries,
    aligned_sum,
    merge,
)

__all__ = [
    "AGGREGATIONS",
    "LocalDatabase",
    "MeasurementDatabase",
    "RangeQuery",
    "TimeSeries",
    "aligned_sum",
    "merge",
]
