"""Measurement storage: time series, proxy-local DB, global DB, TSDB."""

from repro.storage.blocks import BlockStore, SealedBlock, TsdbConfig
from repro.storage.localdb import LocalDatabase
from repro.storage.measurementdb import MeasurementDatabase
from repro.storage.query import RangeQuery, RollupQuery, choose_resolution
from repro.storage.timeseries import (
    AGGREGATIONS,
    TimeSeries,
    aligned_sum,
    merge,
)

__all__ = [
    "AGGREGATIONS",
    "BlockStore",
    "LocalDatabase",
    "MeasurementDatabase",
    "RangeQuery",
    "RollupQuery",
    "SealedBlock",
    "TimeSeries",
    "TsdbConfig",
    "aligned_sum",
    "choose_resolution",
    "merge",
]
