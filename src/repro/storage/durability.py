"""Crash-safe durability for the measurement store: WAL + snapshots.

The global measurement database is the district's system of record, so
a crash-restart must not lose acknowledged samples.  Durability follows
the classic two-artifact recipe:

* a :class:`WriteAheadLog` — an append-only JSONL file.  Every accepted
  sample is appended (and fsync'd) *before* the delivery is
  acknowledged back to the broker, so an acknowledged sample is on disk
  by definition;
* periodic snapshots (see :func:`repro.persistence.
  save_measurement_state`) — the full store, freshness table and
  idempotent-ingest window written atomically, after which the WAL is
  truncated.

Recovery loads the latest snapshot and replays the WAL tail.  A crash
between "snapshot written" and "WAL truncated" merely replays records
already contained in the snapshot — the persisted dedup window absorbs
them, so recovery is idempotent too.  A torn final line (the crash
interrupting an append) is detected and skipped.

:class:`DurabilityConfig` bundles the knobs; passing one to
:class:`~repro.storage.measurementdb.MeasurementDatabase` opts the
store into the whole durable-ingest path (WAL, snapshots, consumer-side
broker acks, idempotent ingest and the bounded ingest queue).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import ConfigurationError


@dataclass
class DurabilityConfig:
    """Knobs of the measurement DB's durable-ingest path.

    Every field has a safe default; the two paths are the only required
    decisions.  ``wal_path``/``snapshot_path`` may be None to disable
    that artifact (acks, dedup and the bounded queue still apply).
    """

    #: append-only log file; None disables write-ahead logging
    wal_path: Optional[str] = None
    #: periodic full-state snapshot file; None disables snapshots
    snapshot_path: Optional[str] = None
    #: period of persisted snapshots, simulated seconds
    snapshot_period: float = 300.0
    #: subscribe with consumer-side delivery acks (at-least-once)
    ack_deliveries: bool = True
    #: size of the idempotent-ingest key window (recent sample keys)
    dedup_window: int = 4096
    #: bounded ingest queue capacity; None keeps the queue unbounded
    queue_capacity: Optional[int] = None
    #: modelled service time per queued sample (simulated seconds);
    #: 0 ingests synchronously on delivery
    ingest_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.dedup_window < 1:
            raise ConfigurationError("dedup window must hold >= 1 key")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ConfigurationError("ingest queue must hold >= 1 event")
        if self.ingest_delay < 0:
            raise ConfigurationError("ingest delay must be >= 0")
        if self.snapshot_period <= 0:
            raise ConfigurationError("snapshot period must be positive")


@dataclass
class BrokerDurabilityConfig:
    """Knobs of the middleware broker's durable-state path.

    Passing one to :class:`~repro.middleware.broker.Broker` makes the
    broker's retained events, subscription registry, pending acked
    deliveries and dead-letter queue crash-safe: every mutation is
    appended (and fsync'd) to the WAL *before* the pub-ack or fanout it
    enables, and a crash-restart :meth:`~repro.middleware.broker.
    Broker.recover` restores the middleware exactly from the last
    snapshot plus the WAL tail.
    """

    #: append-only log of broker-state mutations; None disables it
    wal_path: Optional[str] = None
    #: periodic full-state snapshot file; None disables snapshots
    snapshot_path: Optional[str] = None
    #: period of persisted snapshots, simulated seconds
    snapshot_period: float = 60.0

    def __post_init__(self) -> None:
        if self.snapshot_period <= 0:
            raise ConfigurationError("snapshot period must be positive")


class WriteAheadLog:
    """Append-only JSONL log with fsync accounting and torn-tail repair.

    Each record is one JSON object per line.  :meth:`append` writes,
    flushes and fsyncs before returning — the caller may acknowledge
    the record as durable once it returns.  :meth:`replay` yields every
    intact record; a torn trailing line (a crash mid-append) is counted
    and skipped, never raised.
    """

    def __init__(self, path: str):
        self.path = path
        self.appends = 0
        self.fsyncs = 0
        self.fsynced_bytes = 0
        self.torn_records_skipped = 0
        self._handle = None

    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, record: Dict) -> None:
        """Durably append one record (write + flush + fsync)."""
        line = json.dumps(record, separators=(",", ":")) + "\n"
        handle = self._open()
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
        self.appends += 1
        self.fsyncs += 1
        self.fsynced_bytes += len(line.encode("utf-8"))

    def replay(self) -> Iterator[Dict]:
        """Yield every intact record in append order.

        A torn final line is skipped (and counted); a torn line in the
        middle of the log means corruption beyond a crash mid-append
        and raises.
        """
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                yield json.loads(stripped)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    self.torn_records_skipped += 1
                    return
                raise

    def records(self) -> List[Dict]:
        """All intact records as a list (convenience over :meth:`replay`)."""
        return list(self.replay())

    def reset(self) -> None:
        """Truncate the log (called after a successful snapshot)."""
        self.close()
        with open(self.path, "w", encoding="utf-8"):
            pass

    def close(self) -> None:
        """Close the append handle (crash/restart simulation, teardown)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def size_bytes(self) -> int:
        """Current on-disk size of the log."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0
