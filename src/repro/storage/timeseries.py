"""In-memory time series with aggregation.

The middle layer of the Device-proxy ("It collects data from the device
in a local database") and the global measurements database both store
sampled sensor data.  :class:`TimeSeries` is their common primitive:
append-mostly storage of (time, value) pairs kept sorted by time, range
queries, bucketed resampling and trapezoidal integration (power -> energy).
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StorageError

#: aggregation name -> reducer over a non-empty value array
_AGGREGATORS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda v: float(np.mean(v)),
    "sum": lambda v: float(np.sum(v)),
    "min": lambda v: float(np.min(v)),
    "max": lambda v: float(np.max(v)),
    "last": lambda v: float(v[-1]),
    "first": lambda v: float(v[0]),
    "count": lambda v: float(len(v)),
}

AGGREGATIONS = tuple(sorted(_AGGREGATORS))


class TimeSeries:
    """A sorted sequence of (timestamp, value) samples."""

    def __init__(self, samples: Optional[Sequence[Tuple[float, float]]] = None):
        self._times: List[float] = []
        self._values: List[float] = []
        if samples:
            for t, v in samples:
                self.append(t, v)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps as a numpy array (copy)."""
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Sample values as a numpy array (copy)."""
        return np.asarray(self._values, dtype=float)

    def append(self, t: float, value: float) -> None:
        """Insert a sample, keeping time order (out-of-order allowed)."""
        if not self._times or t >= self._times[-1]:
            self._times.append(float(t))
            self._values.append(float(value))
            return
        index = bisect.bisect_right(self._times, t)
        self._times.insert(index, float(t))
        self._values.insert(index, float(value))

    def latest(self) -> Tuple[float, float]:
        """Most recent (timestamp, value); raises on an empty series."""
        if not self._times:
            raise StorageError("series is empty")
        return self._times[-1], self._values[-1]

    def first(self) -> Tuple[float, float]:
        """Oldest (timestamp, value); raises on an empty series."""
        if not self._times:
            raise StorageError("series is empty")
        return self._times[0], self._values[0]

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= t < end`` as a new series."""
        if end < start:
            raise StorageError(f"reversed window [{start}, {end})")
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        out = TimeSeries()
        out._times = self._times[lo:hi]
        out._values = self._values[lo:hi]
        return out

    def value_at(self, t: float) -> float:
        """Last value at or before *t* (sample-and-hold semantics)."""
        index = bisect.bisect_right(self._times, t)
        if index == 0:
            raise StorageError(f"no sample at or before t={t}")
        return self._values[index - 1]

    def resample(self, bucket: float, agg: str = "mean"
                 ) -> List[Tuple[float, float]]:
        """Aggregate into fixed buckets; empty buckets are omitted.

        Returns (bucket_start, aggregate) pairs, bucket boundaries are
        multiples of *bucket*.
        """
        if bucket <= 0:
            raise StorageError("bucket width must be positive")
        try:
            reducer = _AGGREGATORS[agg]
        except KeyError:
            raise StorageError(f"unknown aggregation {agg!r}") from None
        if not self._times:
            return []
        times = self.times
        values = self.values
        starts = np.floor(times / bucket) * bucket
        out: List[Tuple[float, float]] = []
        boundaries = np.flatnonzero(np.diff(starts)) + 1
        chunks = np.split(np.arange(len(times)), boundaries)
        for chunk in chunks:
            out.append((float(starts[chunk[0]]), reducer(values[chunk])))
        return out

    def integrate_hours(self) -> float:
        """Trapezoidal integral of value dt, with dt in hours.

        For a power series in watts this yields energy in watt-hours.
        """
        if len(self._times) < 2:
            return 0.0
        times = self.times / 3600.0
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.values, times))

    def mean(self) -> float:
        """Arithmetic mean of the values; raises on empty series.

        Clamped into ``[minimum, maximum]``: float accumulation can land
        the raw mean one ulp outside the value envelope.
        """
        if not self._values:
            raise StorageError("series is empty")
        values = self.values
        mean = float(np.mean(values))
        return float(min(max(mean, np.min(values)), np.max(values)))

    def minimum(self) -> float:
        """Smallest value in the series; raises on an empty series."""
        if not self._values:
            raise StorageError("series is empty")
        return float(np.min(self.values))

    def maximum(self) -> float:
        """Largest value in the series; raises on an empty series."""
        if not self._values:
            raise StorageError("series is empty")
        return float(np.max(self.values))

    def prune_before(self, cutoff: float) -> int:
        """Drop samples older than *cutoff*; returns how many were removed."""
        index = bisect.bisect_left(self._times, cutoff)
        if index == 0:
            return 0
        del self._times[:index]
        del self._values[:index]
        return index

    def to_pairs(self) -> List[Tuple[float, float]]:
        """All samples as a list of (t, value) pairs."""
        return list(zip(self._times, self._values))


def merge(series: Sequence[TimeSeries]) -> TimeSeries:
    """Merge several series into one time-ordered series."""
    out = TimeSeries()
    pairs: List[Tuple[float, float]] = []
    for s in series:
        pairs.extend(s.to_pairs())
    pairs.sort(key=lambda p: p[0])
    out._times = [p[0] for p in pairs]
    out._values = [p[1] for p in pairs]
    return out


def aligned_sum(series: Sequence[TimeSeries], bucket: float
                ) -> List[Tuple[float, float]]:
    """Bucketed sum across series — the district/building roll-up.

    Each series is first resampled with ``mean`` into *bucket*-wide
    slots (a power reading is a level, not an increment), then slots are
    summed across series.  Only slots covered by at least one series
    appear.
    """
    totals: Dict[float, float] = {}
    for s in series:
        for start, value in s.resample(bucket, "mean"):
            totals[start] = totals.get(start, 0.0) + value
    return sorted(totals.items())
