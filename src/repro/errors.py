"""Exception hierarchy for the district-integration framework.

Every error raised by the framework derives from :class:`ReproError`, so
applications can catch one base class at the integration boundary.  The
sub-hierarchy mirrors the package layout: network/transport failures,
protocol decoding failures, proxy/translation failures, ontology and
query failures, and storage failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class ConfigurationError(ReproError):
    """A component was wired or configured inconsistently."""


# --------------------------------------------------------------------------
# network


class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class UnknownHostError(NetworkError):
    """A message was addressed to a host that is not on the network."""


class EndpointNotFoundError(NetworkError):
    """No service endpoint is bound to the requested host/port."""


class RequestTimeoutError(NetworkError):
    """A web-service request did not complete within its deadline."""


class ServiceError(NetworkError):
    """A web service returned an error status."""

    def __init__(self, status: int, reason: str = ""):
        super().__init__(f"service returned {status}: {reason}")
        self.status = status
        self.reason = reason


class CircuitOpenError(NetworkError):
    """A request was fast-failed because the target's circuit is open."""


# --------------------------------------------------------------------------
# protocols / devices


class ProtocolError(ReproError):
    """Base class for device-protocol failures."""


class FrameDecodeError(ProtocolError):
    """A protocol frame could not be decoded (corrupt or wrong format)."""


class FrameEncodeError(ProtocolError):
    """A command or reading could not be encoded into a protocol frame."""


class UnsupportedCommandError(ProtocolError):
    """A device received a command it cannot execute."""


class DeviceError(ReproError):
    """A simulated device failed or is offline."""


# --------------------------------------------------------------------------
# data / translation


class TranslationError(ReproError):
    """A native source record could not be translated to the common format."""


class SerializationError(ReproError):
    """A common-data-format document could not be encoded or decoded."""


class UnitError(ReproError):
    """An operation mixed incompatible physical units."""


# --------------------------------------------------------------------------
# ontology / master / integration


class OntologyError(ReproError):
    """Base class for district-ontology failures."""


class UnknownEntityError(OntologyError):
    """An ontology query referenced an entity that does not exist."""


class NotPrimaryError(ReproError):
    """A write reached a master that is not the writable primary.

    Raised by a standby (writes must go to the primary) or by a fenced
    primary that lost contact with its standbys (see
    :mod:`repro.core.replication`).  The master's ``/register`` route
    maps it to a retryable 503 so clients fail over to the next master
    in their set instead of treating it as a permanent refusal.
    """


class RegistrationError(ReproError):
    """A proxy registration was rejected by the master node."""


class QueryError(ReproError):
    """An area or data query was malformed or unsatisfiable."""


class IntegrationError(ReproError):
    """Retrieved data could not be merged into a coherent model."""


class ConflictError(IntegrationError):
    """Two sources reported irreconcilable values for the same property."""

    def __init__(self, entity: str, prop: str, values):
        super().__init__(
            f"conflicting values for {entity}.{prop}: {values!r}"
        )
        self.entity = entity
        self.prop = prop
        self.values = values


# --------------------------------------------------------------------------
# storage


class StorageError(ReproError):
    """Base class for time-series / database failures."""


class SeriesNotFoundError(StorageError):
    """A queried time series does not exist in the store."""


class BackpressureError(StorageError):
    """An ingest queue is full; the caller should retry later.

    Raised by a consumer whose bounded ingest queue is saturated.  The
    middleware translates it into a *busy* negative acknowledgement so
    the broker redelivers after a delay instead of dead-lettering.
    """


class PoisonPayloadError(StorageError):
    """A payload failed translation/validation and cannot be ingested.

    Raised by a consumer for malformed events.  The middleware
    translates it into a *poison* negative acknowledgement; after the
    broker's redelivery budget is exhausted the event moves to the
    dead-letter queue instead of wedging the consumer.
    """
