"""District map rendering from integrated models.

Draws the GIS footprints of an integrated area model as an SVG map —
buildings coloured by a per-building metric (energy intensity by
default), network routes as dashed lines, a legend — the district-level
"visualization of energy behaviors" the paper targets.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.integration import IntegratedModel
from repro.datasources.geometry import BoundingBox
from repro.errors import QueryError
from repro.visualization.svg import LinearScale, SvgDocument, color_scale

_PADDING = 30.0
_LEGEND_HEIGHT = 40.0


def _model_bounds(model: IntegratedModel) -> BoundingBox:
    boxes = []
    for entity in model.entities.values():
        geometry = entity.geometry
        if geometry and geometry.get("bounds"):
            boxes.append(BoundingBox.from_list(geometry["bounds"]))
    if not boxes:
        raise QueryError("no entity in the model carries GIS geometry")
    return BoundingBox(
        min(b.min_x for b in boxes), min(b.min_y for b in boxes),
        max(b.max_x for b in boxes), max(b.max_y for b in boxes),
    )


def district_map(
    model: IntegratedModel,
    metric: Optional[Dict[str, float]] = None,
    metric_label: str = "Wh/m2",
    width: float = 640.0,
    height: float = 520.0,
) -> str:
    """Render the modelled area; buildings coloured by *metric*.

    *metric* maps building entity ids to values (e.g. from the
    awareness report); buildings without a value are grey.
    """
    metric = metric or {}
    bounds = _model_bounds(model)
    doc = SvgDocument(width, height)
    plot_height = height - _LEGEND_HEIGHT
    x_scale = LinearScale((bounds.min_x, bounds.max_x),
                          (_PADDING, width - _PADDING))
    # northing grows upwards: flip the y axis
    y_scale = LinearScale((bounds.min_y, bounds.max_y),
                          (plot_height - _PADDING, _PADDING))
    values = [v for v in metric.values() if v is not None]
    lo = min(values) if values else 0.0
    hi = max(values) if values else 1.0

    for entity in model.entities.values():
        geometry = entity.geometry
        if not geometry or not geometry.get("coordinates"):
            continue
        points = [(x_scale(x), y_scale(y))
                  for x, y in geometry["coordinates"]]
        if entity.entity_type == "building" and len(points) >= 3:
            value = metric.get(entity.entity_id)
            fill = (color_scale(value, lo, hi) if value is not None
                    else "#cbd5e0")
            doc.polygon(points, fill=fill, stroke="#2d3748",
                        stroke_width=0.8)
            cx, cy = geometry.get("centroid", [0, 0])
            doc.text(x_scale(cx), y_scale(cy) + 3, entity.entity_id[-4:],
                     text_anchor="middle", font_size=8, fill="#1a202c")
        elif len(points) >= 2:
            doc.polyline(points, stroke="#3182ce", stroke_width=1.5,
                         stroke_dasharray="6,3")

    doc.text(_PADDING, 18, f"{model.district_name or model.district_id}",
             font_size=13, font_weight="bold", fill="#1a202c")
    if values:
        _legend(doc, lo, hi, metric_label, width, height)
    return doc.render()


def _legend(doc: SvgDocument, lo: float, hi: float, label: str,
            width: float, height: float) -> None:
    y = height - _LEGEND_HEIGHT + 10
    steps = 24
    bar_width = 180.0
    step_width = bar_width / steps
    x0 = _PADDING
    for i in range(steps):
        value = lo + (hi - lo) * i / max(steps - 1, 1)
        doc.rect(x0 + i * step_width, y, step_width + 0.5, 10,
                 fill=color_scale(value, lo, hi), stroke="none")
    doc.text(x0, y + 24, f"{lo:,.0f}", font_size=9, fill="#4a5568")
    doc.text(x0 + bar_width, y + 24, f"{hi:,.0f}", text_anchor="end",
             font_size=9, fill="#4a5568")
    doc.text(x0 + bar_width + 10, y + 9, label, font_size=10,
             fill="#4a5568")
