"""District dashboard: one self-contained HTML report.

Composes the map, the district profile chart, the per-building
intensity bars and the awareness table into a single HTML document —
the end-user artifact the paper's "promote user awareness" purpose
points at, producible offline from one integrated model.
"""

from __future__ import annotations

import xml.sax.saxutils as _sax
from typing import Optional

from repro.core.integration import IntegratedModel
from repro.core.monitoring import ConsumptionProfiler, awareness_report
from repro.errors import QueryError
from repro.visualization.charts import bar_chart, line_chart
from repro.visualization.district_map import district_map

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
 body {{ font-family: sans-serif; margin: 24px; color: #1a202c; }}
 h1 {{ font-size: 20px; }} h2 {{ font-size: 15px; margin-top: 28px; }}
 table {{ border-collapse: collapse; font-size: 13px; }}
 th, td {{ border: 1px solid #cbd5e0; padding: 4px 10px;
           text-align: right; }}
 th {{ background: #edf2f7; }} td:first-child {{ text-align: left; }}
 .figure {{ margin: 12px 0; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p>{summary}</p>
{sections}
</body>
</html>
"""


def _table(report) -> str:
    rows = []
    for entry in report.ranked:
        rows.append(
            "<tr><td>{name}</td><td>{energy:,.1f}</td>"
            "<td>{area:,.0f}</td><td>{intensity:,.2f}</td>"
            "<td>{ratio:.2f}x</td><td>{peak:,.1f}</td></tr>".format(
                name=_sax.escape(
                    f"{entry.entity_id} {entry.name}".strip()
                ),
                energy=entry.energy_wh / 1e3,
                area=entry.floor_area_m2,
                intensity=entry.intensity_wh_per_m2,
                ratio=entry.vs_district_average,
                peak=entry.peak_watts / 1e3,
            )
        )
    return (
        "<table><tr><th>building</th><th>kWh</th><th>m&#178;</th>"
        "<th>Wh/m&#178;</th><th>vs avg</th><th>peak kW</th></tr>"
        + "".join(rows) + "</table>"
    )


def build_dashboard(model: IntegratedModel, bucket: float = 3600.0,
                    title: Optional[str] = None) -> str:
    """Render a complete district dashboard as an HTML string."""
    profiler = ConsumptionProfiler(model, bucket=bucket)
    report = awareness_report(model, bucket=bucket)
    if not report.buildings:
        raise QueryError("dashboard needs at least one building")
    title = title or (f"District energy dashboard — "
                      f"{model.district_name or model.district_id}")

    profile_series = {}
    district_profile = profiler.district_profile()
    if district_profile:
        profile_series["district"] = district_profile
    for entity in model.buildings:
        profile = profiler.building_profile(entity.entity_id)
        if profile:
            profile_series[entity.entity_id] = profile

    intensity = {
        b.entity_id: b.intensity_wh_per_m2
        for b in report.buildings if b.intensity_wh_per_m2 is not None
    }
    sections = []
    try:
        sections.append(
            '<h2>District map (energy intensity)</h2>'
            f'<div class="figure">'
            f'{district_map(model, metric=intensity)}</div>'
        )
    except QueryError:
        pass  # model without GIS geometry: skip the map
    if profile_series:
        sections.append(
            '<h2>Power profiles</h2><div class="figure">'
            + line_chart(profile_series, title="bucketed mean power",
                         unit="W")
            + "</div>"
        )
    if intensity:
        average = (sum(intensity.values()) / len(intensity))
        sections.append(
            '<h2>Energy intensity by building</h2><div class="figure">'
            + bar_chart(intensity, title="intensity over the window",
                        unit="Wh/m2", baseline=average)
            + "</div>"
        )
    sections.append("<h2>Awareness table</h2>" + _table(report))

    summary = (
        f"{len(model.buildings)} buildings, {model.device_count} devices; "
        f"{report.district_energy_wh / 1e3:,.1f} kWh over "
        f"{report.window_hours:.1f} h."
    )
    return _PAGE.format(title=_sax.escape(title),
                        summary=_sax.escape(summary),
                        sections="\n".join(sections))
