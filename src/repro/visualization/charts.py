"""Energy charts rendered as SVG.

Line charts for power profiles (with time axes in simulated hours) and
bar charts for per-building comparisons — the plots the paper's
"visualization of energy consumption trends" motivation calls for.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.common.simtime import isoformat
from repro.errors import QueryError
from repro.visualization.svg import LinearScale, SvgDocument, color_scale

_MARGIN_LEFT = 64.0
_MARGIN_BOTTOM = 36.0
_MARGIN_TOP = 28.0
_MARGIN_RIGHT = 16.0

_SERIES_COLORS = ("#2b6cb0", "#c05621", "#2f855a", "#6b46c1",
                  "#b83280", "#4a5568")


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: float = 720.0,
    height: float = 280.0,
    title: str = "",
    unit: str = "W",
) -> str:
    """Render named (t, value) series as a multi-line SVG chart."""
    populated = {name: list(samples) for name, samples in series.items()
                 if samples}
    if not populated:
        raise QueryError("line chart needs at least one non-empty series")
    doc = SvgDocument(width, height)
    all_t = [t for samples in populated.values() for t, _v in samples]
    all_v = [v for samples in populated.values() for _t, v in samples]
    x_scale = LinearScale((min(all_t), max(all_t)),
                          (_MARGIN_LEFT, width - _MARGIN_RIGHT))
    v_lo, v_hi = min(min(all_v), 0.0), max(all_v)
    y_scale = LinearScale((v_lo, v_hi),
                          (height - _MARGIN_BOTTOM, _MARGIN_TOP))

    # axes and gridlines
    for tick in y_scale.ticks(5):
        y = y_scale(tick)
        doc.line(_MARGIN_LEFT, y, width - _MARGIN_RIGHT, y,
                 stroke="#e2e8f0", stroke_width=1)
        doc.text(_MARGIN_LEFT - 6, y + 4, f"{tick:,.0f}",
                 text_anchor="end", font_size=10, fill="#4a5568")
    for tick in x_scale.ticks(6):
        x = x_scale(tick)
        doc.line(x, _MARGIN_TOP, x, height - _MARGIN_BOTTOM,
                 stroke="#edf2f7", stroke_width=1)
        stamp = isoformat(tick)[5:16].replace("T", " ")
        doc.text(x, height - _MARGIN_BOTTOM + 14, stamp,
                 text_anchor="middle", font_size=9, fill="#4a5568")
    doc.line(_MARGIN_LEFT, _MARGIN_TOP, _MARGIN_LEFT,
             height - _MARGIN_BOTTOM, stroke="#a0aec0", stroke_width=1)
    doc.line(_MARGIN_LEFT, height - _MARGIN_BOTTOM,
             width - _MARGIN_RIGHT, height - _MARGIN_BOTTOM,
             stroke="#a0aec0", stroke_width=1)

    # series
    for index, (name, samples) in enumerate(sorted(populated.items())):
        color = _SERIES_COLORS[index % len(_SERIES_COLORS)]
        points = [(x_scale(t), y_scale(v)) for t, v in samples]
        if len(points) >= 2:
            doc.polyline(points, stroke=color, stroke_width=1.5)
        else:
            doc.circle(points[0][0], points[0][1], 2.5, fill=color)
        doc.text(width - _MARGIN_RIGHT - 4,
                 _MARGIN_TOP + 14 * (index + 1) - 4, name,
                 text_anchor="end", font_size=10, fill=color)

    if title:
        doc.text(_MARGIN_LEFT, 16, title, font_size=13,
                 font_weight="bold", fill="#1a202c")
    doc.text(8, _MARGIN_TOP - 8, unit, font_size=10, fill="#4a5568")
    return doc.render()


def bar_chart(
    values: Dict[str, float],
    width: float = 720.0,
    height: float = 280.0,
    title: str = "",
    unit: str = "",
    heat_colors: bool = True,
    baseline: Optional[float] = None,
) -> str:
    """Render labelled values as a vertical bar chart."""
    if not values:
        raise QueryError("bar chart needs at least one value")
    doc = SvgDocument(width, height)
    labels = list(values)
    numbers = [values[label] for label in labels]
    v_hi = max(max(numbers), 0.0)
    v_lo = min(min(numbers), 0.0)
    y_scale = LinearScale((v_lo, v_hi or 1.0),
                          (height - _MARGIN_BOTTOM, _MARGIN_TOP))
    plot_width = width - _MARGIN_LEFT - _MARGIN_RIGHT
    slot = plot_width / len(labels)
    bar_width = slot * 0.7

    for tick in y_scale.ticks(5):
        y = y_scale(tick)
        doc.line(_MARGIN_LEFT, y, width - _MARGIN_RIGHT, y,
                 stroke="#e2e8f0", stroke_width=1)
        doc.text(_MARGIN_LEFT - 6, y + 4, f"{tick:,.0f}",
                 text_anchor="end", font_size=10, fill="#4a5568")

    zero_y = y_scale(0.0)
    for index, label in enumerate(labels):
        value = values[label]
        x = _MARGIN_LEFT + index * slot + (slot - bar_width) / 2.0
        top = min(y_scale(value), zero_y)
        bar_height = abs(y_scale(value) - zero_y)
        color = (color_scale(value, v_lo, v_hi) if heat_colors
                 else _SERIES_COLORS[0])
        doc.rect(x, top, bar_width, max(bar_height, 0.5), fill=color)
        doc.text(x + bar_width / 2.0, height - _MARGIN_BOTTOM + 14,
                 label, text_anchor="middle", font_size=9,
                 fill="#4a5568")
    if baseline is not None:
        y = y_scale(baseline)
        doc.line(_MARGIN_LEFT, y, width - _MARGIN_RIGHT, y,
                 stroke="#e53e3e", stroke_width=1,
                 stroke_dasharray="4,3")
    if title:
        doc.text(_MARGIN_LEFT, 16, title, font_size=13,
                 font_weight="bold", fill="#1a202c")
    if unit:
        doc.text(8, _MARGIN_TOP - 8, unit, font_size=10, fill="#4a5568")
    return doc.render()
