"""Minimal SVG document builder (no dependencies).

The visualization layer renders district maps and energy charts as SVG
text, so dashboards and reports can be produced without any plotting
library.  :class:`SvgDocument` keeps a flat element list and serialises
to a standalone ``<svg>`` document; helpers build the handful of shapes
the charts and maps need.
"""

from __future__ import annotations

import xml.sax.saxutils as _sax
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError

Point = Tuple[float, float]


def _fmt(value: float) -> str:
    text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


def _attrs(attributes: Dict[str, object]) -> str:
    parts = []
    for key, value in attributes.items():
        if value is None:
            continue
        name = key.rstrip("_").replace("_", "-")
        parts.append(f'{name}={_sax.quoteattr(str(value))}')
    return " ".join(parts)


class SvgDocument:
    """An SVG document with a fixed viewport."""

    def __init__(self, width: float, height: float,
                 background: Optional[str] = "#ffffff"):
        if width <= 0 or height <= 0:
            raise QueryError("SVG viewport must be positive")
        self.width = width
        self.height = height
        self._elements: List[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    def __len__(self) -> int:
        return len(self._elements)

    def raw(self, element: str) -> None:
        """Append a pre-rendered element string."""
        self._elements.append(element)

    def rect(self, x: float, y: float, width: float, height: float,
             **style: object) -> None:
        self.raw(f'<rect x="{_fmt(x)}" y="{_fmt(y)}" '
                 f'width="{_fmt(width)}" height="{_fmt(height)}" '
                 f'{_attrs(style)} />')

    def circle(self, cx: float, cy: float, r: float, **style: object
               ) -> None:
        self.raw(f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" '
                 f'r="{_fmt(r)}" {_attrs(style)} />')

    def line(self, x1: float, y1: float, x2: float, y2: float,
             **style: object) -> None:
        self.raw(f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" '
                 f'x2="{_fmt(x2)}" y2="{_fmt(y2)}" {_attrs(style)} />')

    def polyline(self, points: Sequence[Point], **style: object) -> None:
        if len(points) < 2:
            raise QueryError("polyline needs two or more points")
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self.raw(f'<polyline points="{coords}" fill="none" '
                 f'{_attrs(style)} />')

    def polygon(self, points: Sequence[Point], **style: object) -> None:
        if len(points) < 3:
            raise QueryError("polygon needs three or more points")
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self.raw(f'<polygon points="{coords}" {_attrs(style)} />')

    def text(self, x: float, y: float, content: str,
             **style: object) -> None:
        body = _sax.escape(content)
        self.raw(f'<text x="{_fmt(x)}" y="{_fmt(y)}" '
                 f'{_attrs(style)}>{body}</text>')

    def render(self) -> str:
        """Serialise to a standalone SVG document."""
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}" '
            f'font-family="sans-serif">'
        )
        return header + "".join(self._elements) + "</svg>"


def color_scale(value: float, lo: float, hi: float) -> str:
    """Map a value onto a green-to-red heat colour (hex)."""
    if hi <= lo:
        fraction = 0.0
    else:
        fraction = min(max((value - lo) / (hi - lo), 0.0), 1.0)
    red = int(40 + 215 * fraction)
    green = int(180 - 120 * fraction)
    blue = 60
    return f"#{red:02x}{green:02x}{blue:02x}"


class LinearScale:
    """Maps a data interval onto a pixel interval (possibly flipped)."""

    def __init__(self, domain: Tuple[float, float],
                 pixels: Tuple[float, float]):
        d0, d1 = domain
        if d1 == d0:
            d1 = d0 + 1.0  # degenerate domain: avoid division by zero
        self.d0, self.d1 = d0, d1
        self.p0, self.p1 = pixels

    def __call__(self, value: float) -> float:
        fraction = (value - self.d0) / (self.d1 - self.d0)
        return self.p0 + fraction * (self.p1 - self.p0)

    def ticks(self, count: int = 5) -> List[float]:
        """Evenly spaced domain values for axis labelling."""
        if count < 2:
            raise QueryError("need at least two ticks")
        step = (self.d1 - self.d0) / (count - 1)
        return [self.d0 + i * step for i in range(count)]
