"""Visualization of energy behaviours: SVG charts, district maps, HTML
dashboards — the paper's "visualization and simulation of energy
consumption trends" purpose, with no plotting dependencies."""

from repro.visualization.charts import bar_chart, line_chart
from repro.visualization.dashboard import build_dashboard
from repro.visualization.district_map import district_map
from repro.visualization.svg import LinearScale, SvgDocument, color_scale

__all__ = [
    "LinearScale",
    "SvgDocument",
    "bar_chart",
    "build_dashboard",
    "color_scale",
    "district_map",
    "line_chart",
]
