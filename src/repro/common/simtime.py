"""Simulated time.

All components share a single :class:`SimClock`.  Simulated time is a
float number of seconds since the scenario epoch (2015-01-01T00:00:00Z,
the year the paper was published).  Helpers convert between simulated
seconds, calendar fields (hour-of-day, day-of-week) used by the synthetic
load profiles, and ISO-8601 strings used by the common data format.
"""

from __future__ import annotations

import datetime as _dt
from typing import Optional

from repro.errors import ConfigurationError

#: scenario epoch as a timezone-aware datetime
EPOCH = _dt.datetime(2015, 1, 1, tzinfo=_dt.timezone.utc)

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


class SimClock:
    """Monotonic simulated clock, advanced only by the event scheduler."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ConfigurationError("clock cannot start before the epoch")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since the epoch."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to *t*; moving backwards is an error."""
        if t < self._now:
            raise ConfigurationError(
                f"clock cannot move backwards ({t} < {self._now})"
            )
        self._now = float(t)


def to_datetime(sim_seconds: float) -> _dt.datetime:
    """Convert simulated seconds to a timezone-aware datetime."""
    return EPOCH + _dt.timedelta(seconds=sim_seconds)


def from_datetime(when: _dt.datetime) -> float:
    """Convert a datetime (UTC assumed if naive) to simulated seconds."""
    if when.tzinfo is None:
        when = when.replace(tzinfo=_dt.timezone.utc)
    return (when - EPOCH).total_seconds()


def isoformat(sim_seconds: float) -> str:
    """Format simulated seconds as an ISO-8601 timestamp string."""
    return to_datetime(sim_seconds).isoformat().replace("+00:00", "Z")


def parse_iso(text: str) -> float:
    """Parse an ISO-8601 timestamp back into simulated seconds."""
    cleaned = text.replace("Z", "+00:00")
    return from_datetime(_dt.datetime.fromisoformat(cleaned))


def hour_of_day(sim_seconds: float) -> float:
    """Fractional hour of day (0..24) at *sim_seconds*."""
    return (sim_seconds % SECONDS_PER_DAY) / SECONDS_PER_HOUR


def day_of_week(sim_seconds: float) -> int:
    """Day of week (0 = Monday .. 6 = Sunday) at *sim_seconds*."""
    return to_datetime(sim_seconds).weekday()


def is_weekend(sim_seconds: float) -> bool:
    """True if *sim_seconds* falls on Saturday or Sunday."""
    return day_of_week(sim_seconds) >= 5


def day_of_year(sim_seconds: float) -> int:
    """Day of year (1-based) at *sim_seconds*."""
    return to_datetime(sim_seconds).timetuple().tm_yday


def bucket_start(sim_seconds: float, bucket: float) -> float:
    """Start time of the aggregation bucket containing *sim_seconds*."""
    if bucket <= 0:
        raise ConfigurationError("bucket width must be positive")
    return (sim_seconds // bucket) * bucket


def duration(
    days: float = 0.0,
    hours: float = 0.0,
    minutes: float = 0.0,
    seconds: float = 0.0,
) -> float:
    """Build a duration in simulated seconds from calendar components."""
    return (
        days * SECONDS_PER_DAY
        + hours * SECONDS_PER_HOUR
        + minutes * SECONDS_PER_MINUTE
        + seconds
    )


def clamp_window(
    start: Optional[float], end: Optional[float], horizon: float
) -> tuple:
    """Normalise an optional [start, end) query window against a horizon.

    ``None`` bounds become 0 / *horizon*; a reversed window raises.
    """
    lo = 0.0 if start is None else float(start)
    hi = float(horizon) if end is None else float(end)
    if hi < lo:
        raise ConfigurationError(f"reversed time window [{lo}, {hi})")
    return lo, hi
