"""The Common Data Format (CDF).

The paper's central interoperability device: every proxy translates its
native source (protocol frames, BIM/SIM/GIS databases) into one shared,
open data format before anything crosses the infrastructure.  This
module defines the typed records of that format:

* :class:`Measurement` — one sensor sample, value in canonical units;
* :class:`DeviceDescription` — what a device is, where it sits, what it
  can sense and actuate;
* :class:`EntityModel` — the translated model of a building, network or
  district exported from a BIM / SIM / GIS source;
* :class:`ActuationCommand` / :class:`ActuationResult` — remote control.

Records are plain frozen dataclasses with ``to_dict``/``from_dict``;
the JSON and XML wire encodings live in
:mod:`repro.common.serialization`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import SerializationError
from repro.common.units import CANONICAL_UNITS, canonical_unit

#: entity types an EntityModel may describe
ENTITY_TYPES = ("district", "building", "network", "space", "segment")

#: source kinds a model may originate from
SOURCE_KINDS = ("bim", "sim", "gis", "measurement")


def _require(mapping: Mapping[str, Any], key: str, doc: str) -> Any:
    try:
        return mapping[key]
    except KeyError:
        raise SerializationError(f"{doc} record missing field {key!r}") from None


@dataclass(frozen=True)
class Measurement:
    """One sensor sample in canonical units.

    ``value`` is always expressed in ``canonical_unit(quantity)``; the
    proxy's dedicated layer performs the unit conversion when decoding
    the native protocol frame.
    """

    device_id: str
    entity_id: str
    quantity: str
    value: float
    timestamp: float
    source: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        canonical_unit(self.quantity)  # validates the quantity name

    @property
    def unit(self) -> str:
        """Canonical unit symbol for this measurement's quantity."""
        return CANONICAL_UNITS[self.quantity]

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dict (CDF document body)."""
        return {
            "record": "measurement",
            "device_id": self.device_id,
            "entity_id": self.entity_id,
            "quantity": self.quantity,
            "value": self.value,
            "unit": self.unit,
            "timestamp": self.timestamp,
            "source": self.source,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Measurement":
        """Rebuild a measurement from its dict form."""
        return cls(
            device_id=_require(data, "device_id", "measurement"),
            entity_id=_require(data, "entity_id", "measurement"),
            quantity=_require(data, "quantity", "measurement"),
            value=float(_require(data, "value", "measurement")),
            timestamp=float(_require(data, "timestamp", "measurement")),
            source=data.get("source", ""),
            metadata=dict(data.get("metadata", {})),
        )


@dataclass(frozen=True)
class SensorCapability:
    """One quantity a device can sense, with its native sampling period."""

    quantity: str
    sample_period: float

    def to_dict(self) -> Dict[str, Any]:
        return {"quantity": self.quantity, "sample_period": self.sample_period}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SensorCapability":
        return cls(
            quantity=_require(data, "quantity", "sensor-capability"),
            sample_period=float(_require(data, "sample_period", "sensor-capability")),
        )


@dataclass(frozen=True)
class ActuatorCapability:
    """One command a device accepts (e.g. ``switch``, ``setpoint``)."""

    command: str
    value_range: Optional[Tuple[float, float]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "command": self.command,
            "value_range": list(self.value_range) if self.value_range else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ActuatorCapability":
        rng = data.get("value_range")
        return cls(
            command=_require(data, "command", "actuator-capability"),
            value_range=tuple(rng) if rng else None,
        )


@dataclass(frozen=True)
class DeviceDescription:
    """Abstract, protocol-independent description of a field device."""

    device_id: str
    protocol: str
    entity_id: str
    sensors: Tuple[SensorCapability, ...] = ()
    actuators: Tuple[ActuatorCapability, ...] = ()
    vendor: str = ""
    location: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def quantities(self) -> Tuple[str, ...]:
        """Quantities this device senses."""
        return tuple(s.quantity for s in self.sensors)

    @property
    def is_actuator(self) -> bool:
        """True if the device accepts at least one command."""
        return bool(self.actuators)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "record": "device",
            "device_id": self.device_id,
            "protocol": self.protocol,
            "entity_id": self.entity_id,
            "sensors": [s.to_dict() for s in self.sensors],
            "actuators": [a.to_dict() for a in self.actuators],
            "vendor": self.vendor,
            "location": self.location,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeviceDescription":
        return cls(
            device_id=_require(data, "device_id", "device"),
            protocol=_require(data, "protocol", "device"),
            entity_id=_require(data, "entity_id", "device"),
            sensors=tuple(
                SensorCapability.from_dict(s) for s in data.get("sensors", [])
            ),
            actuators=tuple(
                ActuatorCapability.from_dict(a) for a in data.get("actuators", [])
            ),
            vendor=data.get("vendor", ""),
            location=data.get("location", ""),
            metadata=dict(data.get("metadata", {})),
        )


@dataclass(frozen=True)
class Component:
    """A sub-element of an entity model (space, storey, pipe segment...)."""

    component_id: str
    component_type: str
    name: str = ""
    properties: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "component_id": self.component_id,
            "component_type": self.component_type,
            "name": self.name,
            "properties": dict(self.properties),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Component":
        return cls(
            component_id=_require(data, "component_id", "component"),
            component_type=_require(data, "component_type", "component"),
            name=data.get("name", ""),
            properties=dict(data.get("properties", {})),
        )


@dataclass(frozen=True)
class Relation:
    """A typed edge between two components or entities (``feeds``, ...)."""

    relation: str
    subject: str
    object: str
    properties: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "relation": self.relation,
            "subject": self.subject,
            "object": self.object,
            "properties": dict(self.properties),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Relation":
        return cls(
            relation=_require(data, "relation", "relation"),
            subject=_require(data, "subject", "relation"),
            object=_require(data, "object", "relation"),
            properties=dict(data.get("properties", {})),
        )


@dataclass(frozen=True)
class EntityModel:
    """Common-format model of a district entity, translated from a source.

    ``source_kind`` records which native family produced it (bim / sim /
    gis); clients integrating several models for the same entity use it
    to attribute properties and detect conflicts.
    """

    entity_id: str
    entity_type: str
    source_kind: str
    name: str = ""
    properties: Dict[str, Any] = field(default_factory=dict)
    geometry: Optional[Dict[str, Any]] = None
    components: Tuple[Component, ...] = ()
    relations: Tuple[Relation, ...] = ()

    def __post_init__(self) -> None:
        if self.entity_type not in ENTITY_TYPES:
            raise SerializationError(
                f"unknown entity type {self.entity_type!r}"
            )
        if self.source_kind not in SOURCE_KINDS:
            raise SerializationError(
                f"unknown source kind {self.source_kind!r}"
            )

    def component(self, component_id: str) -> Component:
        """Look up a component by id; raises ``KeyError`` if absent."""
        for comp in self.components:
            if comp.component_id == component_id:
                return comp
        raise KeyError(component_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "record": "entity_model",
            "entity_id": self.entity_id,
            "entity_type": self.entity_type,
            "source_kind": self.source_kind,
            "name": self.name,
            "properties": dict(self.properties),
            "geometry": dict(self.geometry) if self.geometry else None,
            "components": [c.to_dict() for c in self.components],
            "relations": [r.to_dict() for r in self.relations],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EntityModel":
        geometry = data.get("geometry")
        return cls(
            entity_id=_require(data, "entity_id", "entity_model"),
            entity_type=_require(data, "entity_type", "entity_model"),
            source_kind=_require(data, "source_kind", "entity_model"),
            name=data.get("name", ""),
            properties=dict(data.get("properties", {})),
            geometry=dict(geometry) if geometry else None,
            components=tuple(
                Component.from_dict(c) for c in data.get("components", [])
            ),
            relations=tuple(
                Relation.from_dict(r) for r in data.get("relations", [])
            ),
        )


@dataclass(frozen=True)
class ActuationCommand:
    """A remote-control request for an actuator device."""

    device_id: str
    command: str
    value: Optional[float] = None
    issued_at: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "record": "actuation_command",
            "device_id": self.device_id,
            "command": self.command,
            "value": self.value,
            "issued_at": self.issued_at,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ActuationCommand":
        value = data.get("value")
        return cls(
            device_id=_require(data, "device_id", "actuation_command"),
            command=_require(data, "command", "actuation_command"),
            value=None if value is None else float(value),
            issued_at=float(data.get("issued_at", 0.0)),
        )


@dataclass(frozen=True)
class ActuationResult:
    """Outcome of an actuation command, reported back through the proxy."""

    device_id: str
    command: str
    accepted: bool
    detail: str = ""
    completed_at: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "record": "actuation_result",
            "device_id": self.device_id,
            "command": self.command,
            "accepted": self.accepted,
            "detail": self.detail,
            "completed_at": self.completed_at,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ActuationResult":
        return cls(
            device_id=_require(data, "device_id", "actuation_result"),
            command=_require(data, "command", "actuation_result"),
            accepted=bool(_require(data, "accepted", "actuation_result")),
            detail=data.get("detail", ""),
            completed_at=float(data.get("completed_at", 0.0)),
        )


#: record tag -> class, used by the serialization layer
RECORD_TYPES = {
    "measurement": Measurement,
    "device": DeviceDescription,
    "entity_model": EntityModel,
    "actuation_command": ActuationCommand,
    "actuation_result": ActuationResult,
}


def record_from_dict(data: Mapping[str, Any]) -> Any:
    """Dispatch a dict to the right CDF record class via its tag."""
    tag = data.get("record")
    try:
        cls = RECORD_TYPES[tag]
    except KeyError:
        raise SerializationError(f"unknown CDF record tag {tag!r}") from None
    return cls.from_dict(data)


def records_from_dicts(items: List[Mapping[str, Any]]) -> List[Any]:
    """Decode a list of dicts into CDF records."""
    return [record_from_dict(item) for item in items]
