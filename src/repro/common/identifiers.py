"""Entity identifiers and service URIs.

Two naming schemes hold the infrastructure together:

* **Entity ids** — hierarchical, dot-free string ids minted by the
  district generator (``dst-torino``, ``bld-0007``, ``net-heat-01``,
  ``dev-00a3``).  :class:`EntityId` validates and classifies them.

* **Service URIs** — ``svc://<host>/<path>`` strings naming a web-service
  endpoint on the simulated network.  The master node stores these in the
  ontology and returns them to clients (the paper's "URIs of the proxies'
  Web Services").  :class:`ServiceUri` parses and formats them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ConfigurationError, QueryError

_SCHEME = "svc"
_URI_RE = re.compile(r"^svc://(?P<host>[A-Za-z0-9_.\-]+)(?P<path>/[^\s?#]*)?$")
_ENTITY_RE = re.compile(r"^(?P<kind>[a-z]+)-(?P<rest>[A-Za-z0-9\-]+)$")

#: entity-id prefix -> human readable kind
ENTITY_KINDS = {
    "dst": "district",
    "bld": "building",
    "net": "network",
    "dev": "device",
    "src": "datasource",
}


@dataclass(frozen=True)
class EntityId:
    """A validated hierarchical entity identifier such as ``bld-0007``."""

    value: str

    def __post_init__(self) -> None:
        match = _ENTITY_RE.match(self.value)
        if match is None or match.group("kind") not in ENTITY_KINDS:
            raise QueryError(f"malformed entity id: {self.value!r}")

    @property
    def kind(self) -> str:
        """Return the entity kind (``district``, ``building``, ...)."""
        return ENTITY_KINDS[self.value.split("-", 1)[0]]

    def __str__(self) -> str:
        return self.value


def entity_kind(entity_id: str) -> str:
    """Classify a raw entity-id string; raises :class:`QueryError` if bad."""
    return EntityId(entity_id).kind


def make_entity_id(kind_prefix: str, index: int, width: int = 4) -> str:
    """Mint an entity id like ``bld-0007`` from a prefix and an index."""
    if kind_prefix not in ENTITY_KINDS:
        raise ConfigurationError(f"unknown entity prefix: {kind_prefix!r}")
    return f"{kind_prefix}-{index:0{width}d}"


@dataclass(frozen=True)
class ServiceUri:
    """A parsed ``svc://host/path`` web-service URI."""

    host: str
    path: str = "/"

    @classmethod
    def parse(cls, text: str) -> "ServiceUri":
        """Parse a URI string, raising :class:`QueryError` on bad syntax."""
        match = _URI_RE.match(text)
        if match is None:
            raise QueryError(f"malformed service URI: {text!r}")
        return cls(host=match.group("host"), path=match.group("path") or "/")

    def join(self, suffix: str) -> "ServiceUri":
        """Return a URI with *suffix* appended to this URI's path."""
        base = self.path.rstrip("/")
        extra = suffix if suffix.startswith("/") else "/" + suffix
        return ServiceUri(self.host, base + extra)

    def __str__(self) -> str:
        return f"{_SCHEME}://{self.host}{self.path}"


def service_uri(host: str, path: str = "/") -> str:
    """Format a ``svc://`` URI string from host and path components."""
    if not path.startswith("/"):
        path = "/" + path
    return str(ServiceUri(host, path))
