"""JSON and XML wire encodings for Common Data Format records.

The paper requires each proxy to expose data "translated ... to an open
standard, such as JSON or XML".  Both encodings are implemented and
round-trip exactly:

* JSON — the default wire format; documents are either a single record
  object or a list of records.
* XML — element tree with ``type`` attributes preserving scalar types,
  so ``from_xml(to_xml(doc))`` reproduces the original records.
"""

from __future__ import annotations

import base64
import json
import re
import xml.etree.ElementTree as ET
from typing import Any, List, Sequence, Union

from repro.errors import SerializationError
from repro.common import cdf

CdfRecord = Any  # any of the cdf record dataclasses
Document = Union[CdfRecord, Sequence[CdfRecord]]

JSON_FORMAT = "json"
XML_FORMAT = "xml"
FORMATS = (JSON_FORMAT, XML_FORMAT)


def _record_to_dict(record: CdfRecord) -> dict:
    if not hasattr(record, "to_dict"):
        raise SerializationError(
            f"object of type {type(record).__name__} is not a CDF record"
        )
    return record.to_dict()


# --------------------------------------------------------------------------
# JSON


def to_json(document: Document, indent: int = 0) -> str:
    """Encode one record or a sequence of records as a JSON document."""
    if isinstance(document, (list, tuple)):
        body: Any = [_record_to_dict(r) for r in document]
    else:
        body = _record_to_dict(document)
    return json.dumps(body, indent=indent or None, sort_keys=True)


def from_json(text: str) -> Document:
    """Decode a JSON document into a record or a list of records."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON document: {exc}") from exc
    if isinstance(data, list):
        return cdf.records_from_dicts(data)
    if isinstance(data, dict):
        return cdf.record_from_dict(data)
    raise SerializationError("JSON document must be an object or array")


# --------------------------------------------------------------------------
# XML
#
# Scalars carry a type attribute so that decoding restores the exact
# Python value; dicts become child elements keyed by an "item" wrapper
# when the key is not a valid XML name.


# characters XML 1.0 cannot carry even escaped (control chars except
# tab/newline, and surrogates) plus carriage-return, which parsers
# normalize to newline on read (XML 1.0 §2.11) and so would not
# round-trip; such strings fall back to a base64 encoding with their
# own type tag
_XML_UNSAFE = re.compile(
    "[\x00-\x08\x0b-\x1f\ud800-\udfff]"
)


def _scalar_to_xml(parent: ET.Element, tag: str, value: Any) -> None:
    elem = ET.SubElement(parent, "field", name=tag)
    if value is None:
        elem.set("type", "null")
    elif isinstance(value, bool):
        elem.set("type", "bool")
        elem.text = "true" if value else "false"
    elif isinstance(value, int):
        elem.set("type", "int")
        elem.text = str(value)
    elif isinstance(value, float):
        elem.set("type", "float")
        elem.text = repr(value)
    elif isinstance(value, str):
        if _XML_UNSAFE.search(value):
            elem.set("type", "str64")
            elem.text = base64.b64encode(
                value.encode("utf-8", "surrogatepass")
            ).decode("ascii")
        else:
            elem.set("type", "str")
            elem.text = value
    elif isinstance(value, dict):
        elem.set("type", "dict")
        for key, sub in value.items():
            _scalar_to_xml(elem, str(key), sub)
    elif isinstance(value, (list, tuple)):
        elem.set("type", "list")
        for sub in value:
            _scalar_to_xml(elem, "item", sub)
    else:
        raise SerializationError(
            f"value of type {type(value).__name__} not encodable as XML"
        )


def _scalar_from_xml(elem: ET.Element) -> Any:
    kind = elem.get("type")
    text = elem.text or ""
    if kind == "null":
        return None
    if kind == "bool":
        return text == "true"
    if kind == "int":
        return int(text)
    if kind == "float":
        return float(text)
    if kind == "str":
        return text
    if kind == "str64":
        return base64.b64decode(text).decode("utf-8", "surrogatepass")
    if kind == "dict":
        return {
            child.get("name"): _scalar_from_xml(child) for child in elem
        }
    if kind == "list":
        return [_scalar_from_xml(child) for child in elem]
    raise SerializationError(f"unknown XML field type {kind!r}")


def to_xml(document: Document) -> str:
    """Encode one record or a sequence of records as an XML document."""
    root = ET.Element("cdf")
    records = (
        document if isinstance(document, (list, tuple)) else [document]
    )
    root.set("plural", "true" if isinstance(document, (list, tuple)) else "false")
    for record in records:
        data = _record_to_dict(record)
        rec_elem = ET.SubElement(root, "rec")
        for key, value in data.items():
            _scalar_to_xml(rec_elem, key, value)
    return ET.tostring(root, encoding="unicode")


def from_xml(text: str) -> Document:
    """Decode an XML document into a record or a list of records."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SerializationError(f"invalid XML document: {exc}") from exc
    if root.tag != "cdf":
        raise SerializationError(f"unexpected XML root element {root.tag!r}")
    records: List[CdfRecord] = []
    for rec_elem in root.findall("rec"):
        data = {
            child.get("name"): _scalar_from_xml(child) for child in rec_elem
        }
        records.append(cdf.record_from_dict(data))
    if root.get("plural") == "true":
        return records
    if len(records) != 1:
        raise SerializationError("singular XML document with != 1 record")
    return records[0]


# --------------------------------------------------------------------------
# format-agnostic entry points


def encode(document: Document, fmt: str = JSON_FORMAT) -> str:
    """Encode a document in the requested open format (json or xml)."""
    if fmt == JSON_FORMAT:
        return to_json(document)
    if fmt == XML_FORMAT:
        return to_xml(document)
    raise SerializationError(f"unknown encoding format {fmt!r}")


def decode(text: str, fmt: str = JSON_FORMAT) -> Document:
    """Decode a document from the requested open format (json or xml)."""
    if fmt == JSON_FORMAT:
        return from_json(text)
    if fmt == XML_FORMAT:
        return from_xml(text)
    raise SerializationError(f"unknown encoding format {fmt!r}")
