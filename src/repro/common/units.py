"""Physical quantities and unit conversion for energy data.

Heterogeneous sources report the same physical quantity in different
units (a ZigBee meter in deciwatts, an EnOcean thermostat in scaled
counts, a BIM export in kWh/m2...).  The common data format normalises
every measurement to a *canonical unit* per quantity; this module defines
the quantities, the canonical units, and the conversion table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import UnitError

#: quantity name -> canonical unit symbol
CANONICAL_UNITS: Dict[str, str] = {
    "power": "W",
    "energy": "Wh",
    "temperature": "degC",
    "humidity": "%RH",
    "illuminance": "lx",
    "voltage": "V",
    "current": "A",
    "flow_rate": "m3/h",
    "pressure": "kPa",
    "occupancy": "count",
    "state": "bool",
    "setpoint": "degC",
    "co2": "ppm",
}

_Linear = Tuple[float, float]  # scale, offset: canonical = scale * x + offset

#: (quantity, unit) -> linear conversion to the canonical unit
_CONVERSIONS: Dict[Tuple[str, str], _Linear] = {
    ("power", "W"): (1.0, 0.0),
    ("power", "dW"): (0.1, 0.0),
    ("power", "kW"): (1000.0, 0.0),
    ("power", "MW"): (1e6, 0.0),
    ("energy", "Wh"): (1.0, 0.0),
    ("energy", "kWh"): (1000.0, 0.0),
    ("energy", "MWh"): (1e6, 0.0),
    ("energy", "J"): (1.0 / 3600.0, 0.0),
    ("energy", "MJ"): (1e6 / 3600.0, 0.0),
    ("temperature", "degC"): (1.0, 0.0),
    ("temperature", "ddegC"): (0.1, 0.0),
    ("temperature", "degF"): (5.0 / 9.0, -160.0 / 9.0),
    ("temperature", "K"): (1.0, -273.15),
    ("humidity", "%RH"): (1.0, 0.0),
    ("illuminance", "lx"): (1.0, 0.0),
    ("voltage", "V"): (1.0, 0.0),
    ("voltage", "mV"): (0.001, 0.0),
    ("current", "A"): (1.0, 0.0),
    ("current", "mA"): (0.001, 0.0),
    ("flow_rate", "m3/h"): (1.0, 0.0),
    ("flow_rate", "l/s"): (3.6, 0.0),
    ("pressure", "kPa"): (1.0, 0.0),
    ("pressure", "bar"): (100.0, 0.0),
    ("pressure", "Pa"): (0.001, 0.0),
    ("occupancy", "count"): (1.0, 0.0),
    ("state", "bool"): (1.0, 0.0),
    ("setpoint", "degC"): (1.0, 0.0),
    ("co2", "ppm"): (1.0, 0.0),
}


def canonical_unit(quantity: str) -> str:
    """Return the canonical unit symbol for *quantity*."""
    try:
        return CANONICAL_UNITS[quantity]
    except KeyError:
        raise UnitError(f"unknown quantity: {quantity!r}") from None


def known_quantities() -> Tuple[str, ...]:
    """Return the tuple of quantity names the framework understands."""
    return tuple(CANONICAL_UNITS)


def convert(value: float, quantity: str, unit: str) -> float:
    """Convert *value* expressed in *unit* to the canonical unit.

    Raises :class:`UnitError` if the quantity or the (quantity, unit)
    pair is unknown.
    """
    if quantity not in CANONICAL_UNITS:
        raise UnitError(f"unknown quantity: {quantity!r}")
    try:
        scale, offset = _CONVERSIONS[(quantity, unit)]
    except KeyError:
        raise UnitError(
            f"no conversion from {unit!r} to canonical for {quantity!r}"
        ) from None
    return scale * value + offset


def register_conversion(
    quantity: str, unit: str, scale: float, offset: float = 0.0
) -> None:
    """Register a linear conversion ``canonical = scale * x + offset``.

    Extension hook: device vendors can add their native units without
    patching the table.  Re-registering an existing pair overwrites it.
    """
    if quantity not in CANONICAL_UNITS:
        raise UnitError(f"unknown quantity: {quantity!r}")
    _CONVERSIONS[(quantity, unit)] = (float(scale), float(offset))


@dataclass(frozen=True)
class Quantity:
    """A value tagged with its physical quantity, in canonical units."""

    quantity: str
    value: float

    def __post_init__(self) -> None:
        if self.quantity not in CANONICAL_UNITS:
            raise UnitError(f"unknown quantity: {self.quantity!r}")

    @property
    def unit(self) -> str:
        """Canonical unit symbol of this quantity."""
        return CANONICAL_UNITS[self.quantity]

    @classmethod
    def from_unit(cls, quantity: str, value: float, unit: str) -> "Quantity":
        """Build a canonical :class:`Quantity` from a native-unit value."""
        return cls(quantity, convert(value, quantity, unit))

    def __add__(self, other: "Quantity") -> "Quantity":
        if not isinstance(other, Quantity):
            return NotImplemented
        if other.quantity != self.quantity:
            raise UnitError(
                f"cannot add {other.quantity} to {self.quantity}"
            )
        return Quantity(self.quantity, self.value + other.value)

    def scaled(self, factor: float) -> "Quantity":
        """Return this quantity multiplied by a dimensionless factor."""
        return Quantity(self.quantity, self.value * factor)


def integrate_power_to_energy(
    power_watts: Callable[[float], float], t0: float, t1: float, step: float
) -> float:
    """Integrate a power function (W) over [t0, t1] seconds into Wh.

    Trapezoidal rule with fixed *step*; used by synthetic meters that
    accumulate energy from an instantaneous-power profile.
    """
    if t1 < t0:
        raise UnitError("integration interval is reversed")
    if step <= 0:
        raise UnitError("integration step must be positive")
    total = 0.0
    t = t0
    prev = power_watts(t0)
    while t < t1:
        t_next = min(t + step, t1)
        cur = power_watts(t_next)
        total += 0.5 * (prev + cur) * (t_next - t)
        prev = cur
        t = t_next
    return total / 3600.0
