"""Line-protocol batch frames for the high-throughput ingest path.

Device proxies batch measurement samples into *frames* — one pub/sub
envelope carrying many samples — instead of publishing one envelope per
sample.  Each sample inside a frame is encoded as a single text line in
an InfluxDB-line-protocol-inspired grammar::

    <quantity>,device=<id>,entity=<id>[,source=<s>][,protocol=<p>] \
value=<float>[,seq=<int>] <timestamp>

i.e. a *measurement name* (the CDF quantity), a comma-separated tag
set, a field set, and the sample timestamp in simulated seconds.  Tag
values escape ``\\``, `` ``, ``,`` and ``=`` with a backslash so device
ids containing delimiters round-trip.

The frame itself is a plain dict (the pub/sub payload)::

    {"record": "measurement_batch", "count": N, "lines": [<line>, ...]}

The full wire contract — flush thresholds, topic layout, idempotency
keys, how frames interact with the WAL — is documented in
``docs/storage.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.common.cdf import Measurement
from repro.errors import SerializationError

#: payload tag marking a batch frame envelope
BATCH_RECORD = "measurement_batch"

_ESCAPE = str.maketrans({
    "\\": "\\\\",
    ",": "\\,",
    " ": "\\ ",
    "=": "\\=",
})


def _escape(text: str) -> str:
    return str(text).translate(_ESCAPE)


def _split_escaped(text: str, separator: str) -> List[str]:
    """Split on unescaped *separator*, keeping escape sequences intact.

    The grammar nests (space → comma → equals), so splitting must NOT
    consume escapes — only :func:`_unescape` on terminal values does.
    """
    if "\\" not in text:
        # fast path: no escapes present (the overwhelmingly common
        # case — ids with spaces/commas are rare), plain split is
        # an order of magnitude faster than the char walk below
        return text.split(separator)
    parts: List[str] = []
    current: List[str] = []
    escaped = False
    for char in text:
        if escaped:
            current.append(char)
            escaped = False
        elif char == "\\":
            current.append(char)
            escaped = True
        elif char == separator:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if escaped:
        raise SerializationError(f"dangling escape in {text!r}")
    parts.append("".join(current))
    return parts


def _unescape(text: str) -> str:
    """Resolve backslash escapes in one terminal value."""
    if "\\" not in text:
        return text
    out: List[str] = []
    escaped = False
    for char in text:
        if escaped:
            out.append(char)
            escaped = False
        elif char == "\\":
            escaped = True
        else:
            out.append(char)
    if escaped:
        raise SerializationError(f"dangling escape in {text!r}")
    return "".join(out)


def encode_line(measurement: Measurement) -> str:
    """Encode one measurement as a line-protocol line.

    Only the metadata keys the ingest contract depends on travel in the
    line: ``seq`` (the idempotency key component, as a field) and
    ``protocol`` (as a tag).  Other metadata stays proxy-local.
    """
    tags = [
        f"device={_escape(measurement.device_id)}",
        f"entity={_escape(measurement.entity_id)}",
    ]
    if measurement.source:
        tags.append(f"source={_escape(measurement.source)}")
    protocol = measurement.metadata.get("protocol") \
        if isinstance(measurement.metadata, dict) else None
    if protocol:
        tags.append(f"protocol={_escape(protocol)}")
    fields = [f"value={float(measurement.value)!r}"]
    seq = measurement.metadata.get("seq") \
        if isinstance(measurement.metadata, dict) else None
    if seq is not None:
        fields.append(f"seq={int(seq)}")
    return (f"{_escape(measurement.quantity)},{','.join(tags)} "
            f"{','.join(fields)} {float(measurement.timestamp)!r}")


def decode_line(line: str) -> Measurement:
    """Decode one line-protocol line back into a :class:`Measurement`."""
    if not isinstance(line, str) or not line.strip():
        raise SerializationError(f"empty line-protocol line {line!r}")
    sections = _split_escaped(line.strip(), " ")
    if len(sections) != 3:
        raise SerializationError(
            f"line-protocol line needs 3 space-separated sections, "
            f"got {len(sections)}: {line!r}"
        )
    head, field_text, stamp_text = sections
    head_parts = _split_escaped(head, ",")
    quantity = _unescape(head_parts[0])
    tags: Dict[str, str] = {}
    for part in head_parts[1:]:
        pieces = _split_escaped(part, "=")
        if len(pieces) != 2:
            raise SerializationError(f"malformed tag {part!r} in {line!r}")
        tags[pieces[0]] = _unescape(pieces[1])
    fields: Dict[str, str] = {}
    for part in _split_escaped(field_text, ","):
        key, _, value = part.partition("=")
        fields[key] = value
    if "device" not in tags or "entity" not in tags:
        raise SerializationError(f"line missing device/entity tag: {line!r}")
    if "value" not in fields:
        raise SerializationError(f"line missing value field: {line!r}")
    try:
        value = float(fields["value"])
        timestamp = float(stamp_text)
    except ValueError as exc:
        raise SerializationError(f"bad numeric in line {line!r}") from exc
    metadata: Dict[str, Any] = {}
    if "protocol" in tags:
        metadata["protocol"] = tags["protocol"]
    if "seq" in fields:
        try:
            metadata["seq"] = int(fields["seq"])
        except ValueError as exc:
            raise SerializationError(f"bad seq in line {line!r}") from exc
    return Measurement(
        device_id=tags["device"],
        entity_id=tags["entity"],
        quantity=quantity,
        value=value,
        timestamp=timestamp,
        source=tags.get("source", ""),
        metadata=metadata,
    )


def encode_frame(measurements: Sequence[Measurement], *,
                 tracer: Any = None, host: str = "") -> Dict[str, Any]:
    """Encode measurements as one batch-frame pub/sub payload.

    When *tracer* is given (and enabled) the per-line encode loop runs
    inside a ``producer``-kind span tagged with the sample count, so a
    trace of the batch pipeline shows serialization cost separately
    from transport time.  The kind string is a literal on purpose:
    this module sits below :mod:`repro.observability` and must not
    import from it.
    """
    if tracer is not None and tracer.enabled:
        with tracer.span("lineproto.encode_frame", kind="producer",
                         host=host,
                         attributes={"samples": len(measurements)}):
            lines = [encode_line(m) for m in measurements]
    else:
        lines = [encode_line(m) for m in measurements]
    return {"record": BATCH_RECORD, "count": len(lines), "lines": lines}


def decode_frame(payload: Any, *,
                 tracer: Any = None, host: str = "") -> List[Measurement]:
    """Decode a batch-frame payload into its measurements.

    Raises :class:`~repro.errors.SerializationError` on any malformed
    frame or line — the caller turns that into a poison nack so a bad
    frame dead-letters instead of wedging ingestion.

    When *tracer* is given (and enabled) the per-line decode loop runs
    inside a ``consumer``-kind span; a malformed frame finishes the
    span with an error status before the exception propagates.
    """
    if not isinstance(payload, dict) or \
            payload.get("record") != BATCH_RECORD:
        raise SerializationError("payload is not a measurement batch")
    lines = payload.get("lines")
    if not isinstance(lines, list):
        raise SerializationError("batch frame has no line list")
    declared = payload.get("count")
    if declared is not None and declared != len(lines):
        raise SerializationError(
            f"batch frame count {declared!r} != {len(lines)} lines"
        )
    if tracer is not None and tracer.enabled:
        with tracer.span("lineproto.decode_frame", kind="consumer",
                         host=host,
                         attributes={"samples": len(lines)}):
            return [decode_line(line) for line in lines]
    return [decode_line(line) for line in lines]


def is_batch(payload: Any) -> bool:
    """True when a pub/sub payload is a batch frame envelope."""
    return isinstance(payload, dict) and \
        payload.get("record") == BATCH_RECORD
