"""Shared substrate: identifiers, units, simulated time, and the CDF.

The Common Data Format (CDF) is the "shared common data format" of the
paper — the single representation every proxy translates its native
source into.  See :mod:`repro.common.cdf` for the record types and
:mod:`repro.common.serialization` for the JSON/XML wire encodings.
"""

from repro.common.cdf import (
    ActuationCommand,
    ActuationResult,
    ActuatorCapability,
    Component,
    DeviceDescription,
    EntityModel,
    Measurement,
    Relation,
    SensorCapability,
    record_from_dict,
)
from repro.common.identifiers import (
    EntityId,
    ServiceUri,
    entity_kind,
    make_entity_id,
    service_uri,
)
from repro.common.serialization import decode, encode, from_json, to_json
from repro.common.simtime import SimClock, duration, isoformat
from repro.common.units import Quantity, canonical_unit, convert

__all__ = [
    "ActuationCommand",
    "ActuationResult",
    "ActuatorCapability",
    "Component",
    "DeviceDescription",
    "EntityId",
    "EntityModel",
    "Measurement",
    "Quantity",
    "Relation",
    "SensorCapability",
    "ServiceUri",
    "SimClock",
    "canonical_unit",
    "convert",
    "decode",
    "duration",
    "encode",
    "entity_kind",
    "from_json",
    "isoformat",
    "make_entity_id",
    "record_from_dict",
    "service_uri",
    "to_json",
]
