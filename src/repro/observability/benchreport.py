"""Machine-readable benchmark results: the ``BENCH_<id>.json`` schema.

Every benchmark session historically produced one free-text
``experiments.txt`` — fine for humans, useless for a CI gate.  This
module defines the unified result record each experiment now also
emits (via the shared ``report`` fixture in ``benchmarks/conftest.py``)
and the comparison logic the ``perf-smoke`` CI job runs against the
committed baselines in ``benchmarks/baselines/``.

One record per experiment, one file per record::

    benchmarks/results/BENCH_C4.json
    {
      "schema": 1,
      "experiment": "C4",
      "title": "pub/sub middleware: ...",
      "wall_seconds": 1.84,
      "sim_seconds": 600.0,
      "messages_total": 45210,
      "msgs_per_sec": 24570.6,
      "headline_metrics": {"delivery_p99_ms": 41.2},
      "quick": false
    }

``msgs_per_sec`` — simulated transport messages delivered per wall
second — is the fleet-wide speed number the ROADMAP's DES-core item
asks for; message-less experiments (pure translation/ontology
microbenches) report ``0.0`` and are skipped by the baseline gate.

The regression tolerance is deliberately wide (:data:`DEFAULT_FLOOR`):
CI runners vary several-fold in single-core speed, so the gate is
tuned to catch the order-of-magnitude regressions that matter (an
accidental O(n²), a hot-loop allocation) rather than machine noise.
Override with ``REPRO_PERF_FLOOR`` or ``--floor``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: bump when the BENCH_*.json key set changes incompatibly
BENCH_SCHEMA_VERSION = 1

#: minimum acceptable result/baseline msgs_per_sec ratio.  0.4 tolerates
#: a 2.5x slower CI runner; real hot-loop regressions blow through it.
DEFAULT_FLOOR = 0.4

#: every key a schema-valid record carries, in emission order
BENCH_KEYS = (
    "schema",
    "experiment",
    "title",
    "wall_seconds",
    "sim_seconds",
    "messages_total",
    "msgs_per_sec",
    "headline_metrics",
    "quick",
)

_KEY_TYPES = {
    "schema": int,
    "experiment": str,
    "title": str,
    "wall_seconds": (int, float),
    "sim_seconds": (int, float),
    "messages_total": int,
    "msgs_per_sec": (int, float),
    "headline_metrics": dict,
    "quick": bool,
}


@dataclass
class BenchRecord:
    """One experiment's accumulated machine-readable result."""

    experiment: str
    title: str = ""
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    messages_total: int = 0
    headline_metrics: Dict[str, float] = field(default_factory=dict)
    quick: bool = False

    @property
    def msgs_per_sec(self) -> float:
        """Simulated messages delivered per wall second (0.0 if unknown)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.messages_total / self.wall_seconds

    def merge(self, wall_seconds: float = 0.0, sim_seconds: float = 0.0,
              messages_total: int = 0,
              headline_metrics: Optional[Dict[str, float]] = None) -> None:
        """Fold one more measured workload into this record.

        Wall, sim and message counts add up (several tests of one
        experiment each contribute their slice); headline metrics merge
        by key, later writers winning.
        """
        self.wall_seconds += float(wall_seconds)
        self.sim_seconds += float(sim_seconds)
        self.messages_total += int(messages_total)
        if headline_metrics:
            self.headline_metrics.update(headline_metrics)

    def to_dict(self) -> Dict[str, Any]:
        """Stable-key JSON encoding (the BENCH_*.json contract)."""
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "experiment": self.experiment,
            "title": self.title,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "messages_total": self.messages_total,
            "msgs_per_sec": self.msgs_per_sec,
            "headline_metrics": dict(self.headline_metrics),
            "quick": self.quick,
        }


def validate_bench_report(data: Any) -> List[str]:
    """Schema-check one decoded BENCH_*.json; returns a list of problems.

    An empty list means the record is valid.  Checks key presence, key
    types, and that no unknown keys sneak in — the gate refuses to
    compare records it does not fully understand.
    """
    if not isinstance(data, dict):
        return [f"record is {type(data).__name__}, expected object"]
    problems: List[str] = []
    for key in BENCH_KEYS:
        if key not in data:
            problems.append(f"missing key {key!r}")
            continue
        expected = _KEY_TYPES[key]
        value = data[key]
        # bool is an int subclass; don't let quick=true satisfy an int
        if isinstance(value, bool) and expected is not bool:
            problems.append(f"key {key!r} is bool, expected {expected}")
        elif not isinstance(value, expected):
            problems.append(
                f"key {key!r} is {type(value).__name__}, "
                f"expected {expected}"
            )
    for key in data:
        if key not in BENCH_KEYS:
            problems.append(f"unknown key {key!r}")
    if not problems and data["schema"] != BENCH_SCHEMA_VERSION:
        problems.append(f"schema version {data['schema']} != "
                        f"{BENCH_SCHEMA_VERSION}")
    if not problems:
        for name, value in data["headline_metrics"].items():
            if isinstance(value, bool) or \
                    not isinstance(value, (int, float)):
                problems.append(f"headline metric {name!r} is not numeric")
    return problems


def bench_filename(experiment: str) -> str:
    return f"BENCH_{experiment}.json"


def write_bench_report(record: BenchRecord, directory: str) -> str:
    """Write one record to ``<directory>/BENCH_<id>.json``; returns path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, bench_filename(record.experiment))
    with open(path, "w") as handle:
        json.dump(record.to_dict(), handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def load_bench_reports(directory: str) -> Dict[str, Dict[str, Any]]:
    """Load every ``BENCH_*.json`` under *directory*, keyed by experiment.

    Invalid records raise ``ValueError`` naming the file and problems —
    a gate that silently skips garbage would hide the regression it
    exists to catch.
    """
    reports: Dict[str, Dict[str, Any]] = {}
    if not os.path.isdir(directory):
        return reports
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        with open(path) as handle:
            data = json.load(handle)
        problems = validate_bench_report(data)
        if problems:
            raise ValueError(f"{path}: " + "; ".join(problems))
        reports[data["experiment"]] = data
    return reports


def compare_to_baseline(result: Dict[str, Any], baseline: Dict[str, Any],
                        floor: float = DEFAULT_FLOOR
                        ) -> Tuple[bool, float, str]:
    """Judge one experiment's throughput against its committed baseline.

    Returns ``(ok, ratio, message)``.  Experiments whose baseline has no
    meaningful throughput (``msgs_per_sec == 0``) always pass — the gate
    guards message-path speed, not translation microbenches.
    """
    experiment = baseline.get("experiment", "?")
    base_rate = float(baseline.get("msgs_per_sec", 0.0))
    if base_rate <= 0.0:
        return True, 1.0, f"{experiment}: no throughput baseline, skipped"
    rate = float(result.get("msgs_per_sec", 0.0))
    ratio = rate / base_rate
    message = (f"{experiment}: {rate:,.0f} msgs/s vs baseline "
               f"{base_rate:,.0f} (x{ratio:.2f}, floor x{floor:.2f})")
    return ratio >= floor, ratio, message
