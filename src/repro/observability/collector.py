"""Fleet metrics collector: an in-sim scraper node.

PR 2 gave every node a ``/metrics`` and ``/health`` endpoint; this
module adds the thing that *reads* them continuously.  The
:class:`MetricsCollector` is deployed as one more node on the simulated
network and scrapes every registered target **through the transport
layer** — each scrape is a real HTTP request that pays latency, can be
dropped by partitions and flaky links, is fast-failed by an optional
circuit breaker, and shows up in traces like any other request.  A
target that stops answering is therefore observed exactly the way a
real Prometheus observes a dead exporter: scrapes time out.

Scraped numbers land in bounded ring-buffer time series (one per
(target, flattened metric name)), with staleness marking — a target
whose last successful scrape is older than ``staleness_factor``
intervals is reported stale rather than silently showing old data.
``rate()`` / ``delta()`` derivations over counters come with the
series, so SLOs and operators get per-window velocities, not raw
monotone counts.

:class:`FleetMonitor` bundles the collector with the SLO engine and
alert manager of :mod:`repro.observability.slo`; deployments opt in
with ``ScenarioConfig(fleet_monitor=FleetMonitorConfig(...))`` and the
``repro fleet`` CLI subcommand renders the resulting fleet table and
alert log.  Nothing here runs unless explicitly deployed — the
PR 2 zero-overhead-when-disabled contract holds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.errors import ConfigurationError
from repro.observability.slo import (
    AlertManager,
    SLO,
    SloEngine,
    default_slos,
)

if TYPE_CHECKING:  # deferred: repro.network imports this package
    from repro.network.resilience import ResiliencePolicy
    from repro.network.scheduler import PeriodicTask
    from repro.network.transport import Host


class TimeSeries:
    """A bounded ring buffer of ``(time, value)`` samples.

    Old samples fall off the far end once *maxlen* is reached, so a
    collector that runs forever holds constant memory per metric.
    """

    __slots__ = ("_samples",)

    def __init__(self, maxlen: int):
        if maxlen < 2:
            raise ConfigurationError("a series needs room for >= 2 samples")
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=maxlen)

    def __len__(self) -> int:
        return len(self._samples)

    def append(self, time: float, value: float) -> None:
        """Record one sample (times must be non-decreasing)."""
        if self._samples and time < self._samples[-1][0]:
            raise ConfigurationError("samples must arrive in time order")
        self._samples.append((time, float(value)))

    def latest(self) -> Tuple[float, float]:
        """The newest ``(time, value)`` sample."""
        if not self._samples:
            raise ConfigurationError("empty series has no latest sample")
        return self._samples[-1]

    def window(self, since: float) -> List[Tuple[float, float]]:
        """Samples newer than *since*, oldest first."""
        return [(t, v) for t, v in self._samples if t > since]

    def delta_last(self) -> Optional[float]:
        """Value change between the two newest samples (None if < 2)."""
        if len(self._samples) < 2:
            return None
        return self._samples[-1][1] - self._samples[-2][1]

    def delta(self, window: float, now: float) -> Optional[float]:
        """Value change across samples in ``(now - window, now]``.

        For counters this is the number of events in the window.  None
        when fewer than two samples fall inside the window.
        """
        samples = self.window(now - window)
        if len(samples) < 2:
            return None
        return samples[-1][1] - samples[0][1]

    def rate(self, window: float, now: float) -> Optional[float]:
        """Per-second increase over the window (None if undefined).

        The counter analogue of PromQL ``rate()``: delta over the span
        actually covered by samples, so a partially-filled window does
        not dilute the rate.
        """
        samples = self.window(now - window)
        if len(samples) < 2:
            return None
        span = samples[-1][0] - samples[0][0]
        if span <= 0:
            return None
        return (samples[-1][1] - samples[0][1]) / span


def flatten_metrics(payload: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten a ``/metrics`` JSON body into dotted numeric leaves.

    Nested dicts concatenate with dots (``component.requests_served``,
    ``registry.mdb.delivery_latency.p90``); booleans become 0/1;
    strings, nulls and anything non-numeric are skipped — a scrape
    stores what it can plot.
    """
    flat: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_metrics(value, name))
        return flat
    if isinstance(payload, bool):
        flat[prefix] = 1.0 if payload else 0.0
    elif isinstance(payload, (int, float)):
        flat[prefix] = float(payload)
    return flat


class ScrapeTarget:
    """One monitored node: its address, series and scrape bookkeeping."""

    def __init__(self, name: str, uri: str, kind: str, retention: int):
        self.name = name
        self.uri = uri.rstrip("/")
        self.kind = kind
        self._retention = retention
        #: flattened metric name -> bounded series
        self.series: Dict[str, TimeSeries] = {}
        #: the last /health body that arrived (empty until one does)
        self.health: Dict[str, Any] = {}
        self.scrapes_ok = 0
        self.scrapes_failed = 0
        self.consecutive_failures = 0
        self.last_success: Optional[float] = None
        self.last_attempt: Optional[float] = None

    @property
    def up(self) -> bool:
        """Whether the most recent scrape attempt succeeded."""
        return self.consecutive_failures == 0 and self.scrapes_ok > 0

    def record(self, now: float, flat: Dict[str, float]) -> None:
        """Store one successful scrape's flattened samples."""
        self.scrapes_ok += 1
        self.consecutive_failures = 0
        self.last_success = now
        for name, value in flat.items():
            series = self.series.get(name)
            if series is None:
                series = TimeSeries(self._retention)
                self.series[name] = series
            series.append(now, value)

    def record_failure(self) -> None:
        self.scrapes_failed += 1
        self.consecutive_failures += 1

    def latest(self, metric: str) -> Optional[float]:
        """Newest sample of one metric, or None."""
        series = self.series.get(metric)
        if series is None or not len(series):
            return None
        return series.latest()[1]

    def rate(self, metric: str, window: float, now: float
             ) -> Optional[float]:
        """Per-second counter rate of one metric (None if undefined)."""
        series = self.series.get(metric)
        if series is None:
            return None
        return series.rate(window, now)

    def delta(self, metric: str, window: float, now: float
              ) -> Optional[float]:
        """Counter increase of one metric over the window."""
        series = self.series.get(metric)
        if series is None:
            return None
        return series.delta(window, now)


class MetricsCollector:
    """Periodically scrapes every target's ``/metrics`` and ``/health``.

    Scrapes are asynchronous (future-based), so one dead target never
    stalls the round: its request simply times out *scrape_timeout*
    later and is recorded as a failed scrape.  ``/health`` bodies are
    informational (role, epoch, status strings); ``/metrics`` bodies
    are flattened into numeric time series.  *on_scrape* callbacks run
    once per completed-or-failed ``/metrics`` scrape — the SLO engine
    hangs off that hook.

    *health_every* throttles the ``/health`` side-channel to every Nth
    round, keeping scrape overhead proportional to what operators
    actually watch continuously.
    """

    def __init__(self, host: "Host", interval: float = 15.0,
                 timeout: Optional[float] = None, retention: int = 256,
                 staleness_factor: float = 3.0, health_every: int = 1,
                 policy: Optional["ResiliencePolicy"] = None):
        from repro.network.webservice import HttpClient

        if interval <= 0:
            raise ConfigurationError("scrape interval must be positive")
        if health_every < 1:
            raise ConfigurationError("health_every must be >= 1")
        self.host = host
        self.interval = interval
        self.timeout = timeout if timeout is not None \
            else max(interval / 3.0, 1e-3)
        if self.timeout >= interval:
            raise ConfigurationError(
                "scrape timeout must be shorter than the interval"
            )
        self.retention = retention
        self.staleness_factor = staleness_factor
        self.health_every = health_every
        self.http = HttpClient(host, timeout=self.timeout, policy=policy)
        self.targets: Dict[str, ScrapeTarget] = {}
        self.rounds = 0
        self.scrapes_attempted = 0
        self.responses_received = 0
        #: callbacks fired per finished /metrics scrape:
        #: ``fn(target, now, ok)``
        self.on_scrape: List[Callable[[ScrapeTarget, float, bool], None]] \
            = []
        self._task: Optional[PeriodicTask] = None

    @property
    def name(self) -> str:
        return self.host.name

    def add_target(self, name: str, uri: str, kind: str) -> ScrapeTarget:
        """Register one node for scraping; duplicate names are an error."""
        if name in self.targets:
            raise ConfigurationError(f"target {name!r} already watched")
        target = ScrapeTarget(name, uri, kind, self.retention)
        self.targets[name] = target
        return target

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin periodic scraping (idempotent)."""
        if self._task is None:
            self._task = self.host.network.scheduler.every(
                self.interval, self.scrape_round,
                initial_delay=initial_delay,
            )

    def stop(self) -> None:
        """Stop future scrape rounds (in-flight requests still land)."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    # -- scraping ----------------------------------------------------------

    def scrape_round(self) -> None:
        """Issue one round of scrapes against every target."""
        self.rounds += 1
        with_health = (self.rounds - 1) % self.health_every == 0
        now = self.host.network.scheduler.now
        for target in self.targets.values():
            target.last_attempt = now
            self.scrapes_attempted += 1
            future = self.http.request(target.uri + "/metrics")
            future.add_done_callback(
                lambda fut, t=target: self._on_metrics(t, fut)
            )
            if with_health:
                self.scrapes_attempted += 1
                health = self.http.request(target.uri + "/health")
                health.add_done_callback(
                    lambda fut, t=target: self._on_health(t, fut)
                )

    def _on_metrics(self, target: ScrapeTarget, future) -> None:
        now = self.host.network.scheduler.now
        ok = False
        try:
            response = future.result()
        except Exception:       # timeout, circuit open: a failed scrape
            target.record_failure()
        else:
            self.responses_received += 1
            if response.ok:
                ok = True
                target.record(now, flatten_metrics(response.body or {}))
            else:
                target.record_failure()
        for callback in self.on_scrape:
            callback(target, now, ok)

    def _on_health(self, target: ScrapeTarget, future) -> None:
        try:
            response = future.result()
        except Exception:
            return              # the /metrics path owns failure counting
        self.responses_received += 1
        if response.ok and isinstance(response.body, dict):
            target.health = response.body

    # -- staleness ---------------------------------------------------------

    def staleness(self, name: str,
                  now: Optional[float] = None) -> Optional[float]:
        """Seconds since the target's last successful scrape.

        None when it has never been scraped successfully.
        """
        target = self.targets[name]
        if target.last_success is None:
            return None
        if now is None:
            now = self.host.network.scheduler.now
        return now - target.last_success

    def is_stale(self, name: str, now: Optional[float] = None) -> bool:
        """True when data is older than ``staleness_factor`` intervals."""
        age = self.staleness(name, now)
        if age is None:
            return True
        return age > self.staleness_factor * self.interval

    def counters(self) -> Dict[str, int]:
        """Flat scrape counters for reports and the O2 benchmark."""
        return {
            "scrape_rounds": self.rounds,
            "scrapes_attempted": self.scrapes_attempted,
            "scrape_responses": self.responses_received,
            "scrapes_ok": sum(t.scrapes_ok for t in self.targets.values()),
            "scrapes_failed": sum(t.scrapes_failed
                                  for t in self.targets.values()),
            #: requests sent + responses that came back — the collector's
            #: total transport-message footprint
            "scrape_messages": self.scrapes_attempted
            + self.responses_received,
        }


@dataclass
class FleetMonitorConfig:
    """Knobs of a deployed fleet monitor (see ``ScenarioConfig``)."""

    #: seconds between scrape rounds
    scrape_interval: float = 15.0
    #: per-request timeout; None -> a third of the interval
    scrape_timeout: Optional[float] = None
    #: ring-buffer samples kept per (target, metric) series
    retention: int = 256
    #: scrapes missed before a target's data is marked stale
    staleness_factor: float = 3.0
    #: scrape /health every Nth round (1 = every round)
    health_every: int = 1
    #: objectives to evaluate; None -> :func:`default_slos`
    slos: Optional[List[SLO]] = None
    #: optional resilience policy for the scrape client (adds circuit
    #: breaking so a long-dead target is fast-failed, not re-timed-out)
    policy: Optional[ResiliencePolicy] = None


class FleetMonitor:
    """Collector + SLO engine + alert manager, deployed as one node."""

    def __init__(self, host: Host, config: FleetMonitorConfig):
        self.config = config
        self.collector = MetricsCollector(
            host,
            interval=config.scrape_interval,
            timeout=config.scrape_timeout,
            retention=config.retention,
            staleness_factor=config.staleness_factor,
            health_every=config.health_every,
            policy=config.policy,
        )
        slos = config.slos if config.slos is not None \
            else default_slos(config.scrape_interval)
        self.alerts = AlertManager(network=host.network,
                                   source_host=host.name)
        self.engine = SloEngine(slos, self.alerts)
        self.collector.on_scrape.append(self.engine.observe_scrape)

    @property
    def host(self) -> Host:
        return self.collector.host

    def watch(self, name: str, uri: str, kind: str) -> ScrapeTarget:
        """Register one node for scraping and SLO evaluation."""
        return self.collector.add_target(name, uri, kind)

    def start(self, initial_delay: Optional[float] = None) -> None:
        self.collector.start(initial_delay=initial_delay)

    def stop(self) -> None:
        self.collector.stop()

    def counters(self) -> Dict[str, int]:
        """Scrape + alert counters in one flat dict."""
        counters = self.collector.counters()
        counters.update(self.alerts.counters())
        return counters


#: preferred display order of target kinds in the fleet table
_KIND_ORDER = {"master": 0, "broker": 1, "measurement": 2, "gis": 3,
               "bim": 4, "sim": 5, "device": 6}


def render_fleet(monitor: FleetMonitor,
                 now: Optional[float] = None) -> str:
    """The operator's fleet table: one aligned row per scrape target.

    Columns: target name, kind, UP/DOWN from the latest scrape, stale
    marker, age of the newest data, ok/failed scrape counts, and the
    names of any alerts currently firing on the target.
    """
    collector = monitor.collector
    if now is None:
        now = collector.host.network.scheduler.now
    lines = [
        f"fleet — {len(collector.targets)} targets, "
        f"{collector.rounds} scrape rounds, "
        f"interval {collector.interval:g}s "
        f"(t={now:.1f}s)",
        f"{'target':<26s} {'kind':<12s} {'state':<6s} {'stale':<6s} "
        f"{'age(s)':>8s} {'ok':>5s} {'fail':>5s}  alerts",
    ]
    ordered = sorted(
        collector.targets.values(),
        key=lambda t: (_KIND_ORDER.get(t.kind, 99), t.name),
    )
    for target in ordered:
        age = collector.staleness(target.name, now)
        firing = monitor.alerts.firing_for(target.name)
        lines.append(
            f"{target.name:<26.26s} {target.kind:<12s} "
            f"{'UP' if target.up else 'DOWN':<6s} "
            f"{'yes' if collector.is_stale(target.name, now) else '-':<6s} "
            f"{'-' if age is None else format(age, '8.1f'):>8s} "
            f"{target.scrapes_ok:>5d} {target.scrapes_failed:>5d}  "
            f"{', '.join(a.slo.name for a in firing) or '-'}"
        )
    return "\n".join(lines)


__all__ = [
    "FleetMonitor",
    "FleetMonitorConfig",
    "MetricsCollector",
    "ScrapeTarget",
    "TimeSeries",
    "flatten_metrics",
    "render_fleet",
]
