"""End-to-end observability: distributed tracing + metrics registry.

The cross-cutting measurement substrate of the framework.  Install it
on a simulated network and every instrumented component — HTTP client
and Web-Service layers, the master's resolve path, the pub/sub broker
and peers, the resilience machinery — starts emitting per-hop spans
and structured events timestamped on the simulated clock, while the
shared :class:`~repro.observability.metrics.MetricsRegistry` backs the
``/metrics`` endpoints.

Nothing is installed by default: ``network.tracer`` and
``network.metrics`` are ``None`` and every instrumentation site guards
on that, so the seed behaviour (and its determinism) is untouched
until :func:`install` is called — either directly or via
``ScenarioConfig(observability=True)``.
"""

from dataclasses import dataclass
from typing import Optional

from repro.observability.collector import (
    FleetMonitor,
    FleetMonitorConfig,
    MetricsCollector,
    ScrapeTarget,
    TimeSeries,
    render_fleet,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.slo import (
    SLO,
    Alert,
    AlertManager,
    SloEngine,
    default_slos,
    render_alert_log,
)
from repro.observability.profiler import (
    SimProfiler,
    export_profile,
    install_profiler,
    render_profile_table,
    render_profile_tree,
    uninstall_profiler,
)
from repro.observability.tracing import (
    Span,
    SpanEvent,
    TraceContext,
    Tracer,
    render_waterfall,
)


@dataclass
class Observability:
    """Handle to one network's installed tracer and metrics registry."""

    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None


def install(network, tracing: bool = True, metrics: bool = True,
            max_spans: int = 1_000_000) -> Observability:
    """Enable tracing and/or metrics on *network* (idempotent).

    Returns the :class:`Observability` bundle; already-installed parts
    are reused, so calling twice never discards recorded spans.
    """
    if tracing and network.tracer is None:
        network.tracer = Tracer(network.scheduler, max_spans=max_spans)
    if metrics and network.metrics is None:
        network.metrics = MetricsRegistry()
    return Observability(tracer=network.tracer, metrics=network.metrics)


def uninstall(network) -> None:
    """Remove the tracer and registry; components stop emitting."""
    network.tracer = None
    network.metrics = None


__all__ = [
    "Alert",
    "AlertManager",
    "Counter",
    "FleetMonitor",
    "FleetMonitorConfig",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "Observability",
    "SLO",
    "ScrapeTarget",
    "SimProfiler",
    "SloEngine",
    "Span",
    "SpanEvent",
    "TimeSeries",
    "TraceContext",
    "Tracer",
    "default_slos",
    "export_profile",
    "install",
    "install_profiler",
    "render_fleet",
    "render_alert_log",
    "render_profile_table",
    "render_profile_tree",
    "render_waterfall",
    "uninstall",
    "uninstall_profiler",
]
