"""Service-level objectives: burn-rate alerting over scraped series.

The collector (:mod:`repro.observability.collector`) turns the passive
``/metrics`` and ``/health`` endpoints into per-target time series;
this module turns those series into *alerts*.  An operator declares a
small set of :class:`SLO` objectives — target reachability, resolve
availability, delivery-latency and staleness bounds, replication lag —
and the :class:`SloEngine` evaluates them with the multi-window
burn-rate method: an alert condition requires the error budget to burn
faster than a threshold over **both** a fast window (so pages are
prompt) and a slow window (so a single blip cannot page).  Hysteresis
on the fast window keeps a firing alert from flapping while the slow
window still remembers the outage.

The :class:`AlertManager` owns the alert lifecycle::

    ok -> pending -> firing -> resolved -> ok

``pending`` is the condition being true but younger than the SLO's
``for_duration``; ``firing`` is the page; ``resolved`` is the
transition back.  Every transition is deduplicated (one alert per
(SLO, target) pair), appended to a bounded history log, and emitted as
a structured ``alert_pending`` / ``alert_firing`` / ``alert_resolved``
trace event when tracing is installed — so alerts appear in the same
event stream as the retries and breaker trips they explain.

Everything here is pure bookkeeping on the simulated clock: the engine
is driven by the collector's scrape completions and performs no I/O of
its own.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.observability.tracing import emit

#: SLI kinds an :class:`SLO` can declare
UP = "up"                 # good = the scrape itself succeeded
RATIO = "ratio"           # good/bad from counter deltas between scrapes
THRESHOLD = "threshold"   # good = latest gauge sample within a bound
KINDS = (UP, RATIO, THRESHOLD)

#: alert states, in lifecycle order
OK = "ok"
PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"


@dataclass(frozen=True)
class SLO:
    """One declarative objective evaluated per scrape target.

    *objective* is the availability target (e.g. ``0.99``); the error
    budget is ``1 - objective`` and the *burn rate* of a window is the
    window's bad fraction divided by that budget.  The alert condition
    is ``burn(fast_window) >= burn_threshold and burn(slow_window) >=
    burn_threshold``; it must hold for *for_duration* simulated seconds
    before the alert fires, and clears (with hysteresis) when
    ``burn(fast_window) < clear_ratio * burn_threshold``.

    The SLI itself depends on *kind*:

    * ``up`` — each scrape attempt is one sample; bad when the scrape
      failed (timeout, circuit open, non-2xx);
    * ``ratio`` — counter deltas between consecutive successful
      scrapes; bad/good increments are read from *bad_metric* /
      *good_metric* (flattened series names, e.g.
      ``component.requests_failed``);
    * ``threshold`` — the latest sample of *metric* is bad when it
      exceeds *bound*.

    *target_kinds* restricts the SLO to scrape targets of those kinds
    (``()`` applies it to every target).
    """

    name: str
    description: str
    kind: str
    objective: float = 0.99
    fast_window: float = 120.0
    slow_window: float = 360.0
    burn_threshold: float = 6.0
    clear_ratio: float = 0.5
    for_duration: float = 0.0
    good_metric: str = ""
    bad_metric: str = ""
    metric: str = ""
    bound: float = 0.0
    target_kinds: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ConfigurationError(
                f"objective must be in (0, 1), got {self.objective!r}"
            )
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ConfigurationError(
                "need 0 < fast_window <= slow_window"
            )
        if self.kind == RATIO and not (self.good_metric and
                                       self.bad_metric):
            raise ConfigurationError(
                f"ratio SLO {self.name!r} needs good_metric and bad_metric"
            )
        if self.kind == THRESHOLD and not self.metric:
            raise ConfigurationError(
                f"threshold SLO {self.name!r} needs a metric"
            )

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad fraction."""
        return 1.0 - self.objective

    def applies_to(self, target_kind: str) -> bool:
        """Whether this SLO watches targets of *target_kind*."""
        return not self.target_kinds or target_kind in self.target_kinds


def default_slos(scrape_interval: float) -> List[SLO]:
    """The stock fleet objectives, with windows sized in scrape ticks.

    * ``target-up`` — every node type must answer its scrape; two
      consecutive failed scrapes (held one more interval) page, which
      bounds detection of a dead node by ~3 scrape intervals.
    * ``resolve-availability`` — the master's request error ratio, from
      ``requests_failed`` / ``requests_served`` counter deltas.
    * ``delivery-latency`` — the measurement DB's rolling p90 pub/sub
      delivery latency must stay under 5 minutes (a flushed outage
      backlog arrives late by design; pathological brokers page).
    * ``measurement-staleness`` — the oldest device feed in the global
      DB must be younger than ``staleness-bound`` seconds.
    * ``replication-lag`` — un-replicated log entries on the master
      (zero for single-master deployments).
    * ``broker-replication-lag`` — un-replicated durable-state entries
      on the broker (zero for single-broker deployments).
    * ``data-plane-saturation`` — the broker's pending-delivery backlog
      as a fraction of its overload high watermark; sustained values
      near 1.0 mean the broker is (about to start) shedding load.
    * ``publication-loss`` — device-proxy publications dropped from the
      offline buffer vs published, the "sustained data loss" signal the
      per-topic drop counters feed.
    """
    i = scrape_interval
    return [
        SLO(name="target-up",
            description="scrape target answers /metrics",
            kind=UP, objective=0.99,
            fast_window=2.5 * i, slow_window=8 * i,
            burn_threshold=6.0, for_duration=i),
        SLO(name="resolve-availability",
            description="master serves requests without errors",
            kind=RATIO, objective=0.95,
            good_metric="component.requests_served",
            bad_metric="component.requests_failed",
            fast_window=3 * i, slow_window=10 * i,
            burn_threshold=4.0, for_duration=i,
            target_kinds=("master",)),
        SLO(name="delivery-latency",
            description="pub/sub delivery p90 under 300 s",
            kind=THRESHOLD, objective=0.99,
            metric="component.delivery_latency_p90", bound=300.0,
            fast_window=2.5 * i, slow_window=8 * i,
            burn_threshold=6.0, for_duration=i,
            target_kinds=("measurement",)),
        SLO(name="measurement-staleness",
            description="oldest device feed younger than 450 s",
            kind=THRESHOLD, objective=0.99,
            metric="component.freshness_lag_max", bound=450.0,
            fast_window=2.5 * i, slow_window=8 * i,
            burn_threshold=6.0, for_duration=i,
            target_kinds=("measurement",)),
        SLO(name="replication-lag",
            description="master replication lag under 64 entries",
            kind=THRESHOLD, objective=0.99,
            metric="component.replication_lag", bound=64.0,
            fast_window=2.5 * i, slow_window=8 * i,
            burn_threshold=6.0, for_duration=i,
            target_kinds=("master",)),
        SLO(name="broker-replication-lag",
            description="broker replication lag under 64 entries",
            kind=THRESHOLD, objective=0.99,
            metric="component.replication_lag", bound=64.0,
            fast_window=2.5 * i, slow_window=8 * i,
            burn_threshold=6.0, for_duration=i,
            target_kinds=("broker",)),
        SLO(name="data-plane-saturation",
            description="broker delivery backlog under 90% of watermark",
            kind=THRESHOLD, objective=0.99,
            metric="component.data_plane_saturation", bound=0.9,
            fast_window=2.5 * i, slow_window=8 * i,
            burn_threshold=6.0, for_duration=i,
            target_kinds=("broker",)),
        SLO(name="publication-loss",
            description="device publications dropped vs published",
            kind=RATIO, objective=0.95,
            good_metric="component.measurements_published",
            bad_metric="component.publications_dropped",
            fast_window=3 * i, slow_window=10 * i,
            burn_threshold=4.0, for_duration=i,
            target_kinds=("device",)),
    ]


@dataclass
class AlertEvent:
    """One recorded lifecycle transition of an alert."""

    time: float
    slo: str
    target: str
    state: str           # the state entered
    burn_fast: Optional[float] = None
    burn_slow: Optional[float] = None
    value: Optional[float] = None   # threshold SLOs: the offending sample

    def row(self) -> str:
        """One formatted alert-log line."""
        burns = ""
        if self.burn_fast is not None and self.burn_slow is not None:
            burns = (f" burn fast={self.burn_fast:7.1f}x"
                     f" slow={self.burn_slow:7.1f}x")
        value = f" value={self.value:.1f}" if self.value is not None else ""
        return (f"t={self.time:10.1f}s {self.state.upper():<8s} "
                f"{self.slo:<24s} {self.target}{burns}{value}")


class Alert:
    """Mutable per-(SLO, target) alert state."""

    __slots__ = ("slo", "target", "state", "since", "fired_at",
                 "resolved_at", "burn_fast", "burn_slow", "value")

    def __init__(self, slo: SLO, target: str):
        self.slo = slo
        self.target = target
        self.state = OK
        self.since = 0.0              # time the current state was entered
        self.fired_at: Optional[float] = None
        self.resolved_at: Optional[float] = None
        self.burn_fast: Optional[float] = None
        self.burn_slow: Optional[float] = None
        self.value: Optional[float] = None

    @property
    def firing(self) -> bool:
        return self.state == FIRING


class AlertManager:
    """Owns alert lifecycle state, the transition log and trace events.

    One :class:`Alert` exists per (SLO, target) pair — repeated
    condition evaluations while an alert is already pending/firing are
    deduplicated into no-ops, so the history log records transitions,
    never repetitions.
    """

    def __init__(self, network=None, source_host: str = "",
                 max_history: int = 1024):
        self._network = network
        self._source_host = source_host
        self._alerts: Dict[Tuple[str, str], Alert] = {}
        self._history: Deque[AlertEvent] = deque(maxlen=max_history)
        self.alerts_fired = 0
        self.alerts_resolved = 0

    def alert(self, slo: SLO, target: str) -> Alert:
        """Get or create the alert tracking (*slo*, *target*)."""
        key = (slo.name, target)
        alert = self._alerts.get(key)
        if alert is None:
            alert = Alert(slo, target)
            self._alerts[key] = alert
        return alert

    def alerts(self) -> List[Alert]:
        """Every tracked alert, sorted by (SLO, target)."""
        return [self._alerts[key] for key in sorted(self._alerts)]

    def firing(self) -> List[Alert]:
        """Currently-firing alerts, sorted by (SLO, target)."""
        return [a for a in self.alerts() if a.firing]

    def firing_for(self, target: str) -> List[Alert]:
        """Currently-firing alerts of one target."""
        return [a for a in self.firing() if a.target == target]

    def history(self) -> List[AlertEvent]:
        """The transition log, oldest first (bounded)."""
        return list(self._history)

    def counters(self) -> Dict[str, int]:
        """Flat counters for reports: fired/resolved/active."""
        return {
            "alerts_fired": self.alerts_fired,
            "alerts_resolved": self.alerts_resolved,
            "alerts_active": len(self.firing()),
        }

    def _transition(self, alert: Alert, state: str, now: float) -> None:
        alert.state = state
        alert.since = now
        event = AlertEvent(
            time=now, slo=alert.slo.name, target=alert.target,
            state=state, burn_fast=alert.burn_fast,
            burn_slow=alert.burn_slow, value=alert.value,
        )
        self._history.append(event)
        if self._network is not None:
            emit(self._network, f"alert_{state}", host=self._source_host,
                 slo=alert.slo.name, target=alert.target,
                 burn_fast=alert.burn_fast, burn_slow=alert.burn_slow,
                 value=alert.value)

    def observe(self, alert: Alert, condition: bool, now: float) -> None:
        """Advance one alert's state machine with a fresh evaluation.

        *condition* is the (hysteresis-adjusted) burn condition computed
        by the engine: True means "breaching", False means "cleared".
        """
        slo = alert.slo
        if condition:
            if alert.state in (OK, RESOLVED):
                self._transition(alert, PENDING, now)
            if alert.state == PENDING and \
                    now - alert.since >= slo.for_duration:
                alert.fired_at = now
                self.alerts_fired += 1
                self._transition(alert, FIRING, now)
            return
        if alert.state == PENDING:
            # condition receded before for_duration elapsed: not a page
            self._transition(alert, OK, now)
        elif alert.state == FIRING:
            alert.resolved_at = now
            self.alerts_resolved += 1
            self._transition(alert, RESOLVED, now)
            self._transition(alert, OK, now)


class _SliSeries:
    """Bounded (time, bad, total) samples of one SLI on one target."""

    __slots__ = ("points",)

    def __init__(self, maxlen: int):
        self.points: Deque[Tuple[float, float, float]] = deque(maxlen=maxlen)

    def add(self, time: float, bad: float, total: float) -> None:
        self.points.append((time, bad, total))

    def bad_fraction(self, window: float, now: float) -> Optional[float]:
        """Bad/total over samples in ``(now - window, now]``.

        None when the window holds no samples (nothing to judge).
        """
        horizon = now - window
        bad = total = 0.0
        for time, b, t in reversed(self.points):
            if time <= horizon:
                break
            bad += b
            total += t
        if total <= 0:
            return None
        return bad / total


class SloEngine:
    """Evaluates a set of SLOs against one collector's targets.

    Driven by the collector: :meth:`observe_scrape` runs once per
    completed (or failed) scrape of one target, converts the scrape
    into SLI samples for every applicable SLO, recomputes both burn
    windows and advances the alert state machine.
    """

    def __init__(self, slos: List[SLO], alerts: AlertManager,
                 max_points: int = 512):
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate SLO names")
        self.slos = list(slos)
        self.alerts = alerts
        self._max_points = max_points
        self._sli: Dict[Tuple[str, str], _SliSeries] = {}
        self.evaluations = 0

    def _series(self, slo: SLO, target_name: str) -> _SliSeries:
        key = (slo.name, target_name)
        series = self._sli.get(key)
        if series is None:
            series = _SliSeries(self._max_points)
            self._sli[key] = series
        return series

    # -- SLI extraction ----------------------------------------------------

    def _sample(self, slo: SLO, target, now: float, scrape_ok: bool,
                alert: Alert) -> Optional[Tuple[float, float]]:
        """One (bad, total) SLI increment for this scrape, or None."""
        if slo.kind == UP:
            return (0.0, 1.0) if scrape_ok else (1.0, 1.0)
        if not scrape_ok:
            return None     # counter/gauge SLIs need a fresh sample
        if slo.kind == RATIO:
            good = target.series.get(slo.good_metric)
            bad = target.series.get(slo.bad_metric)
            if good is None or bad is None:
                return None
            good_d = good.delta_last()
            bad_d = bad.delta_last()
            if good_d is None or bad_d is None:
                return None
            # counters only go up; a restart resets them — clamp
            good_d = max(good_d, 0.0)
            bad_d = max(bad_d, 0.0)
            if good_d + bad_d <= 0:
                return None
            return (bad_d, good_d + bad_d)
        series = target.series.get(slo.metric)
        if series is None or not len(series):
            return None
        value = series.latest()[1]
        alert.value = value
        return (1.0, 1.0) if value > slo.bound else (0.0, 1.0)

    # -- evaluation --------------------------------------------------------

    def observe_scrape(self, target, now: float, scrape_ok: bool) -> None:
        """Feed one scrape outcome of *target* into every matching SLO."""
        for slo in self.slos:
            if not slo.applies_to(target.kind):
                continue
            alert = self.alerts.alert(slo, target.name)
            sample = self._sample(slo, target, now, scrape_ok, alert)
            series = self._series(slo, target.name)
            if sample is not None:
                series.add(now, *sample)
            self.evaluations += 1
            self._evaluate(slo, series, alert, now)

    def _evaluate(self, slo: SLO, series: _SliSeries, alert: Alert,
                  now: float) -> None:
        fast = series.bad_fraction(slo.fast_window, now)
        slow = series.bad_fraction(slo.slow_window, now)
        if fast is None or slow is None:
            return      # not enough signal yet; hold the current state
        budget = slo.budget
        alert.burn_fast = fast / budget
        alert.burn_slow = slow / budget
        if alert.state == FIRING:
            # hysteresis: a firing alert only clears when the fast
            # window calms well below the trip point (the slow window
            # intentionally remembers the outage for longer)
            condition = alert.burn_fast >= slo.clear_ratio * \
                slo.burn_threshold
        else:
            condition = (alert.burn_fast >= slo.burn_threshold
                         and alert.burn_slow >= slo.burn_threshold)
        self.alerts.observe(alert, condition, now)


def render_alert_log(alerts: AlertManager, limit: int = 40) -> str:
    """The alert transition log as terminal-ready lines (newest last)."""
    history = alerts.history()
    lines = [f"alert log — {alerts.alerts_fired} fired, "
             f"{alerts.alerts_resolved} resolved, "
             f"{len(alerts.firing())} active"]
    shown = history[-limit:]
    if len(history) > len(shown):
        lines.append(f"... {len(history) - len(shown)} earlier "
                     f"transitions elided")
    for event in shown:
        lines.append(event.row())
    return "\n".join(lines)


__all__ = [
    "Alert",
    "AlertEvent",
    "AlertManager",
    "SLO",
    "SloEngine",
    "default_slos",
    "render_alert_log",
    "FIRING",
    "OK",
    "PENDING",
    "RESOLVED",
]
