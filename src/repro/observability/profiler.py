"""Wall-clock profiler for the DES hot loop.

Every scale goal on the roadmap is gated on wall-clock per simulated
message, and the benchmarks only ever said how *much* wall a run cost —
never *where* it went.  :class:`SimProfiler` answers that: it hooks the
four layers every simulated message crosses —

* ``Scheduler.step`` event dispatch (the outermost loop),
* ``Network._deliver`` message delivery,
* ``Router.dispatch`` web-service handler invocation,
* ``Broker._on_message`` / ``MiddlewarePeer._on_message`` frame handling

— and attributes wall-clock to ``(node, message-kind, handler)``
buckets with call counts, self/cumulative time and the simulated-vs-wall
ratio of the run.  Frames nest (an event contains a delivery contains a
broker verb), so *self* time is a frame's elapsed wall minus its
children's — the number the next optimisation PR sorts by.

Design constraints, in the tracer's tradition (``tracing.py``):

* **Zero overhead when off.**  ``network.profiler`` and
  ``scheduler.profiler`` are ``None`` by default and every hook is one
  attribute load + ``None`` check (verified by the guard-cost
  microbenchmark in ``tests/test_profiler.py``).
* **Low overhead when on.**  Hot-path state lives in ``__slots__``
  classes; keys are small string tuples; per-instance reply ports are
  collapsed by :func:`port_family` so bucket cardinality stays bounded.
* **Pure observation.**  The profiler never schedules events or touches
  payloads, so a profiled run is message-for-message identical to an
  unprofiled twin (asserted by the O3 soak benchmark).

Activation: ``ScenarioConfig(profile=True)``, the ``REPRO_PROFILE``
environment variable, or :func:`install_profiler` directly.  Results
render as a top-N self-time table (:func:`render_profile_table`), an
ASCII flame-style attribution tree (:func:`render_profile_tree`), or
export as JSON (:func:`export_profile`) — all reachable from the
``repro profile`` CLI.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

BucketKey = Tuple[str, str, str]

_DIGITS = "0123456789"


def port_family(port: str) -> str:
    """Collapse per-instance numbered ports into one bucket name.

    Reply ports carry a client-unique suffix (``http-reply-17``); keying
    buckets on the raw port would grow one bucket per client.  Stripping
    the numeric tail maps them all onto ``http-reply`` while leaving
    unnumbered ports (``http``, ``pubsub``) untouched.
    """
    stripped = port.rstrip(_DIGITS)
    if stripped is not port and stripped.endswith("-"):
        stripped = stripped[:-1]
    return stripped or port


class ProfileBucket:
    """Aggregate wall-clock cost of one (node, kind, handler) bucket."""

    __slots__ = ("node", "kind", "handler", "calls", "cum", "self_time")

    def __init__(self, node: str, kind: str, handler: str):
        self.node = node
        self.kind = kind
        self.handler = handler
        self.calls = 0
        self.cum = 0.0
        self.self_time = 0.0

    @property
    def key(self) -> BucketKey:
        return (self.node, self.kind, self.handler)

    @property
    def label(self) -> str:
        return f"{self.node} · {self.kind} · {self.handler}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "kind": self.kind,
            "handler": self.handler,
            "calls": self.calls,
            "cum_seconds": self.cum,
            "self_seconds": self.self_time,
        }


class _Frame:
    """One open profiled activation (cheap: made once per hook entry)."""

    __slots__ = ("key", "start", "child")

    def __init__(self, key: BucketKey, start: float):
        self.key = key
        self.start = start
        self.child = 0.0


class _TreeNode:
    """Aggregated call-tree node: one bucket under one parent path."""

    __slots__ = ("key", "calls", "cum", "self_time", "children")

    def __init__(self, key: BucketKey):
        self.key = key
        self.calls = 0
        self.cum = 0.0
        self.self_time = 0.0
        self.children: Dict[BucketKey, "_TreeNode"] = {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node": self.key[0],
            "kind": self.key[1],
            "handler": self.key[2],
            "calls": self.calls,
            "cum_seconds": self.cum,
            "self_seconds": self.self_time,
            "children": [child.to_dict() for child in
                         sorted(self.children.values(),
                                key=lambda n: -n.cum)],
        }


class SimProfiler:
    """Attributes DES hot-loop wall time to (node, kind, handler) buckets.

    The profiler keeps an activation stack mirroring the call nesting of
    the instrumented layers.  :meth:`enter` opens a frame (returns
    ``None`` while disabled — callers pass whatever they got straight to
    :meth:`exit`), :meth:`exit` charges the bucket and the aggregated
    call tree.  ``Scheduler._step_profiled`` additionally accounts the
    *whole* loop iteration (heap pops included) into :attr:`loop_wall`,
    so ``attributed / loop_wall`` — :attr:`attribution` — measures how
    much of the hot loop the named buckets explain.

    *time_fn* defaults to :func:`time.perf_counter`; tests inject a fake
    clock for deterministic renderer goldens.
    """

    def __init__(self, scheduler, time_fn: Callable[[], float] = time.perf_counter):
        self.scheduler = scheduler
        self._time = time_fn
        self.enabled = True
        #: wall seconds spent inside top-level ``Scheduler.step`` calls
        #: (dispatch + heap maintenance); the attribution denominator
        self.loop_wall = 0.0
        #: wall seconds inside top-level profiled frames; the numerator
        self.attributed_wall = 0.0
        #: simulated seconds advanced while profiling
        self.sim_seconds = 0.0
        #: events dispatched while profiling
        self.events = 0
        self._buckets: Dict[BucketKey, ProfileBucket] = {}
        self._stack: List[_Frame] = []
        self._root = _TreeNode(("", "", "run"))
        self._tree_stack: List[_TreeNode] = [self._root]

    # -- hot path ----------------------------------------------------------

    def enter(self, node: str, kind: str, handler: str,
              start: Optional[float] = None) -> Optional[_Frame]:
        """Open a profiled frame; returns None while disabled.

        *start* backdates the frame (the scheduler passes the step's own
        start stamp so heap maintenance and key derivation count as part
        of the event they served, keeping attribution honest and high).
        """
        if not self.enabled:
            return None
        key = (node, kind, handler)
        parent = self._tree_stack[-1]
        tree_node = parent.children.get(key)
        if tree_node is None:
            tree_node = _TreeNode(key)
            parent.children[key] = tree_node
        self._tree_stack.append(tree_node)
        frame = _Frame(key, self._time() if start is None else start)
        self._stack.append(frame)
        return frame

    def exit(self, frame: Optional[_Frame]) -> None:
        """Close a frame from :meth:`enter` (no-op for ``None``)."""
        if frame is None:
            return
        elapsed = self._time() - frame.start
        self_time = elapsed - frame.child
        key = frame.key
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = ProfileBucket(*key)
            self._buckets[key] = bucket
        bucket.calls += 1
        bucket.cum += elapsed
        bucket.self_time += self_time
        tree_node = self._tree_stack.pop()
        tree_node.calls += 1
        tree_node.cum += elapsed
        tree_node.self_time += self_time
        stack = self._stack
        stack.pop()
        if stack:
            stack[-1].child += elapsed
        else:
            self.attributed_wall += elapsed

    def enter_event(self, callback: Callable, sim_delta: float,
                    start: Optional[float] = None) -> Optional[_Frame]:
        """Open the frame for one scheduler event dispatch.

        The bucket is derived from the callback: its owner's host (or
        name, or type) becomes the node, its qualname the handler.  The
        finer-grained layers (delivery, broker verbs, routed handlers)
        nest their own frames underneath, so a generic event frame's
        *self* time is pure dispatch overhead.
        """
        if not self.enabled:
            return None
        self.events += 1
        self.sim_seconds += sim_delta
        handler = getattr(callback, "__qualname__", None) or repr(callback)
        owner = getattr(callback, "__self__", None)
        if handler == "PeriodicTask._fire" and owner is not None:
            # attribute periodic work to the wrapped callback, not the
            # timer plumbing — "firmware sampling", not "PeriodicTask"
            inner = getattr(owner, "_callback", None)
            if inner is not None:
                callback = inner
                handler = getattr(callback, "__qualname__", None) \
                    or repr(callback)
                owner = getattr(callback, "__self__", None)
        node = ""
        if owner is not None:
            host = getattr(owner, "host", None)
            if host is not None:
                node = getattr(host, "name", "") or ""
            if not node:
                name = getattr(owner, "name", None)
                node = name if isinstance(name, str) and name \
                    else type(owner).__name__
        else:
            node = getattr(callback, "__module__", "") or "scheduler"
        return self.enter(node, "event", handler, start=start)

    def enter_delivery(self, recipient: str, port: str) -> Optional[_Frame]:
        """Open the frame for one transport delivery.

        Owns the :func:`port_family` collapse so the transport layer
        needs no import of this module (it would be circular).
        """
        if not self.enabled:
            return None
        return self.enter(recipient, "deliver", port_family(port))

    @property
    def in_frame(self) -> bool:
        """Whether a profiled frame is open (a nested ``step`` call)."""
        return bool(self._stack)

    # -- results -----------------------------------------------------------

    @property
    def attribution(self) -> float:
        """Fraction of hot-loop wall explained by named buckets."""
        if self.loop_wall <= 0.0:
            return 1.0
        return min(self.attributed_wall / self.loop_wall, 1.0)

    @property
    def sim_wall_ratio(self) -> float:
        """Simulated seconds per wall second of hot loop (the speedup)."""
        if self.loop_wall <= 0.0:
            return 0.0
        return self.sim_seconds / self.loop_wall

    def buckets(self) -> List[ProfileBucket]:
        """All buckets, largest self time first."""
        return sorted(self._buckets.values(), key=lambda b: -b.self_time)

    @property
    def tree(self) -> _TreeNode:
        """Root of the aggregated call tree (the synthetic ``run`` node)."""
        return self._root

    def reset(self) -> None:
        """Drop recorded data (open frames survive; counters restart)."""
        self.loop_wall = 0.0
        self.attributed_wall = 0.0
        self.sim_seconds = 0.0
        self.events = 0
        self._buckets.clear()
        self._root = _TreeNode(("", "", "run"))
        self._tree_stack = [self._root] + \
            [_TreeNode(frame.key) for frame in self._stack]


def install_profiler(network, time_fn: Callable[[], float] = time.perf_counter
                     ) -> SimProfiler:
    """Attach a :class:`SimProfiler` to *network* (idempotent).

    Sets both attachment points — ``network.profiler`` for the delivery
    and handler layers, ``scheduler.profiler`` for event dispatch — so
    one install covers the whole hot loop.
    """
    if getattr(network, "profiler", None) is None:
        profiler = SimProfiler(network.scheduler, time_fn=time_fn)
        network.profiler = profiler
        network.scheduler.profiler = profiler
    return network.profiler


def uninstall_profiler(network) -> None:
    """Detach the profiler; every hook reverts to the one None check."""
    network.profiler = None
    network.scheduler.profiler = None


# -- rendering ---------------------------------------------------------------


def _totals_line(profiler: SimProfiler) -> str:
    events_per_sec = profiler.events / profiler.loop_wall \
        if profiler.loop_wall > 0 else 0.0
    return (f"hot loop {profiler.loop_wall:.3f}s wall, "
            f"{profiler.attribution * 100:.1f}% attributed, "
            f"{profiler.events} events ({events_per_sec:,.0f}/s), "
            f"sim {profiler.sim_seconds:.1f}s "
            f"(x{profiler.sim_wall_ratio:,.1f} sim/wall)")


def render_profile_table(profiler: SimProfiler, top: int = 20) -> str:
    """Top-N buckets by self time, one line each."""
    lines = [f"sim profiler — {_totals_line(profiler)}",
             f"{'self(s)':>9s} {'cum(s)':>9s} {'calls':>9s} {'self%':>6s}"
             f"  bucket (node · kind · handler)"]
    total = max(profiler.loop_wall, 1e-12)
    buckets = profiler.buckets()
    for bucket in buckets[:top]:
        lines.append(
            f"{bucket.self_time:9.4f} {bucket.cum:9.4f} "
            f"{bucket.calls:9d} {bucket.self_time / total * 100:5.1f}%"
            f"  {bucket.label}"
        )
    if len(buckets) > top:
        rest = sum(b.self_time for b in buckets[top:])
        lines.append(f"{rest:9.4f} {'':>9s} {'':>9s} {'':>6s}"
                     f"  ... {len(buckets) - top} more buckets")
    return "\n".join(lines)


def render_profile_tree(profiler: SimProfiler, width: int = 32,
                        max_lines: int = 60, min_fraction: float = 0.005
                        ) -> str:
    """ASCII flame-style attribution tree.

    Same visual grammar as the trace waterfall
    (:func:`repro.observability.tracing.render_waterfall`): indentation
    is nesting, the bar is the share of total attributed wall, and the
    right columns print cumulative/self milliseconds and calls.
    Subtrees below *min_fraction* of the total are elided.
    """
    root = profiler.tree
    total = max(profiler.attributed_wall, 1e-12)
    lines = [f"sim profiler tree — {_totals_line(profiler)}"]
    emitted = [0]
    elided = [0]

    def bar(cum: float) -> str:
        fill = max(int(round(cum / total * width)), 1)
        fill = min(fill, width)
        return "#" * fill + " " * (width - fill)

    def walk(node: _TreeNode, depth: int) -> None:
        if emitted[0] >= max_lines:
            elided[0] += 1
            return
        if node.cum < total * min_fraction:
            elided[0] += 1
            return
        emitted[0] += 1
        label = "  " * depth + f"{node.key[0]} {node.key[1]} {node.key[2]}"
        lines.append(
            f"{label:<52.52s} |{bar(node.cum)}| "
            f"{node.cum * 1e3:9.2f}ms {node.self_time * 1e3:9.2f}ms "
            f"{node.calls:8d}x"
        )
        for child in sorted(node.children.values(), key=lambda n: -n.cum):
            walk(child, depth + 1)

    for child in sorted(root.children.values(), key=lambda n: -n.cum):
        walk(child, 0)
    if elided[0]:
        lines.append(f"... {elided[0]} subtrees below "
                     f"{min_fraction * 100:.1f}% elided")
    return "\n".join(lines)


def export_profile(profiler: SimProfiler) -> Dict[str, Any]:
    """JSON-able encoding of the whole profile (table + tree + totals)."""
    return {
        "loop_wall_seconds": profiler.loop_wall,
        "attributed_seconds": profiler.attributed_wall,
        "attribution": profiler.attribution,
        "sim_seconds": profiler.sim_seconds,
        "sim_wall_ratio": profiler.sim_wall_ratio,
        "events": profiler.events,
        "buckets": [bucket.to_dict() for bucket in profiler.buckets()],
        "tree": profiler.tree.to_dict(),
    }
