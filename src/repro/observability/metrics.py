"""Metrics registry: counters, gauges and percentile histograms.

The seed codebase grew ad-hoc counters wherever an experiment needed
one — attributes on the master, the broker stats dataclass, the
resilience policy, plus the benchmark-side sample recorder in
:mod:`repro.simulation.metrics`.  This module is the common substrate
under all of them: named instruments in a :class:`MetricsRegistry`,
snapshot-able as one flat dict and renderable as a text exposition
(the ``/metrics`` endpoints on master, proxies and the measurement DB
serve exactly that snapshot).

Three instrument types cover every existing use:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — a settable point-in-time value, optionally backed
  by a callback so component attributes (``master.registrations``,
  ``peer.buffered`` ...) can be exported live without rewriting them;
* :class:`Histogram` — sample collection with the percentile summary
  the benchmark tables already print (mean/p50/p90/p99/min/max).

The registry is pure bookkeeping on plain Python objects — no I/O, no
background tasks — so instruments are safe on the simulation hot path.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, QueryError


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value, set directly or pulled from a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str,
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Set the gauge (only for gauges without a callback)."""
        if self._fn is not None:
            raise ConfigurationError(
                f"gauge {self.name!r} is callback-backed"
            )
        self._value = float(value)

    @property
    def value(self) -> float:
        """Current value (callback gauges evaluate lazily)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value


#: default per-histogram sample cap — beyond this, reservoir sampling
#: keeps a uniform subset instead of growing without bound
DEFAULT_MAX_SAMPLES = 4096


class Histogram:
    """A named sample collection summarised by percentiles.

    Memory is bounded: once *max_samples* samples are held, further
    observations replace random kept ones (Algorithm R reservoir
    sampling), so the retained set stays a uniform sample of the whole
    stream and the percentile summary remains representative.  The
    replacement RNG is seeded from the metric name, keeping snapshots
    deterministic run to run.  ``count`` and ``stats()["count"]`` keep
    reporting the number *observed*, not the number retained, and
    ``samples_dropped`` says how many fell to the reservoir.
    """

    __slots__ = ("name", "values", "max_samples", "observed",
                 "samples_dropped", "_rng")

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES):
        if max_samples < 1:
            raise ConfigurationError(
                "histogram needs room for at least one sample"
            )
        self.name = name
        self.values: List[float] = []
        self.max_samples = max_samples
        self.observed = 0
        self.samples_dropped = 0
        self._rng: Optional[random.Random] = None

    def observe(self, value: float) -> None:
        """Record one sample (reservoir-downsampled past the cap)."""
        self.observed += 1
        if len(self.values) < self.max_samples:
            self.values.append(float(value))
            return
        if self._rng is None:
            self._rng = random.Random(
                zlib.crc32(self.name.encode()) & 0x7FFFFFFF
            )
        self.samples_dropped += 1
        slot = self._rng.randrange(self.observed)
        if slot < self.max_samples:
            self.values[slot] = float(value)

    @property
    def count(self) -> int:
        return self.observed

    def stats(self) -> Dict[str, float]:
        """Percentile summary; raises :class:`QueryError` when empty."""
        if not self.values:
            raise QueryError(f"no samples recorded for {self.name!r}")
        values = np.asarray(self.values, dtype=float)
        return {
            "count": self.observed,
            "mean": float(np.mean(values)),
            "p50": float(np.percentile(values, 50)),
            "p90": float(np.percentile(values, 90)),
            "p99": float(np.percentile(values, 99)),
            "minimum": float(np.min(values)),
            "maximum": float(np.max(values)),
        }


class MetricsRegistry:
    """Named instruments with get-or-create accessors.

    Instrument names are flat dot-separated strings
    (``master.registrations``, ``client.http.retries``); asking for an
    existing name with a different instrument type is an error, so two
    components cannot silently share one name with different meanings.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} is a "
                f"{type(instrument).__name__}, not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter called *name*."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the (directly set) gauge called *name*."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> Gauge:
        """Register a callback-backed gauge (re-registering rebinds).

        This is how existing attribute counters are exported without
        rewriting them: ``registry.gauge_fn("master.registrations",
        lambda: master.registrations)``.
        """
        gauge = Gauge(name, fn=fn)
        existing = self._instruments.get(name)
        if existing is not None and not isinstance(existing, Gauge):
            raise ConfigurationError(
                f"metric {name!r} is a {type(existing).__name__}, "
                f"not a Gauge"
            )
        self._instruments[name] = gauge
        return gauge

    def histogram(self, name: str,
                  max_samples: Optional[int] = None) -> Histogram:
        """Get or create the histogram called *name*.

        *max_samples* sets the reservoir cap when the histogram is
        first created; it is ignored on later lookups.
        """
        cap = max_samples if max_samples is not None \
            else DEFAULT_MAX_SAMPLES
        return self._get_or_create(name, Histogram,
                                   lambda: Histogram(name, cap))

    # -- queries -----------------------------------------------------------

    def get(self, name: str):
        """The instrument called *name*, or None."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        """Sorted instrument names."""
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Any]:
        """One flat JSON-able dict: scalars for counters/gauges,
        percentile dicts for histograms.

        An empty histogram still appears, as ``{"count": 0}`` — a
        scraper can then tell "no samples yet" from "metric missing".
        """
        result: Dict[str, Any] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                if instrument.values:
                    result[name] = instrument.stats()
                else:
                    result[name] = {"count": 0}
            else:
                result[name] = instrument.value
        return result

    def render(self) -> str:
        """Plain-text exposition, one ``name value`` line per scalar
        (histograms expand to ``name_count`` / ``name_p50`` / ...)."""
        lines: List[str] = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                for stat, number in value.items():
                    lines.append(f"{name}_{stat} {number}")
            else:
                lines.append(f"{name} {value}")
        return "\n".join(lines)
