"""Distributed tracing on the simulated clock.

A request that integrates a whole district crosses many hops — client →
master (resolve), client → each proxy (fetch), device-proxy → broker →
measurement DB (pub/sub) — and the end-to-end latency the benchmarks
report says nothing about *where* that time goes.  This module provides
the trace substrate: a :class:`TraceContext` (trace-id + span-id) that
components propagate in request headers and pub/sub envelopes, and a
:class:`Tracer` that records per-hop :class:`Span` objects timestamped
on the **simulated** clock.

Design constraints, in order:

* **Zero overhead when disabled.**  No tracer is installed by default
  (``network.tracer is None``); every instrumentation site is a single
  attribute load + ``None`` check, so seed behaviour and determinism
  are preserved bit-for-bit.
* **Deterministic ids.**  Trace and span ids come from counters, not
  randomness, so traces are reproducible for a fixed seed like
  everything else in the simulation.
* **Explicit propagation.**  The DES interleaves events from every
  host in one thread, so an ambient thread-local context would leak
  across hosts.  Context crosses process boundaries only inside
  message payloads (``payload["trace"]``), exactly like W3C
  ``traceparent`` headers; within one synchronous activation the
  tracer keeps an activation stack (:meth:`Tracer.span` /
  :meth:`Tracer.activate`).

Traces export as JSON-able trees (:meth:`Tracer.export`) and render as
an ASCII waterfall for terminals (:func:`render_waterfall`).
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.errors import ConfigurationError

#: span kinds, following the OpenTelemetry vocabulary where it fits
CLIENT = "client"
SERVER = "server"
PRODUCER = "producer"
CONSUMER = "consumer"
INTERNAL = "internal"


class TraceContext:
    """The propagated identity of a span: what crosses the wire.

    A plain ``__slots__`` class rather than a dataclass: one is decoded
    per traced hop, so construction cost is part of the tracing
    overhead budget.  Ids are small integers (deterministic counters),
    kept as integers end to end — formatting them would cost more than
    the rest of the propagation.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int):
        self.trace_id = trace_id
        self.span_id = span_id

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, TraceContext)
                and self.trace_id == other.trace_id
                and self.span_id == other.span_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id!r}, {self.span_id!r})"

    def to_dict(self) -> Dict[str, int]:
        """Wire encoding, embedded in request/publish payloads."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_dict(data: Any) -> Optional["TraceContext"]:
        """Decode a wire header; returns None for absent/garbled input."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not trace_id or not span_id:
            return None
        return TraceContext(trace_id, span_id)


@dataclass(frozen=True)
class SpanEvent:
    """A timestamped structured event attached to a span (or loose)."""

    name: str
    time: float
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "time": self.time,
                "attributes": dict(self.attributes)}


class Span:
    """One timed operation on one host, part of a trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "kind",
                 "host", "start", "end", "status", "attributes", "events")

    def __init__(self, trace_id: int, span_id: int,
                 parent_id: Optional[int], name: str, kind: str,
                 host: str, start: float,
                 attributes: Optional[Dict[str, Any]] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.host = host
        self.start = start
        self.end: Optional[float] = None  # None while the span is open
        self.status = "ok"
        # callers hand over fresh dicts, so adopt rather than copy —
        # span construction is on the traced-request hot path
        self.attributes: Dict[str, Any] = \
            attributes if attributes is not None else {}
        #: None until the first event lands (most spans never get one)
        self.events: Optional[List[SpanEvent]] = None

    @property
    def context(self) -> TraceContext:
        """This span's identity, for propagation to child hops."""
        return TraceContext(self.trace_id, self.span_id)

    def header(self) -> Dict[str, int]:
        """Wire encoding of this span's context (``context.to_dict()``
        without the intermediate object — hot-path helper)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated seconds from start to end (0.0 while open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def event(self, name: str, time: float, **attributes: Any) -> None:
        """Attach a structured event to this span."""
        if self.events is None:
            self.events = []
        self.events.append(SpanEvent(name=name, time=time,
                                     attributes=attributes))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able flat encoding of this span."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "host": self.host,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": [event.to_dict() for event in self.events or ()],
        }

    def __repr__(self) -> str:  # debugging aid, not part of the wire
        return (f"Span({self.name!r} kind={self.kind} host={self.host} "
                f"{self.start:.6f}..{self.end if self.end is not None else '?'}"
                f" trace={self.trace_id} id={self.span_id}"
                f" parent={self.parent_id})")


class Tracer:
    """Collects spans timestamped on one scheduler's simulated clock.

    The tracer holds an *activation stack*: the innermost active span of
    the code currently executing.  Synchronous client code pushes with
    the :meth:`span` context manager; server-side dispatch re-activates
    a span created earlier with :meth:`activate`.  New spans default
    their parent to the top of the stack, so nesting falls out of
    ordinary control flow; asynchronous hops pass an explicit
    :class:`TraceContext` instead.
    """

    def __init__(self, scheduler, max_spans: int = 1_000_000):
        if max_spans < 1:
            raise ConfigurationError("tracer needs room for >= 1 span")
        self.scheduler = scheduler
        # timestamping is 2 reads per span; going through the
        # scheduler.now -> clock.now property chain would double the
        # cost of the cheapest spans, so read the clock attribute
        self._clock = scheduler.clock
        self.enabled = True
        self.max_spans = max_spans
        #: spans recorded beyond max_spans are counted here, not stored
        self.spans_dropped = 0
        #: events emitted with no active span (e.g. a lease eviction
        #: from the master's periodic sweeper)
        self.loose_events: List[SpanEvent] = []
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # -- span lifecycle ----------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost active span, or None."""
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, kind: str = INTERNAL, host: str = "",
                   parent: Union[Span, TraceContext, None] = None,
                   start: Optional[float] = None,
                   attributes: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span; *parent* defaults to the current activation.

        Passing an explicit parent (a :class:`Span` or a decoded
        :class:`TraceContext`) links across asynchronous boundaries;
        with no parent and no activation, the span roots a new trace.

        Inheritance from the activation stack is gated on *host*: the
        DES runs every host's callbacks in one thread, so while a
        client's root span is active the scheduler may execute
        unrelated work on other hosts (device sampling, heartbeats).
        Those spans must root their own traces, not leak into the
        client's — cross-host linking is explicit-context only.
        """
        if parent is None:
            stack = self._stack
            active = stack[-1] if stack else None
            if active is not None and (not host or not active.host
                                       or active.host == host):
                parent = active
        if parent is not None:  # a Span or a decoded TraceContext
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = next(self._trace_ids)
            parent_id = None
        span = Span(
            trace_id, next(self._span_ids), parent_id, name, kind, host,
            self._clock._now if start is None else start, attributes,
        )
        if len(self._spans) >= self.max_spans:
            self.spans_dropped += 1
        else:
            self._spans.append(span)
        return span

    def finish(self, span: Span, status: Optional[str] = None,
               end: Optional[float] = None) -> Span:
        """Close *span* at *end* (default: now)."""
        if span.end is None:
            span.end = self._clock._now if end is None else end
        if status is not None:
            span.status = status
        return span

    @contextmanager
    def span(self, name: str, kind: str = INTERNAL, host: str = "",
             parent: Union[Span, TraceContext, None] = None,
             attributes: Optional[Dict[str, Any]] = None):
        """Start a span, activate it for the block, finish on exit."""
        opened = self.start_span(name, kind=kind, host=host, parent=parent,
                                 attributes=attributes)
        self._stack.append(opened)
        try:
            yield opened
        except BaseException:
            opened.status = "error"
            raise
        finally:
            self._stack.pop()
            self.finish(opened)

    @contextmanager
    def activate(self, span: Span):
        """Make an already-open span current for the block (no finish)."""
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    def push(self, span: Span) -> None:
        """Non-contextmanager activation for hot paths (pair with
        :meth:`pop` in a ``try``/``finally``)."""
        self._stack.append(span)

    def pop(self) -> None:
        """Undo the innermost :meth:`push`."""
        self._stack.pop()

    def event(self, name: str, host: str = "", **attributes: Any) -> None:
        """Record a structured event on the current span (or loose).

        *host* gates attachment like :meth:`start_span`'s parent
        inheritance: an event from one host never lands on another
        host's active span — it becomes a loose event instead.
        """
        now = self.scheduler.now
        span = self.current
        if span is not None and (not host or not span.host
                                 or span.host == host):
            span.event(name, now, **attributes)
        else:
            self.loose_events.append(
                SpanEvent(name=name, time=now, attributes=attributes)
            )

    # -- queries -----------------------------------------------------------

    def spans(self, trace_id: Optional[int] = None,
              name: Optional[str] = None) -> List[Span]:
        """Recorded spans, optionally filtered by trace and/or name."""
        result = self._spans
        if trace_id is not None:
            result = [s for s in result if s.trace_id == trace_id]
        if name is not None:
            result = [s for s in result if s.name == name]
        return list(result)

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in recording order."""
        seen: Dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of *span*, in start order."""
        kids = [s for s in self._spans
                if s.trace_id == span.trace_id
                and s.parent_id == span.span_id]
        kids.sort(key=lambda s: s.start)
        return kids

    def roots(self, trace_id: int) -> List[Span]:
        """Spans of one trace whose parent is absent (usually one)."""
        ids = {s.span_id for s in self._spans if s.trace_id == trace_id}
        return [s for s in self._spans if s.trace_id == trace_id
                and (s.parent_id is None or s.parent_id not in ids)]

    def events(self, name: Optional[str] = None) -> List[SpanEvent]:
        """Every structured event — span-attached and loose — by time."""
        collected = list(self.loose_events)
        for span in self._spans:
            if span.events:
                collected.extend(span.events)
        if name is not None:
            collected = [e for e in collected if e.name == name]
        collected.sort(key=lambda e: e.time)
        return collected

    def clear(self) -> None:
        """Drop every recorded span and event (activations survive)."""
        self._spans = [s for s in self._spans if not s.finished]
        self.loose_events.clear()
        self.spans_dropped = 0

    # -- export ------------------------------------------------------------

    def export(self, trace_id: int) -> Dict[str, Any]:
        """One trace as a JSON-able tree of spans."""

        def node(span: Span) -> Dict[str, Any]:
            encoded = span.to_dict()
            encoded["children"] = [node(child)
                                   for child in self.children_of(span)]
            return encoded

        return {
            "trace_id": trace_id,
            "spans": [node(root) for root in self.roots(trace_id)],
        }


def render_waterfall(tracer: Tracer, trace_id: int, width: int = 48,
                     max_spans: int = 60) -> str:
    """ASCII flame/waterfall of one trace for terminal output.

    Each line is one span: indentation shows parentage, the bar shows
    where the span sits inside the trace's [first-start, last-end]
    window, and the right column prints start offset and duration in
    milliseconds of simulated time.
    """
    roots = tracer.roots(trace_id)
    if not roots:
        return f"trace {trace_id}: no spans"
    spans = tracer.spans(trace_id)
    t0 = min(s.start for s in spans)
    t1 = max(s.end if s.end is not None else s.start for s in spans)
    total = max(t1 - t0, 1e-12)

    lines = [f"trace {trace_id} — {total * 1e3:.3f} ms, "
             f"{len(spans)} spans"]
    emitted = [0]

    def bar(span: Span) -> str:
        left = int(round((span.start - t0) / total * width))
        right = int(round(((span.end if span.end is not None else t1) - t0)
                          / total * width))
        left = min(left, width - 1)
        fill = max(right - left, 1)
        return " " * left + "#" * fill + " " * (width - left - fill)

    def walk(span: Span, depth: int) -> None:
        if emitted[0] >= max_spans:
            return
        emitted[0] += 1
        label = "  " * depth + f"{span.name} ({span.kind}@{span.host})"
        lines.append(
            f"{label:<44.44s} |{bar(span)}| "
            f"+{(span.start - t0) * 1e3:8.3f}ms "
            f"{span.duration * 1e3:8.3f}ms"
        )
        for child in tracer.children_of(span):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda s: s.start):
        walk(root, 0)
    if emitted[0] >= max_spans and len(spans) > max_spans:
        lines.append(f"... {len(spans) - max_spans} more spans elided")
    return "\n".join(lines)


def emit(network, name: str, host: str = "", **attributes: Any) -> None:
    """Emit a structured trace event if *network* has tracing enabled.

    The one-line guard used by instrumentation sites that only report
    events (resilience state changes) and never open spans themselves.
    Pass the emitting component's *host* so the event only attaches to
    an active span of the same host.
    """
    tracer = getattr(network, "tracer", None)
    if tracer is not None and tracer.enabled:
        tracer.event(name, host=host, **attributes)
