"""District ontology: the master node's tree of districts/entities/devices."""

from repro.ontology.model import (
    DeviceNode,
    DistrictNode,
    DistrictOntology,
    EntityNode,
)
from repro.ontology.queries import (
    AreaQuery,
    ResolvedArea,
    ResolvedDevice,
    ResolvedEntity,
    resolve,
)

__all__ = [
    "AreaQuery",
    "DeviceNode",
    "DistrictNode",
    "DistrictOntology",
    "EntityNode",
    "ResolvedArea",
    "ResolvedDevice",
    "ResolvedEntity",
    "resolve",
]
