"""The district ontology held by the master node.

Per the paper: "The ontology depicts the structure of one or more
districts, each one structured as a tree.  The root node of each tree
stores the global properties of the corresponding district (the name,
the URIs of the GIS Database-proxies' Web Services, etc.).  Under the
root node, intermediate nodes represent buildings or energy distribution
networks, with associated properties such as the BIM or SIM
Database-proxy Web Service URI, or the mapping of the system in the GIS
databases.  Each intermediate node has associated leaf nodes, which
represent the devices."

This module implements exactly that forest: districts -> entities
(buildings / networks) -> devices, where each node carries the proxy
Web-Service URIs and GIS mapping needed to *redirect* clients to data.

Each district root additionally maintains three **secondary indexes**
over its entities, kept incrementally consistent by the mutation API
(:meth:`DistrictNode.add_entity`, :meth:`DistrictNode.add_device`,
:meth:`DistrictNode.remove_device`, :meth:`DistrictNode.remove_entity`,
:meth:`DistrictNode.set_bounds`, :meth:`DistrictNode.replace_device`):

* an entity-type index (``building`` / ``network`` -> entity ids);
* a quantity -> entity inverted index (refcounted per device, so a
  device removal only unindexes a quantity when no sibling still
  senses it);
* a coarse spatial grid over the entities' cached GIS bounds, for
  bounding-box candidate pruning.

The indexes return candidate *supersets*: query evaluation
(:func:`repro.ontology.queries.resolve`) still applies the exact
predicates, so a coarse grid cell can never change an answer.  Code
that mutates an attached entity's devices or bounds directly (rather
than through the district methods) bypasses the indexes and may make
area queries miss entities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.identifiers import entity_kind
from repro.datasources.geometry import BoundingBox
from repro.errors import OntologyError, UnknownEntityError

#: side length (metres) of the coarse spatial-grid cells
GRID_CELL_SIZE = 100.0

#: a bbox spanning more grid cells than this skips the grid index
#: (scanning that many cells would cost more than the full entity walk)
_GRID_SCAN_CAP = 4096


def _grid_cells(bounds: BoundingBox) -> Iterable[Tuple[int, int]]:
    """The grid cells an axis-aligned box overlaps."""
    x0 = int(bounds.min_x // GRID_CELL_SIZE)
    x1 = int(bounds.max_x // GRID_CELL_SIZE)
    y0 = int(bounds.min_y // GRID_CELL_SIZE)
    y1 = int(bounds.max_y // GRID_CELL_SIZE)
    for cx in range(x0, x1 + 1):
        for cy in range(y0, y1 + 1):
            yield (cx, cy)


def _grid_cell_count(bounds: BoundingBox) -> int:
    x0 = int(bounds.min_x // GRID_CELL_SIZE)
    x1 = int(bounds.max_x // GRID_CELL_SIZE)
    y0 = int(bounds.min_y // GRID_CELL_SIZE)
    y1 = int(bounds.max_y // GRID_CELL_SIZE)
    return (x1 - x0 + 1) * (y1 - y0 + 1)


@dataclass
class DeviceNode:
    """Leaf node: one device, served by a Device-proxy."""

    device_id: str
    proxy_uri: str
    protocol: str
    quantities: Tuple[str, ...] = ()
    is_actuator: bool = False
    properties: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "device_id": self.device_id,
            "proxy_uri": self.proxy_uri,
            "protocol": self.protocol,
            "quantities": list(self.quantities),
            "is_actuator": self.is_actuator,
            "properties": dict(self.properties),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DeviceNode":
        return cls(
            device_id=data["device_id"],
            proxy_uri=data["proxy_uri"],
            protocol=data["protocol"],
            quantities=tuple(data.get("quantities", [])),
            is_actuator=bool(data.get("is_actuator", False)),
            properties=dict(data.get("properties", {})),
        )


@dataclass
class EntityNode:
    """Intermediate node: a building or distribution network."""

    entity_id: str
    entity_type: str  # building | network
    name: str = ""
    #: source kind (bim/sim/measurement) -> Database-proxy WS URI
    proxy_uris: Dict[str, str] = field(default_factory=dict)
    #: the entity's mapping into the GIS databases
    gis_feature_id: str = ""
    #: cached footprint bounds, for master-side area resolution
    bounds: Optional[BoundingBox] = None
    properties: Dict[str, object] = field(default_factory=dict)
    devices: Dict[str, DeviceNode] = field(default_factory=dict)

    def add_device(self, node: DeviceNode) -> None:
        if node.device_id in self.devices:
            raise OntologyError(
                f"device {node.device_id} already under {self.entity_id}"
            )
        self.devices[node.device_id] = node

    def to_dict(self) -> Dict:
        return {
            "entity_id": self.entity_id,
            "entity_type": self.entity_type,
            "name": self.name,
            "proxy_uris": dict(self.proxy_uris),
            "gis_feature_id": self.gis_feature_id,
            "bounds": self.bounds.to_list() if self.bounds else None,
            "properties": dict(self.properties),
            "devices": [d.to_dict() for d in self.devices.values()],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "EntityNode":
        bounds = data.get("bounds")
        node = cls(
            entity_id=data["entity_id"],
            entity_type=data["entity_type"],
            name=data.get("name", ""),
            proxy_uris=dict(data.get("proxy_uris", {})),
            gis_feature_id=data.get("gis_feature_id", ""),
            bounds=BoundingBox.from_list(bounds) if bounds else None,
            properties=dict(data.get("properties", {})),
        )
        for device_data in data.get("devices", []):
            node.add_device(DeviceNode.from_dict(device_data))
        return node


@dataclass
class DistrictNode:
    """Root node: one district's global properties and entities."""

    district_id: str
    name: str = ""
    #: URIs of the district's GIS Database-proxy Web Services
    gis_uris: List[str] = field(default_factory=list)
    #: URIs of the district's global measurement databases
    measurement_uris: List[str] = field(default_factory=list)
    properties: Dict[str, object] = field(default_factory=dict)
    entities: Dict[str, EntityNode] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # secondary indexes, maintained incrementally by the mutation
        # API below; never serialized (rebuilt entity-by-entity on load)
        self._by_type: Dict[str, Set[str]] = {}
        self._by_quantity: Dict[str, Dict[str, int]] = {}
        self._grid: Dict[Tuple[int, int], Set[str]] = {}
        for entity in self.entities.values():
            self._index_entity(entity)

    def add_entity(self, node: EntityNode) -> None:
        if node.entity_id in self.entities:
            raise OntologyError(
                f"entity {node.entity_id} already in {self.district_id}"
            )
        self.entities[node.entity_id] = node
        self._index_entity(node)

    def remove_entity(self, entity_id: str) -> EntityNode:
        """Detach one entity subtree, unindexing it."""
        node = self.entity(entity_id)
        del self.entities[entity_id]
        self._unindex_entity(node)
        return node

    def add_device(self, entity_id: str, device: DeviceNode) -> None:
        """Attach a device leaf under an entity, indexing its quantities."""
        self.entity(entity_id).add_device(device)
        self._index_quantities(entity_id, device)

    def replace_device(self, entity_id: str, device: DeviceNode) -> None:
        """Swap a device leaf in place (heartbeat refresh), re-indexing."""
        entity = self.entity(entity_id)
        old = entity.devices.get(device.device_id)
        if old is not None:
            self._unindex_quantities(entity_id, old)
        entity.devices[device.device_id] = device
        self._index_quantities(entity_id, device)

    def remove_device(self, entity_id: str,
                      device_id: str) -> Optional[DeviceNode]:
        """Detach a device leaf, unindexing its quantities."""
        entity = self.entity(entity_id)
        node = entity.devices.pop(device_id, None)
        if node is not None:
            self._unindex_quantities(entity_id, node)
        return node

    def set_bounds(self, entity_id: str,
                   bounds: Optional[BoundingBox]) -> None:
        """Update an entity's cached footprint, re-gridding it."""
        entity = self.entity(entity_id)
        if entity.bounds is not None:
            self._grid_remove(entity.entity_id, entity.bounds)
        entity.bounds = bounds
        if bounds is not None:
            self._grid_add(entity.entity_id, bounds)

    def entity(self, entity_id: str) -> EntityNode:
        try:
            return self.entities[entity_id]
        except KeyError:
            raise UnknownEntityError(
                f"no entity {entity_id!r} in district {self.district_id}"
            ) from None

    # -- secondary indexes ------------------------------------------------

    def _index_entity(self, node: EntityNode) -> None:
        self._by_type.setdefault(node.entity_type, set()).add(node.entity_id)
        for device in node.devices.values():
            self._index_quantities(node.entity_id, device)
        if node.bounds is not None:
            self._grid_add(node.entity_id, node.bounds)

    def _unindex_entity(self, node: EntityNode) -> None:
        ids = self._by_type.get(node.entity_type)
        if ids is not None:
            ids.discard(node.entity_id)
            if not ids:
                del self._by_type[node.entity_type]
        for device in node.devices.values():
            self._unindex_quantities(node.entity_id, device)
        if node.bounds is not None:
            self._grid_remove(node.entity_id, node.bounds)

    def _index_quantities(self, entity_id: str, device: DeviceNode) -> None:
        for quantity in device.quantities:
            owners = self._by_quantity.setdefault(quantity, {})
            owners[entity_id] = owners.get(entity_id, 0) + 1

    def _unindex_quantities(self, entity_id: str,
                            device: DeviceNode) -> None:
        for quantity in device.quantities:
            owners = self._by_quantity.get(quantity)
            if owners is None:
                continue
            count = owners.get(entity_id, 0) - 1
            if count > 0:
                owners[entity_id] = count
            else:
                owners.pop(entity_id, None)
                if not owners:
                    del self._by_quantity[quantity]

    def _grid_add(self, entity_id: str, bounds: BoundingBox) -> None:
        for cell in _grid_cells(bounds):
            self._grid.setdefault(cell, set()).add(entity_id)

    def _grid_remove(self, entity_id: str, bounds: BoundingBox) -> None:
        for cell in _grid_cells(bounds):
            ids = self._grid.get(cell)
            if ids is not None:
                ids.discard(entity_id)
                if not ids:
                    del self._grid[cell]

    def entity_ids_of_type(self, entity_type: str) -> Set[str]:
        """Entity ids of one type (index lookup; do not mutate)."""
        return self._by_type.get(entity_type, set())

    def entity_ids_with_quantity(self, quantity: str) -> Set[str]:
        """Entity ids owning >= 1 device sensing *quantity*."""
        return set(self._by_quantity.get(quantity, ()))

    def entity_ids_in_bbox(self, bbox: BoundingBox) -> Optional[Set[str]]:
        """Candidate entity ids whose bounds may intersect *bbox*.

        A superset: grid cells are coarse, so callers must still apply
        the exact ``intersects`` predicate.  Returns None when the box
        spans so many cells that scanning them would cost more than the
        full entity walk (the planner then skips this index).
        """
        if _grid_cell_count(bbox) > _GRID_SCAN_CAP:
            return None
        candidates: Set[str] = set()
        for cell in _grid_cells(bbox):
            ids = self._grid.get(cell)
            if ids:
                candidates |= ids
        return candidates

    def to_dict(self) -> Dict:
        return {
            "district_id": self.district_id,
            "name": self.name,
            "gis_uris": list(self.gis_uris),
            "measurement_uris": list(self.measurement_uris),
            "properties": dict(self.properties),
            "entities": [e.to_dict() for e in self.entities.values()],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DistrictNode":
        node = cls(
            district_id=data["district_id"],
            name=data.get("name", ""),
            gis_uris=list(data.get("gis_uris", [])),
            measurement_uris=list(data.get("measurement_uris", [])),
            properties=dict(data.get("properties", {})),
        )
        for entity_data in data.get("entities", []):
            node.add_entity(EntityNode.from_dict(entity_data))
        return node


class DistrictOntology:
    """The master node's forest of district trees."""

    def __init__(self) -> None:
        self._districts: Dict[str, DistrictNode] = {}

    # -- construction -------------------------------------------------------

    def add_district(self, district_id: str, name: str = "") -> DistrictNode:
        """Create a district root; duplicates are an error."""
        if entity_kind(district_id) != "district":
            raise OntologyError(f"{district_id!r} is not a district id")
        if district_id in self._districts:
            raise OntologyError(f"district {district_id!r} already exists")
        node = DistrictNode(district_id, name)
        self._districts[district_id] = node
        return node

    def add_entity(self, district_id: str, entity: EntityNode) -> EntityNode:
        """Attach a building/network under a district root."""
        kind = entity_kind(entity.entity_id)
        if kind not in ("building", "network"):
            raise OntologyError(
                f"{entity.entity_id!r} is not a building or network id"
            )
        if entity.entity_type not in ("building", "network"):
            raise OntologyError(
                f"bad entity type {entity.entity_type!r}"
            )
        self.district(district_id).add_entity(entity)
        return entity

    def add_device(self, district_id: str, entity_id: str,
                   device: DeviceNode) -> DeviceNode:
        """Attach a device leaf under an entity node."""
        if entity_kind(device.device_id) != "device":
            raise OntologyError(f"{device.device_id!r} is not a device id")
        self.district(district_id).add_device(entity_id, device)
        return device

    # -- lookups --------------------------------------------------------------

    def district(self, district_id: str) -> DistrictNode:
        try:
            return self._districts[district_id]
        except KeyError:
            raise UnknownEntityError(
                f"no district {district_id!r} in ontology"
            ) from None

    def districts(self) -> List[DistrictNode]:
        return list(self._districts.values())

    def find_entity(self, entity_id: str) -> Tuple[DistrictNode, EntityNode]:
        """Locate an entity across all districts."""
        for district in self._districts.values():
            if entity_id in district.entities:
                return district, district.entities[entity_id]
        raise UnknownEntityError(f"no entity {entity_id!r} in ontology")

    def find_device(self, device_id: str
                    ) -> Tuple[DistrictNode, EntityNode, DeviceNode]:
        """Locate a device leaf across all districts."""
        for district in self._districts.values():
            for entity in district.entities.values():
                if device_id in entity.devices:
                    return district, entity, entity.devices[device_id]
        raise UnknownEntityError(f"no device {device_id!r} in ontology")

    def node_count(self) -> int:
        """Total nodes in the forest (roots + entities + devices)."""
        total = len(self._districts)
        for district in self._districts.values():
            total += len(district.entities)
            total += sum(len(e.devices) for e in district.entities.values())
        return total

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict:
        return {"districts": [d.to_dict() for d in
                              self._districts.values()]}

    @classmethod
    def from_dict(cls, data: Dict) -> "DistrictOntology":
        ontology = cls()
        for district_data in data.get("districts", []):
            node = DistrictNode.from_dict(district_data)
            if node.district_id in ontology._districts:
                raise OntologyError(
                    f"duplicate district {node.district_id!r}"
                )
            ontology._districts[node.district_id] = node
        return ontology
