"""Area queries and their resolution against the ontology.

"When the end-user application queries the master node for a particular
area of the district, the master node refers to the ontology and returns
the URIs of the proxies' Web Services for the interested entities in the
area, accompanied with additional information."

An :class:`AreaQuery` selects entities of one district by any mix of:
explicit entity ids, a geographic bounding box (matched against the
cached GIS bounds on each entity node), entity type, and sensed
quantity.  :func:`resolve` evaluates it and produces the
:class:`ResolvedArea` the master returns — URIs only, never data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasources.geometry import BoundingBox
from repro.errors import QueryError
from repro.ontology.model import DistrictOntology, EntityNode

ENTITY_TYPES = ("building", "network")


@dataclass(frozen=True)
class AreaQuery:
    """A client's selection of district entities."""

    district_id: str
    entity_ids: Tuple[str, ...] = ()
    bbox: Optional[BoundingBox] = None
    entity_type: Optional[str] = None
    quantity: Optional[str] = None

    def __post_init__(self) -> None:
        if self.entity_type is not None and \
                self.entity_type not in ENTITY_TYPES:
            raise QueryError(f"unknown entity type {self.entity_type!r}")

    def to_params(self) -> Dict[str, str]:
        """Flat string params for the master's resolve endpoint."""
        params = {"district_id": self.district_id}
        if self.entity_ids:
            params["entity_ids"] = ",".join(self.entity_ids)
        if self.bbox is not None:
            params["bbox"] = ",".join(repr(v) for v in self.bbox.to_list())
        if self.entity_type is not None:
            params["entity_type"] = self.entity_type
        if self.quantity is not None:
            params["quantity"] = self.quantity
        return params

    @classmethod
    def from_params(cls, params: Dict[str, str]) -> "AreaQuery":
        try:
            district_id = params["district_id"]
        except KeyError:
            raise QueryError("missing district_id parameter") from None
        bbox_raw = params.get("bbox")
        bbox = None
        if bbox_raw:
            try:
                bbox = BoundingBox.from_list(
                    [float(v) for v in bbox_raw.split(",")]
                )
            except (ValueError, TypeError):
                raise QueryError(f"bad bbox parameter {bbox_raw!r}") \
                    from None
        ids_raw = params.get("entity_ids", "")
        return cls(
            district_id=district_id,
            entity_ids=tuple(i for i in ids_raw.split(",") if i),
            bbox=bbox,
            entity_type=params.get("entity_type") or None,
            quantity=params.get("quantity") or None,
        )


@dataclass(frozen=True)
class ResolvedDevice:
    """Device leaf information returned to the client."""

    device_id: str
    proxy_uri: str
    protocol: str
    quantities: Tuple[str, ...]
    is_actuator: bool

    def to_dict(self) -> Dict:
        return {
            "device_id": self.device_id,
            "proxy_uri": self.proxy_uri,
            "protocol": self.protocol,
            "quantities": list(self.quantities),
            "is_actuator": self.is_actuator,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ResolvedDevice":
        return cls(
            device_id=data["device_id"],
            proxy_uri=data["proxy_uri"],
            protocol=data["protocol"],
            quantities=tuple(data.get("quantities", [])),
            is_actuator=bool(data.get("is_actuator", False)),
        )


@dataclass(frozen=True)
class ResolvedEntity:
    """One matched entity with the URIs a client needs to fetch its data."""

    entity_id: str
    entity_type: str
    name: str
    proxy_uris: Dict[str, str]
    gis_feature_id: str
    devices: Tuple[ResolvedDevice, ...]

    def to_dict(self) -> Dict:
        return {
            "entity_id": self.entity_id,
            "entity_type": self.entity_type,
            "name": self.name,
            "proxy_uris": dict(self.proxy_uris),
            "gis_feature_id": self.gis_feature_id,
            "devices": [d.to_dict() for d in self.devices],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ResolvedEntity":
        return cls(
            entity_id=data["entity_id"],
            entity_type=data["entity_type"],
            name=data.get("name", ""),
            proxy_uris=dict(data.get("proxy_uris", {})),
            gis_feature_id=data.get("gis_feature_id", ""),
            devices=tuple(
                ResolvedDevice.from_dict(d) for d in data.get("devices", [])
            ),
        )


@dataclass(frozen=True)
class ResolvedArea:
    """The master's answer: redirections, not data."""

    district_id: str
    district_name: str
    gis_uris: Tuple[str, ...]
    measurement_uris: Tuple[str, ...]
    entities: Tuple[ResolvedEntity, ...]

    @property
    def entity_ids(self) -> List[str]:
        return [e.entity_id for e in self.entities]

    @property
    def device_count(self) -> int:
        return sum(len(e.devices) for e in self.entities)

    def to_dict(self) -> Dict:
        return {
            "district_id": self.district_id,
            "district_name": self.district_name,
            "gis_uris": list(self.gis_uris),
            "measurement_uris": list(self.measurement_uris),
            "entities": [e.to_dict() for e in self.entities],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ResolvedArea":
        return cls(
            district_id=data["district_id"],
            district_name=data.get("district_name", ""),
            gis_uris=tuple(data.get("gis_uris", [])),
            measurement_uris=tuple(data.get("measurement_uris", [])),
            entities=tuple(
                ResolvedEntity.from_dict(e) for e in data.get("entities", [])
            ),
        )


def _matches(entity: EntityNode, query: AreaQuery) -> bool:
    if query.entity_ids and entity.entity_id not in query.entity_ids:
        return False
    if query.entity_type is not None and \
            entity.entity_type != query.entity_type:
        return False
    if query.bbox is not None:
        if entity.bounds is None:
            return False
        if not entity.bounds.intersects(query.bbox):
            return False
    if query.quantity is not None:
        if not any(query.quantity in d.quantities
                   for d in entity.devices.values()):
            return False
    return True


def _device_matches(device_quantities: Sequence[str],
                    query: AreaQuery) -> bool:
    if query.quantity is None:
        return True
    return query.quantity in device_quantities


def _candidate_entities(district, query: AreaQuery):
    """Plan the entity scan: prune candidates via the secondary indexes.

    Intersects every applicable index (explicit ids, entity type,
    quantity inverted index, spatial grid) and walks only the surviving
    ids; each index yields a superset of the exact answer, so
    :func:`_matches` still applies the full predicates.  With no
    applicable index (a whole-district query) every entity is scanned,
    as before.
    """
    sets = []
    if query.entity_ids:
        sets.append({i for i in query.entity_ids if i in district.entities})
    if query.entity_type is not None:
        sets.append(district.entity_ids_of_type(query.entity_type))
    if query.quantity is not None:
        sets.append(district.entity_ids_with_quantity(query.quantity))
    if query.bbox is not None:
        grid_ids = district.entity_ids_in_bbox(query.bbox)
        if grid_ids is not None:
            sets.append(grid_ids)
    if not sets:
        return district.entities.values()
    candidates = set.intersection(*sorted(sets, key=len))
    if len(candidates) == len(district.entities):
        return district.entities.values()
    # filter over the insertion-ordered dict keeps answer order stable
    return [entity for entity_id, entity in district.entities.items()
            if entity_id in candidates]


def resolve(ontology: DistrictOntology, query: AreaQuery) -> ResolvedArea:
    """Evaluate an area query against the ontology.

    Raises :class:`~repro.errors.UnknownEntityError` for an unknown
    district; an empty result (no matching entities) is a valid answer.
    """
    district = ontology.district(query.district_id)
    matched: List[ResolvedEntity] = []
    for entity in _candidate_entities(district, query):
        if not _matches(entity, query):
            continue
        devices = tuple(
            ResolvedDevice(
                device_id=d.device_id,
                proxy_uri=d.proxy_uri,
                protocol=d.protocol,
                quantities=d.quantities,
                is_actuator=d.is_actuator,
            )
            for d in entity.devices.values()
            if _device_matches(d.quantities, query)
        )
        matched.append(ResolvedEntity(
            entity_id=entity.entity_id,
            entity_type=entity.entity_type,
            name=entity.name,
            proxy_uris=dict(entity.proxy_uris),
            gis_feature_id=entity.gis_feature_id,
            devices=devices,
        ))
    return ResolvedArea(
        district_id=district.district_id,
        district_name=district.name,
        gis_uris=tuple(district.gis_uris),
        measurement_uris=tuple(district.measurement_uris),
        entities=tuple(matched),
    )
