"""Synthetic district generator.

Replaces the paper's DIMMER test site: builds a whole coherent district
— GIS features, one BIM export per building, one SIM export per
distribution network, and the field-device fleet — from a seed, so
every experiment can sweep district size deterministically.

The generator also records the *deployment knowledge* (which entity id
each source describes, which load profile feeds each meter) that in
reality lives with the system integrator.  Native stores only contain
their own keys (GlobalIds, cadastral ids, feature ids); the framework
must join them, which is the point of the exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.common.identifiers import make_entity_id
from repro.datasources import geometry
from repro.datasources.bim import BimStore, build_office_bim
from repro.datasources.gis import (
    LAYER_BOUNDARY,
    LAYER_BUILDINGS,
    LAYER_ROUTES,
    GisStore,
)
from repro.datasources.sim import (
    COMMODITY_ELECTRICITY,
    COMMODITY_HEAT,
    NODE_CONSUMER,
    NODE_JUNCTION,
    NODE_PLANT,
    SimStore,
)
from repro.devices.profiles import (
    Profile,
    WeatherProfile,
    office_building_load,
    residential_building_load,
)
from repro.errors import ConfigurationError

#: device kinds the generator deploys and the protocols each may use
_DEVICE_PROTOCOLS = {
    "power_meter": ("zigbee", "ieee802154"),
    "environment_sensor": ("enocean", "zigbee", "ble"),
    "occupancy_sensor": ("enocean", "ble"),
    "smart_plug": ("zigbee", "coap"),
    "hvac_controller": ("opcua", "zigbee", "coap"),
    "dimmable_light": ("ieee802154", "coap"),
    "pv_inverter": ("opcua",),
    "heat_flow_meter": ("opcua",),
}


@dataclass
class DeviceSpec:
    """Deployment record for one field device."""

    device_id: str
    kind: str
    protocol: str
    address: str
    entity_id: str
    location: str = ""
    params: Dict[str, object] = field(default_factory=dict)


@dataclass
class BuildingSpec:
    """Deployment record for one building and its data sources."""

    entity_id: str
    name: str
    use: str  # office | residential
    cadastral_id: str
    feature_id: str
    floor_area_m2: float
    bim: BimStore
    load_profile: Profile
    devices: List[DeviceSpec] = field(default_factory=list)


@dataclass
class NetworkSpec:
    """Deployment record for one distribution network."""

    entity_id: str
    name: str
    commodity: str
    sim: SimStore
    devices: List[DeviceSpec] = field(default_factory=list)


@dataclass
class DistrictDataset:
    """Everything the scenario builder needs to deploy one district."""

    district_id: str
    name: str
    seed: int
    gis: GisStore
    weather: Profile
    buildings: List[BuildingSpec]
    networks: List[NetworkSpec]

    @property
    def devices(self) -> List[DeviceSpec]:
        """Every device across buildings and networks."""
        out: List[DeviceSpec] = []
        for building in self.buildings:
            out.extend(building.devices)
        for network in self.networks:
            out.extend(network.devices)
        return out

    def building(self, entity_id: str) -> BuildingSpec:
        """Look up a building spec by entity id."""
        for spec in self.buildings:
            if spec.entity_id == entity_id:
                return spec
        raise ConfigurationError(f"no building {entity_id!r} in dataset")

    def network(self, entity_id: str) -> NetworkSpec:
        """Look up a network spec by entity id."""
        for spec in self.networks:
            if spec.entity_id == entity_id:
                return spec
        raise ConfigurationError(f"no network {entity_id!r} in dataset")


class _AddressAllocator:
    """Mints protocol-native device addresses, unique per protocol."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def next(self, protocol: str, kind: str) -> str:
        index = self._counters.get(protocol, 0) + 1
        self._counters[protocol] = index
        if protocol == "ieee802154":
            return f"0x{index:04x}"
        if protocol == "zigbee":
            high = (index >> 8) & 0xFF
            low = index & 0xFF
            return f"00:12:4b:00:00:00:{high:02x}:{low:02x}"
        if protocol == "enocean":
            return f"{0x01000000 + index:08x}"
        if protocol == "opcua":
            return f"PLC{index:03d}.{kind.title().replace('_', '')}"
        if protocol == "coap":
            return f"fd00::{0x100 + index:x}"
        if protocol == "ble":
            high = (index >> 8) & 0xFF
            low = index & 0xFF
            return f"c4:7c:8d:00:{high:02x}:{low:02x}"
        raise ConfigurationError(f"unknown protocol {protocol!r}")


def synthesize_district(
    seed: int = 0,
    n_buildings: int = 8,
    devices_per_building: int = 5,
    n_networks: int = 1,
    district_index: int = 1,
    office_fraction: float = 0.5,
    block_size_m: float = 80.0,
) -> DistrictDataset:
    """Generate a coherent synthetic district.

    Buildings are laid out on a street grid; each gets a BIM export, a
    GIS footprint keyed by cadastral id, a composite load profile and a
    device fleet of ``devices_per_building`` devices (a power meter
    first, then a rotating mix).  Networks get a SIM export whose
    service points cover the buildings, a GIS route, and a substation
    meter per consumer.
    """
    if n_buildings < 1:
        raise ConfigurationError("district needs at least one building")
    if devices_per_building < 1:
        raise ConfigurationError("buildings need at least one device")
    if n_networks < 0:
        raise ConfigurationError("network count cannot be negative")
    rng = np.random.RandomState(seed)
    district_id = make_entity_id("dst", district_index)
    name = f"District {district_index:02d}"
    gis = GisStore(name)
    weather = WeatherProfile(seed=seed)
    allocator = _AddressAllocator()

    grid = int(np.ceil(np.sqrt(n_buildings)))
    buildings: List[BuildingSpec] = []
    for index in range(n_buildings):
        row, col = divmod(index, grid)
        cx = (col + 0.5) * block_size_m
        cy = (row + 0.5) * block_size_m
        use = "office" if rng.random_sample() < office_fraction \
            else "residential"
        entity_id = make_entity_id("bld", index + 1)
        cadastral_id = f"TO-{district_index:02d}-{1000 + index}"
        storeys = int(rng.randint(2, 8))
        footprint_w = float(rng.uniform(18.0, 40.0))
        footprint_h = float(rng.uniform(14.0, 32.0))
        floor_area = footprint_w * footprint_h * storeys
        footprint = geometry.rectangle(cx, cy, footprint_w, footprint_h)
        feature = gis.add_feature(LAYER_BUILDINGS, footprint, {
            "cadastral_id": cadastral_id,
            "address": f"Via Sintetica {index + 1}",
            "height_m": storeys * 3.2,
            "use": use,
        })
        bim = build_office_bim(
            rng, f"Building {index + 1}", storeys,
            spaces_per_storey=int(rng.randint(2, 6)),
            floor_area_m2=floor_area,
            cadastral_id=cadastral_id,
            year_built=int(rng.randint(1950, 2014)),
            use=use,
        )
        if use == "office":
            load = office_building_load(floor_area, weather, seed=seed + index)
        else:
            units = max(2, int(floor_area / 85.0))
            load = residential_building_load(units, weather,
                                             seed=seed + index)
        spec = BuildingSpec(
            entity_id=entity_id,
            name=f"Building {index + 1}",
            use=use,
            cadastral_id=cadastral_id,
            feature_id=feature.feature_id,
            floor_area_m2=floor_area,
            bim=bim,
            load_profile=load,
        )
        spec.devices = _building_devices(
            rng, allocator, spec, devices_per_building, weather, seed + index
        )
        buildings.append(spec)

    boundary = gis.district_bounds().expanded(block_size_m / 2.0)
    gis.add_feature(LAYER_BOUNDARY, geometry.polygon([
        (boundary.min_x, boundary.min_y), (boundary.max_x, boundary.min_y),
        (boundary.max_x, boundary.max_y), (boundary.min_x, boundary.max_y),
    ]), {"name": name})

    networks: List[NetworkSpec] = []
    for net_index in range(n_networks):
        commodity = COMMODITY_HEAT if net_index % 2 == 0 \
            else COMMODITY_ELECTRICITY
        entity_id = make_entity_id("net", net_index + 1)
        served = [b for i, b in enumerate(buildings)
                  if i % max(n_networks, 1) == net_index] or buildings[:1]
        sim, route_points = _build_network(
            rng, f"Network {net_index + 1}", commodity, served, gis
        )
        gis.add_feature(LAYER_ROUTES, geometry.linestring(route_points), {
            "network": f"Network {net_index + 1}",
            "commodity": commodity,
        })
        spec = NetworkSpec(
            entity_id=entity_id,
            name=f"Network {net_index + 1}",
            commodity=commodity,
            sim=sim,
        )
        spec.devices = _network_devices(rng, allocator, spec, seed + net_index)
        networks.append(spec)

    return DistrictDataset(
        district_id=district_id,
        name=name,
        seed=seed,
        gis=gis,
        weather=weather,
        buildings=buildings,
        networks=networks,
    )


def _pick_protocol(rng: np.random.RandomState, kind: str) -> str:
    options = _DEVICE_PROTOCOLS[kind]
    return options[int(rng.randint(0, len(options)))]


def _building_devices(rng: np.random.RandomState,
                      allocator: _AddressAllocator, building: BuildingSpec,
                      count: int, weather: Profile, seed: int
                      ) -> List[DeviceSpec]:
    # every building leads with its feeder power meter; the rest rotate
    rotation = ("environment_sensor", "smart_plug", "hvac_controller",
                "occupancy_sensor", "dimmable_light", "pv_inverter")
    kinds = ["power_meter"]
    for i in range(count - 1):
        kinds.append(rotation[i % len(rotation)])
    devices: List[DeviceSpec] = []
    for index, kind in enumerate(kinds):
        protocol = _pick_protocol(rng, kind)
        device_id = make_entity_id(
            "dev", _global_device_index(building.entity_id, index)
        )
        devices.append(DeviceSpec(
            device_id=device_id,
            kind=kind,
            protocol=protocol,
            address=allocator.next(protocol, kind),
            entity_id=building.entity_id,
            location=f"{building.name}/unit-{index}",
            params={"seed": seed + index},
        ))
    return devices


def _network_devices(rng: np.random.RandomState,
                     allocator: _AddressAllocator, network: NetworkSpec,
                     seed: int) -> List[DeviceSpec]:
    devices: List[DeviceSpec] = []
    for index, node in enumerate(network.sim.nodes(NODE_CONSUMER)):
        protocol = _pick_protocol(rng, "heat_flow_meter")
        device_id = make_entity_id(
            "dev", _global_device_index(network.entity_id, index)
        )
        devices.append(DeviceSpec(
            device_id=device_id,
            kind="heat_flow_meter",
            protocol=protocol,
            address=allocator.next(protocol, "heat_flow_meter"),
            entity_id=network.entity_id,
            location=f"{network.name}/substation-{node['node_id']}",
            params={"seed": seed + index},
        ))
    return devices


def _global_device_index(entity_id: str, local_index: int) -> int:
    """Unique device index derived from the owning entity.

    Entity ids are ``bld-%04d`` / ``net-%04d``; buildings use slots
    ``N*100 + 0..49`` and networks ``N*100 + 50..99``, so ids stay
    unique for up to 50 devices per entity (far above our deployments).
    """
    prefix, number = entity_id.split("-")
    base = int(number) * 100
    if prefix == "net":
        base += 50
    return base + local_index


def _build_network(rng: np.random.RandomState, name: str, commodity: str,
                   served: List[BuildingSpec], gis: GisStore):
    sim = SimStore(name, commodity)
    plant_x = -60.0
    plant_y = -60.0
    sim.add_node("n-plant", NODE_PLANT, plant_x, plant_y,
                 capacity_kw=float(rng.uniform(500, 5000)))
    route_points = [(plant_x, plant_y)]
    previous = "n-plant"
    for index, building in enumerate(served):
        centroid = gis.feature(building.feature_id).geometry.centroid()
        junction_id = f"n-j{index}"
        sim.add_node(junction_id, NODE_JUNCTION, centroid[0],
                     plant_y if index == 0 else centroid[1] - 20.0)
        consumer_id = f"n-c{index}"
        sim.add_node(consumer_id, NODE_CONSUMER, centroid[0], centroid[1],
                     capacity_kw=float(rng.uniform(20, 200)))
        trunk_length = float(np.hypot(
            centroid[0] - route_points[-1][0],
            centroid[1] - route_points[-1][1],
        )) or 1.0
        sim.add_edge(f"e-t{index}", previous, junction_id,
                     length_m=trunk_length,
                     rating=float(rng.uniform(100, 1000)))
        sim.add_edge(f"e-s{index}", junction_id, consumer_id,
                     length_m=20.0, rating=float(rng.uniform(20, 200)))
        sim.add_service_point(consumer_id, building.cadastral_id)
        route_points.append((centroid[0], centroid[1]))
        previous = junction_id
    return sim, route_points
