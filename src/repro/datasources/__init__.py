"""Heterogeneous district data sources: BIM, SIM, GIS, and the generator.

Each store keeps its *native* schema (IFC-style records, utility asset
tables, WKT feature layers) precisely so the Database-proxies have real
translation work to do.
"""

from repro.datasources.bim import BimStore, build_office_bim, make_guid
from repro.datasources.generators import (
    BuildingSpec,
    DeviceSpec,
    DistrictDataset,
    NetworkSpec,
    synthesize_district,
)
from repro.datasources.geometry import (
    BoundingBox,
    Geometry,
    linestring,
    parse_wkt,
    point,
    polygon,
    rectangle,
)
from repro.datasources.gis import (
    LAYER_BOUNDARY,
    LAYER_BUILDINGS,
    LAYER_ROUTES,
    Feature,
    GisStore,
)
from repro.datasources.sim import (
    COMMODITY_ELECTRICITY,
    COMMODITY_HEAT,
    NODE_CONSUMER,
    NODE_JUNCTION,
    NODE_PLANT,
    SimStore,
)

__all__ = [
    "BimStore",
    "BoundingBox",
    "BuildingSpec",
    "COMMODITY_ELECTRICITY",
    "COMMODITY_HEAT",
    "DeviceSpec",
    "DistrictDataset",
    "Feature",
    "Geometry",
    "GisStore",
    "LAYER_BOUNDARY",
    "LAYER_BUILDINGS",
    "LAYER_ROUTES",
    "NODE_CONSUMER",
    "NODE_JUNCTION",
    "NODE_PLANT",
    "NetworkSpec",
    "SimStore",
    "build_office_bim",
    "linestring",
    "make_guid",
    "parse_wkt",
    "point",
    "polygon",
    "rectangle",
    "synthesize_district",
]
