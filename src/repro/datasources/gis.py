"""GIS database: georeferenced features of the district.

One (or more) GIS stores per district hold the footprints, routes and
administrative references of everything in the area.  The native schema
is feature-oriented: layers of features, each a WKT geometry plus a flat
property map keyed by *cadastral parcel id* — the administrative key the
SIM databases also use, making the GIS the join table between building
models and distribution networks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.datasources.geometry import BoundingBox, Geometry, parse_wkt
from repro.errors import ConfigurationError, UnknownEntityError

LAYER_BUILDINGS = "buildings"
LAYER_ROUTES = "network_routes"
LAYER_BOUNDARY = "district_boundary"
LAYERS = (LAYER_BUILDINGS, LAYER_ROUTES, LAYER_BOUNDARY)


@dataclass
class Feature:
    """One GIS feature: id, layer, WKT geometry, flat properties."""

    feature_id: str
    layer: str
    wkt: str
    properties: Dict[str, object] = field(default_factory=dict)

    @property
    def geometry(self) -> Geometry:
        """Parsed geometry (parsed on access; the store keeps WKT text)."""
        return parse_wkt(self.wkt)


class GisStore:
    """A district's GIS database in its native feature schema."""

    def __init__(self, district_name: str):
        self.district_name = district_name
        self._features: Dict[str, Feature] = {}
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self._features)

    def add_feature(self, layer: str, geometry: Geometry,
                    properties: Optional[Dict[str, object]] = None,
                    feature_id: Optional[str] = None) -> Feature:
        """Insert a feature; returns it with its assigned id."""
        if layer not in LAYERS:
            raise ConfigurationError(f"unknown GIS layer {layer!r}")
        fid = feature_id if feature_id is not None \
            else f"ft-{next(self._ids):05d}"
        if fid in self._features:
            raise ConfigurationError(f"duplicate feature id {fid!r}")
        feature = Feature(fid, layer, geometry.to_wkt(),
                          dict(properties or {}))
        self._features[fid] = feature
        return feature

    def feature(self, feature_id: str) -> Feature:
        """Look up a feature by id."""
        try:
            return self._features[feature_id]
        except KeyError:
            raise UnknownEntityError(
                f"no GIS feature {feature_id!r}"
            ) from None

    def layer(self, layer: str) -> List[Feature]:
        """All features of one layer, in insertion order."""
        if layer not in LAYERS:
            raise ConfigurationError(f"unknown GIS layer {layer!r}")
        return [f for f in self._features.values() if f.layer == layer]

    def features(self) -> List[Feature]:
        """All features, in insertion order."""
        return list(self._features.values())

    # -- spatial queries -----------------------------------------------------

    def query_bbox(self, bbox: BoundingBox, layer: Optional[str] = None
                   ) -> List[Feature]:
        """Features whose geometry's bounds intersect *bbox*."""
        candidates = self.layer(layer) if layer else self.features()
        return [
            f for f in candidates
            if f.geometry.bounds().intersects(bbox)
        ]

    def query_point(self, x: float, y: float, layer: str = LAYER_BUILDINGS
                    ) -> List[Feature]:
        """Polygon features of *layer* containing the point."""
        return [
            f for f in self.layer(layer)
            if f.geometry.contains_point((x, y))
        ]

    def by_cadastral_id(self, cadastral_id: str) -> Feature:
        """Join key lookup: the building feature for a cadastral parcel."""
        for feature in self.layer(LAYER_BUILDINGS):
            if feature.properties.get("cadastral_id") == cadastral_id:
                return feature
        raise UnknownEntityError(
            f"no building feature with cadastral id {cadastral_id!r}"
        )

    def district_bounds(self) -> BoundingBox:
        """Bounds of the whole district (union of all feature bounds)."""
        features = self.features()
        if not features:
            raise UnknownEntityError("GIS store is empty")
        boxes = [f.geometry.bounds() for f in features]
        return BoundingBox(
            min(b.min_x for b in boxes), min(b.min_y for b in boxes),
            max(b.max_x for b in boxes), max(b.max_y for b in boxes),
        )
