"""BIM database: one Building Information Model export per building.

The paper's Figure 1(a) gives "a database for each building (obtained
from each Building Information Model, BIM)".  The native schema here is
IFC-flavoured: a flat table of records keyed by 22-character GlobalIds,
typed ``IfcBuilding`` / ``IfcBuildingStorey`` / ``IfcSpace`` /
``IfcSensor`` / ``IfcFlowTerminal``, linked by parent GlobalIds, with
attribute payloads carried in separate ``IfcPropertySet`` records — the
structural idioms (GUID keys, type tags, detached property sets) that
make raw BIM exports awkward to consume and motivate the
Database-proxy's translation step.
"""

from __future__ import annotations

import string
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, UnknownEntityError

IFC_BUILDING = "IfcBuilding"
IFC_STOREY = "IfcBuildingStorey"
IFC_SPACE = "IfcSpace"
IFC_SENSOR = "IfcSensor"
IFC_FLOW_TERMINAL = "IfcFlowTerminal"
IFC_PROPERTY_SET = "IfcPropertySet"

_IFC_TYPES = (IFC_BUILDING, IFC_STOREY, IFC_SPACE, IFC_SENSOR,
              IFC_FLOW_TERMINAL, IFC_PROPERTY_SET)

_GUID_ALPHABET = string.ascii_letters + string.digits + "_$"


def make_guid(rng: np.random.RandomState) -> str:
    """Mint a 22-character IFC-style GlobalId."""
    indices = rng.randint(0, len(_GUID_ALPHABET), size=22).tolist()
    return "".join([_GUID_ALPHABET[i] for i in indices])


class BimStore:
    """One building's BIM export in its native record schema."""

    def __init__(self, project_name: str):
        self.project_name = project_name
        self._records: Dict[str, Dict] = {}
        self._root_guid: Optional[str] = None

    def __len__(self) -> int:
        return len(self._records)

    # -- construction -----------------------------------------------------

    def add_record(self, guid: str, ifc_type: str, name: str,
                   parent: Optional[str] = None) -> str:
        """Insert an IFC record; returns its GlobalId."""
        if ifc_type not in _IFC_TYPES:
            raise ConfigurationError(f"unknown IFC type {ifc_type!r}")
        if guid in self._records:
            raise ConfigurationError(f"duplicate GlobalId {guid!r}")
        if parent is not None and parent not in self._records:
            raise ConfigurationError(f"parent GlobalId {parent!r} missing")
        if ifc_type == IFC_BUILDING:
            if self._root_guid is not None:
                raise ConfigurationError(
                    "BIM export already has an IfcBuilding root"
                )
            self._root_guid = guid
        self._records[guid] = {
            "GlobalId": guid,
            "type": ifc_type,
            "Name": name,
            "parent": parent,
        }
        return guid

    def add_property_set(self, of_guid: str, pset_guid: str, name: str,
                         properties: Dict[str, object]) -> str:
        """Attach an IfcPropertySet to an existing record."""
        if of_guid not in self._records:
            raise ConfigurationError(
                f"property set targets missing GlobalId {of_guid!r}"
            )
        guid = self.add_record(pset_guid, IFC_PROPERTY_SET, name, of_guid)
        self._records[guid]["props"] = dict(properties)
        return guid

    # -- native queries -----------------------------------------------------

    def record(self, guid: str) -> Dict:
        try:
            return self._records[guid]
        except KeyError:
            raise UnknownEntityError(f"no BIM record {guid!r}") from None

    def root(self) -> Dict:
        """The IfcBuilding record."""
        if self._root_guid is None:
            raise UnknownEntityError("BIM export has no IfcBuilding")
        return self._records[self._root_guid]

    def by_type(self, ifc_type: str) -> List[Dict]:
        """All records of one IFC type, in insertion order."""
        return [r for r in self._records.values() if r["type"] == ifc_type]

    def children(self, guid: str) -> List[Dict]:
        """Records whose parent is *guid* (property sets excluded)."""
        return [
            r for r in self._records.values()
            if r["parent"] == guid and r["type"] != IFC_PROPERTY_SET
        ]

    def property_sets(self, guid: str) -> Dict[str, object]:
        """Merged properties of every IfcPropertySet attached to *guid*."""
        merged: Dict[str, object] = {}
        for record in self._records.values():
            if record["type"] == IFC_PROPERTY_SET and \
                    record["parent"] == guid:
                merged.update(record.get("props", {}))
        return merged

    def spaces(self) -> List[Dict]:
        """All IfcSpace records."""
        return self.by_type(IFC_SPACE)

    def sensors(self) -> List[Dict]:
        """All device placements (IfcSensor + IfcFlowTerminal)."""
        return self.by_type(IFC_SENSOR) + self.by_type(IFC_FLOW_TERMINAL)


def build_office_bim(rng: np.random.RandomState, name: str,
                     storeys: int, spaces_per_storey: int,
                     floor_area_m2: float, cadastral_id: str,
                     year_built: int, use: str = "office") -> BimStore:
    """Construct a plausible building BIM export (office layout)."""
    if storeys < 1 or spaces_per_storey < 1:
        raise ConfigurationError("building needs storeys and spaces")
    store = BimStore(name)
    root = store.add_record(make_guid(rng), IFC_BUILDING, name)
    store.add_property_set(root, make_guid(rng), "Pset_BuildingCommon", {
        "GrossFloorArea": floor_area_m2,
        "NumberOfStoreys": storeys,
        "YearOfConstruction": year_built,
        "CadastralReference": cadastral_id,
        "OccupancyType": use,
    })
    storey_area = floor_area_m2 / storeys
    for level in range(storeys):
        storey = store.add_record(
            make_guid(rng), IFC_STOREY, f"Level {level}", root
        )
        store.add_property_set(storey, make_guid(rng), "Pset_Storey", {
            "Elevation": 3.2 * level,
            "GrossArea": storey_area,
        })
        for index in range(spaces_per_storey):
            space = store.add_record(
                make_guid(rng), IFC_SPACE,
                f"Room {level}{index:02d}", storey
            )
            store.add_property_set(space, make_guid(rng), "Pset_Space", {
                "NetArea": storey_area / spaces_per_storey * 0.85,
                "LongName": f"Office {level}.{index:02d}",
            })
    return store
