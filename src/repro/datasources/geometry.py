"""Planar geometry for the GIS substrate: WKT codec and spatial predicates.

The GIS databases in the paper "store georeferenced information about
buildings in the district".  Features here carry geometry as WKT text
(``POINT``, ``LINESTRING``, ``POLYGON``) — a genuinely different native
encoding from the BIM's record tree and the SIM's graph tables — plus
the small computational-geometry kit the master node and clients need:
bounding boxes, point-in-polygon, centroids and areas.

Coordinates are metric (a local east/north projection in metres), which
keeps distances and areas meaningful without geodesy.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import QueryError

Point = Tuple[float, float]

_WKT_RE = re.compile(
    r"^\s*(POINT|LINESTRING|POLYGON)\s*\((?P<body>.*)\)\s*$", re.IGNORECASE
)


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned rectangle: the area selector for district queries."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise QueryError("degenerate bounding box")

    def contains(self, point: Point) -> bool:
        """True if *point* is inside (inclusive of edges)."""
        x, y = point
        return (self.min_x <= x <= self.max_x
                and self.min_y <= y <= self.max_y)

    def intersects(self, other: "BoundingBox") -> bool:
        """True if this box and *other* overlap (touching counts)."""
        return not (other.min_x > self.max_x or other.max_x < self.min_x
                    or other.min_y > self.max_y or other.max_y < self.min_y)

    def expanded(self, margin: float) -> "BoundingBox":
        """A copy grown by *margin* on every side."""
        return BoundingBox(self.min_x - margin, self.min_y - margin,
                           self.max_x + margin, self.max_y + margin)

    def to_list(self) -> List[float]:
        return [self.min_x, self.min_y, self.max_x, self.max_y]

    @classmethod
    def from_list(cls, values: Sequence[float]) -> "BoundingBox":
        if len(values) != 4:
            raise QueryError(f"bounding box needs 4 numbers, got {values!r}")
        return cls(*[float(v) for v in values])

    @classmethod
    def around(cls, points: Sequence[Point]) -> "BoundingBox":
        """Smallest box containing *points*."""
        if not points:
            raise QueryError("bounding box of zero points")
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return cls(min(xs), min(ys), max(xs), max(ys))


@dataclass(frozen=True)
class Geometry:
    """A parsed WKT geometry."""

    kind: str  # POINT | LINESTRING | POLYGON
    points: Tuple[Point, ...]

    def bounds(self) -> BoundingBox:
        """Bounding box of all vertices."""
        return BoundingBox.around(self.points)

    def centroid(self) -> Point:
        """Vertex-average centroid (exact for points, fine for footprints)."""
        n = len(self.points)
        return (sum(p[0] for p in self.points) / n,
                sum(p[1] for p in self.points) / n)

    def area(self) -> float:
        """Shoelace area for polygons; 0 for points and lines."""
        if self.kind != "POLYGON" or len(self.points) < 3:
            return 0.0
        total = 0.0
        # translate to the first vertex before the shoelace sum: keeps
        # precision for small footprints far from the origin
        ox, oy = self.points[0]
        pts = [(x - ox, y - oy) for x, y in self.points]
        for i in range(len(pts)):
            x1, y1 = pts[i]
            x2, y2 = pts[(i + 1) % len(pts)]
            total += x1 * y2 - x2 * y1
        return abs(total) / 2.0

    def length(self) -> float:
        """Polyline length for linestrings; 0 otherwise."""
        if self.kind != "LINESTRING":
            return 0.0
        total = 0.0
        for (x1, y1), (x2, y2) in zip(self.points, self.points[1:]):
            total += ((x2 - x1) ** 2 + (y2 - y1) ** 2) ** 0.5
        return total

    def contains_point(self, point: Point) -> bool:
        """Ray-casting point-in-polygon; False for non-polygons."""
        if self.kind != "POLYGON":
            return False
        x, y = point
        inside = False
        pts = self.points
        j = len(pts) - 1
        for i in range(len(pts)):
            xi, yi = pts[i]
            xj, yj = pts[j]
            if (yi > y) != (yj > y):
                x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def to_wkt(self) -> str:
        """Serialise back to WKT text (polygon rings are closed).

        Coordinates use ``repr`` so parsing returns the exact floats.
        """
        coords = ", ".join(f"{x!r} {y!r}" for x, y in self.points)
        if self.kind == "POINT":
            return f"POINT ({coords})"
        if self.kind == "LINESTRING":
            return f"LINESTRING ({coords})"
        first = self.points[0]
        return f"POLYGON (({coords}, {first[0]!r} {first[1]!r}))"


def point(x: float, y: float) -> Geometry:
    """Build a POINT geometry."""
    return Geometry("POINT", ((float(x), float(y)),))


def linestring(points: Sequence[Point]) -> Geometry:
    """Build a LINESTRING geometry (>= 2 vertices)."""
    if len(points) < 2:
        raise QueryError("linestring needs at least two points")
    return Geometry("LINESTRING",
                    tuple((float(x), float(y)) for x, y in points))


def polygon(points: Sequence[Point]) -> Geometry:
    """Build a POLYGON from its exterior ring (>= 3 vertices, unclosed)."""
    if len(points) < 3:
        raise QueryError("polygon needs at least three points")
    return Geometry("POLYGON",
                    tuple((float(x), float(y)) for x, y in points))


def rectangle(cx: float, cy: float, width: float, height: float) -> Geometry:
    """Axis-aligned rectangular footprint centred on (cx, cy)."""
    hw, hh = width / 2.0, height / 2.0
    return polygon([
        (cx - hw, cy - hh), (cx + hw, cy - hh),
        (cx + hw, cy + hh), (cx - hw, cy + hh),
    ])


def parse_wkt(text: str) -> Geometry:
    """Parse a WKT string; raises :class:`QueryError` on bad syntax."""
    match = _WKT_RE.match(text)
    if match is None:
        raise QueryError(f"malformed WKT: {text!r}")
    kind = match.group(1).upper()
    body = match.group("body").strip()
    if kind == "POLYGON":
        if not (body.startswith("(") and body.endswith(")")):
            raise QueryError(f"polygon WKT needs an inner ring: {text!r}")
        body = body[1:-1]
    points: List[Point] = []
    for token in body.split(","):
        parts = token.split()
        if len(parts) != 2:
            raise QueryError(f"bad WKT coordinate {token!r}")
        try:
            points.append((float(parts[0]), float(parts[1])))
        except ValueError:
            raise QueryError(f"bad WKT coordinate {token!r}") from None
    if kind == "POINT" and len(points) != 1:
        raise QueryError("POINT must have exactly one coordinate")
    if kind == "LINESTRING" and len(points) < 2:
        raise QueryError("LINESTRING needs two or more coordinates")
    if kind == "POLYGON":
        # WKT rings repeat the first vertex at the end; store unclosed
        if len(points) >= 2 and points[0] == points[-1]:
            points = points[:-1]
        if len(points) < 3:
            raise QueryError("POLYGON needs three or more distinct vertices")
    return Geometry(kind, tuple(points))
