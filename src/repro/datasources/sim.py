"""SIM database: one System Information Model per distribution network.

Figure 1(a) places one database per "distribution network (System
Information Model, SIM)".  The native schema is relational-tabular: a
node table, an edge table and a service-point table, as a utility's
asset-management export would be.  Buildings are referenced by
*cadastral parcel id* — not by BIM GlobalIds or framework entity ids —
so integrating SIM data with building models requires the GIS join the
ontology encodes, exactly the heterogeneity the paper calls out
("conflicting values across different databases").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, UnknownEntityError

COMMODITY_HEAT = "heat"
COMMODITY_ELECTRICITY = "electricity"
COMMODITIES = (COMMODITY_HEAT, COMMODITY_ELECTRICITY)

NODE_PLANT = "plant"
NODE_JUNCTION = "junction"
NODE_CONSUMER = "consumer"
_NODE_KINDS = (NODE_PLANT, NODE_JUNCTION, NODE_CONSUMER)


class SimStore:
    """A distribution network's SIM export in its native table schema."""

    def __init__(self, network_name: str, commodity: str):
        if commodity not in COMMODITIES:
            raise ConfigurationError(f"unknown commodity {commodity!r}")
        self.network_name = network_name
        self.commodity = commodity
        # node table: node id -> row
        self._nodes: Dict[str, Dict] = {}
        # edge table: edge id -> row
        self._edges: Dict[str, Dict] = {}
        # service point table: consumer node -> cadastral parcel id
        self._service_points: Dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._nodes) + len(self._edges)

    # -- construction ----------------------------------------------------

    def add_node(self, node_id: str, kind: str, x: float, y: float,
                 capacity_kw: float = 0.0) -> None:
        """Insert a node row."""
        if kind not in _NODE_KINDS:
            raise ConfigurationError(f"unknown node kind {kind!r}")
        if node_id in self._nodes:
            raise ConfigurationError(f"duplicate node id {node_id!r}")
        self._nodes[node_id] = {
            "node_id": node_id, "kind": kind, "x": x, "y": y,
            "capacity_kw": capacity_kw,
        }

    def add_edge(self, edge_id: str, source: str, target: str,
                 length_m: float, rating: float, loss_coeff: float = 0.01
                 ) -> None:
        """Insert an edge row (pipe segment or feeder cable)."""
        for node in (source, target):
            if node not in self._nodes:
                raise ConfigurationError(f"edge references missing node "
                                         f"{node!r}")
        if edge_id in self._edges:
            raise ConfigurationError(f"duplicate edge id {edge_id!r}")
        if length_m <= 0:
            raise ConfigurationError("edge length must be positive")
        self._edges[edge_id] = {
            "edge_id": edge_id, "source": source, "target": target,
            "length_m": length_m, "rating": rating,
            "loss_coeff": loss_coeff,
        }

    def add_service_point(self, consumer_node: str, cadastral_id: str
                          ) -> None:
        """Bind a consumer node to the cadastral parcel it serves."""
        node = self.node(consumer_node)
        if node["kind"] != NODE_CONSUMER:
            raise ConfigurationError(
                f"service point on non-consumer node {consumer_node!r}"
            )
        self._service_points[consumer_node] = cadastral_id

    # -- native queries -----------------------------------------------------

    def node(self, node_id: str) -> Dict:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownEntityError(f"no SIM node {node_id!r}") from None

    def nodes(self, kind: Optional[str] = None) -> List[Dict]:
        """Node rows, optionally filtered by kind."""
        rows = list(self._nodes.values())
        if kind is None:
            return rows
        return [r for r in rows if r["kind"] == kind]

    def edges(self) -> List[Dict]:
        """All edge rows."""
        return list(self._edges.values())

    def edges_at(self, node_id: str) -> List[Dict]:
        """Edges incident to *node_id*."""
        self.node(node_id)
        return [
            e for e in self._edges.values()
            if e["source"] == node_id or e["target"] == node_id
        ]

    def service_points(self) -> Dict[str, str]:
        """Mapping consumer node id -> cadastral parcel id."""
        return dict(self._service_points)

    def cadastral_ids(self) -> List[str]:
        """All parcels this network serves."""
        return sorted(set(self._service_points.values()))

    def consumer_for_parcel(self, cadastral_id: str) -> str:
        """The consumer node feeding a parcel; raises if none."""
        for node_id, parcel in self._service_points.items():
            if parcel == cadastral_id:
                return node_id
        raise UnknownEntityError(
            f"network {self.network_name!r} has no service point for "
            f"parcel {cadastral_id!r}"
        )

    def total_length_m(self) -> float:
        """Total route length of the network."""
        return sum(e["length_m"] for e in self._edges.values())

    def path_to_plant(self, consumer_node: str) -> List[str]:
        """Node path from a consumer to the nearest plant (BFS).

        Used by clients tracing which plant feeds a building; raises
        :class:`UnknownEntityError` when the network is disconnected.
        """
        self.node(consumer_node)
        frontier: List[Tuple[str, List[str]]] = [(consumer_node,
                                                  [consumer_node])]
        seen = {consumer_node}
        while frontier:
            current, path = frontier.pop(0)
            if self._nodes[current]["kind"] == NODE_PLANT:
                return path
            for edge in self.edges_at(current):
                neighbour = (edge["target"] if edge["source"] == current
                             else edge["source"])
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append((neighbour, path + [neighbour]))
        raise UnknownEntityError(
            f"no plant reachable from {consumer_node!r}"
        )
