"""Protocol adapter interface — the proxy's "dedicated layer" contract.

The paper's Device-proxy has a bottom layer "specific for the device"
that speaks the device's native protocol.  Each protocol module in this
package implements :class:`ProtocolAdapter` twice over:

* the *uplink*: devices encode sensor readings into protocol-native
  binary frames (:meth:`encode_readings`), the proxy decodes them back
  into canonical-unit :class:`RawReading` tuples (:meth:`decode_frame`);
* the *downlink*: the proxy encodes actuation commands
  (:meth:`encode_command`), the device decodes them
  (:meth:`decode_command`).

Frames are genuine ``bytes`` with per-protocol headers, addressing and
checksums, so the heterogeneity the paper sets out to hide is physically
present in the simulation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import ConfigurationError, FrameDecodeError


@dataclass(frozen=True)
class RawReading:
    """One decoded sensor sample, already converted to canonical units."""

    device_address: str
    quantity: str
    value: float
    timestamp: float


@dataclass(frozen=True)
class RawCommand:
    """One decoded actuation command on the device side."""

    device_address: str
    command: str
    value: Optional[float]


class ProtocolAdapter(abc.ABC):
    """Bidirectional codec between one protocol and the common model."""

    #: short protocol name, e.g. ``"zigbee"``; set by subclasses
    name: str = ""

    @abc.abstractmethod
    def encode_readings(
        self,
        device_address: str,
        readings: Sequence[Tuple[str, float]],
        timestamp: float,
    ) -> bytes:
        """Device side: encode (quantity, canonical value) pairs to a frame."""

    @abc.abstractmethod
    def decode_frame(self, frame: bytes, received_at: float = 0.0
                     ) -> List[RawReading]:
        """Proxy side: decode a frame into canonical readings.

        *received_at* is the arrival time at the gateway; protocols whose
        frames carry no timestamp (EnOcean) stamp readings with it, the
        others ignore it in favour of the embedded timestamp.

        Raises :class:`FrameDecodeError` on corrupt or foreign frames.
        """

    @abc.abstractmethod
    def encode_command(
        self, device_address: str, command: str, value: Optional[float]
    ) -> bytes:
        """Proxy side: encode an actuation command into a frame."""

    @abc.abstractmethod
    def decode_command(self, frame: bytes) -> RawCommand:
        """Device side: decode an actuation command frame."""

    def supports_quantity(self, quantity: str) -> bool:
        """True if the protocol can carry *quantity* on its uplink."""
        return quantity in self.uplink_quantities()

    @abc.abstractmethod
    def uplink_quantities(self) -> Tuple[str, ...]:
        """Quantities this protocol's sensor profiles can carry."""


_REGISTRY: Dict[str, Type[ProtocolAdapter]] = {}


def register_protocol(cls: Type[ProtocolAdapter]) -> Type[ProtocolAdapter]:
    """Class decorator adding an adapter to the protocol registry."""
    if not cls.name:
        raise ConfigurationError(f"{cls.__name__} has no protocol name")
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"protocol {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def available_protocols() -> Tuple[str, ...]:
    """Names of all registered protocols."""
    return tuple(sorted(_REGISTRY))


def make_adapter(name: str) -> ProtocolAdapter:
    """Instantiate the adapter for protocol *name*."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(f"unknown protocol {name!r}") from None
    return cls()


# --------------------------------------------------------------------------
# shared checksum helpers


def crc16_ccitt(data: bytes, seed: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE, as used for the IEEE 802.15.4 frame FCS."""
    crc = seed
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def crc8(data: bytes) -> int:
    """CRC-8 (poly 0x07), as used for EnOcean ERP1 telegram checksums."""
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ 0x07) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc


def require(condition: bool, message: str) -> None:
    """Raise :class:`FrameDecodeError` with *message* unless *condition*."""
    if not condition:
        raise FrameDecodeError(message)
