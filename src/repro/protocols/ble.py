"""Bluetooth Low Energy protocol adapter.

Section III names "reliable and energy-efficient radio transceivers,
e.g., Bluetooth Low Energy or sub-GHz" among the building blocks of
smart sensing devices.  This adapter models the GATT layer:

* uplink: ATT *Handle Value Notification* PDUs (opcode 0x1B) carrying
  standard Environmental Sensing characteristics — Temperature 0x2A6E
  (sint16, 0.01 degC), Humidity 0x2A6F (uint16, 0.01 %RH), Illuminance
  0x2AFB (uint24, 0.01 lx) — plus a vendor power/energy service
  (uint32 mW / uint32 Wh);
* downlink: ATT *Write Request* PDUs (opcode 0x12) to the control-point
  characteristics.

Several notifications are packed into one link-layer frame prefixed by
the device's 48-bit public address, as a connection event would deliver
them.  Multi-byte fields are little-endian, per the Bluetooth spec.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FrameEncodeError
from repro.protocols.base import (
    ProtocolAdapter,
    RawCommand,
    RawReading,
    register_protocol,
    require,
)

_MAGIC = 0xB1  # link frame delimiter
_OP_NOTIFY = 0x1B
_OP_WRITE = 0x12

#: quantity -> (attribute handle, struct format or None for uint24,
#:              scale to canonical, signed uint24?)
_CHARACTERISTICS: Dict[str, Tuple[int, Optional[str], float]] = {
    "temperature": (0x0010, "<h", 0.01),    # GATT 0x2A6E
    "humidity": (0x0012, "<H", 0.01),       # GATT 0x2A6F
    "illuminance": (0x0014, None, 0.01),    # GATT 0x2AFB, uint24
    "power": (0x0020, "<I", 0.001),         # vendor: milliwatts
    "energy": (0x0022, "<I", 1.0),          # vendor: watt-hours
    "state": (0x0024, "<B", 1.0),           # vendor: on/off
    "occupancy": (0x0026, "<B", 1.0),       # vendor: presence count
    "setpoint": (0x0028, "<h", 0.01),       # vendor: 0.01 degC
}
_BY_HANDLE = {
    handle: (quantity, fmt, scale)
    for quantity, (handle, fmt, scale) in _CHARACTERISTICS.items()
}

#: command -> control-point handle
_CONTROL_POINTS = {
    "switch": 0x0030,
    "setpoint": 0x0032,
    "dim": 0x0034,
}
_COMMANDS_BY_HANDLE = {handle: cmd
                       for cmd, handle in _CONTROL_POINTS.items()}


def _parse_address(address: str) -> bytes:
    parts = address.split(":")
    if len(parts) != 6:
        raise FrameEncodeError(f"bad BLE address {address!r}")
    try:
        return bytes(int(part, 16) for part in parts)
    except ValueError:
        raise FrameEncodeError(f"bad BLE address {address!r}") from None


def _format_address(blob: bytes) -> str:
    return ":".join(f"{b:02x}" for b in blob)


def _field_width(fmt: Optional[str]) -> int:
    return 3 if fmt is None else struct.calcsize(fmt)


def _pack_value(fmt: Optional[str], native: int) -> bytes:
    if fmt is None:  # uint24 little-endian
        if not 0 <= native < 1 << 24:
            raise FrameEncodeError("uint24 characteristic overflow")
        return struct.pack("<I", native)[:3]
    lo, hi = {
        "<h": (-32768, 32767),
        "<H": (0, 65535),
        "<I": (0, 4294967295),
        "<B": (0, 255),
    }[fmt]
    return struct.pack(fmt, min(max(native, lo), hi))


def _unpack_value(fmt: Optional[str], blob: bytes) -> int:
    if fmt is None:
        return struct.unpack("<I", blob + b"\x00")[0]
    return struct.unpack(fmt, blob)[0]


@register_protocol
class BleAdapter(ProtocolAdapter):
    """Codec for BLE GATT notifications and control-point writes."""

    name = "ble"

    def uplink_quantities(self) -> Tuple[str, ...]:
        return tuple(sorted(_CHARACTERISTICS))

    # -- uplink ------------------------------------------------------------

    def encode_readings(
        self,
        device_address: str,
        readings: Sequence[Tuple[str, float]],
        timestamp: float,
    ) -> bytes:
        if not readings:
            raise FrameEncodeError("BLE frame needs a notification")
        out = bytearray()
        out.append(_MAGIC)
        out += _parse_address(device_address)
        out += struct.pack("<I", int(timestamp) & 0xFFFFFFFF)
        out.append(len(readings))
        for quantity, value in readings:
            if quantity not in _CHARACTERISTICS:
                raise FrameEncodeError(
                    f"no BLE characteristic for {quantity!r}"
                )
            handle, fmt, scale = _CHARACTERISTICS[quantity]
            native = int(round(value / scale))
            out.append(_OP_NOTIFY)
            out += struct.pack("<H", handle)
            out += _pack_value(fmt, native)
        return bytes(out)

    def decode_frame(self, frame: bytes, received_at: float = 0.0
                     ) -> List[RawReading]:
        require(len(frame) >= 13, "BLE frame too short")
        require(frame[0] == _MAGIC, "not a BLE link frame")
        address = _format_address(frame[1:7])
        timestamp = float(struct.unpack("<I", frame[7:11])[0])
        count = frame[11]
        offset = 12
        readings: List[RawReading] = []
        for _ in range(count):
            require(offset + 3 <= len(frame), "truncated BLE PDU")
            require(frame[offset] == _OP_NOTIFY,
                    f"unexpected ATT opcode {frame[offset]:#x}")
            handle = struct.unpack("<H", frame[offset + 1:offset + 3])[0]
            require(handle in _BY_HANDLE,
                    f"unknown GATT handle {handle:#06x}")
            quantity, fmt, scale = _BY_HANDLE[handle]
            width = _field_width(fmt)
            require(offset + 3 + width <= len(frame),
                    "truncated BLE characteristic value")
            native = _unpack_value(
                fmt, frame[offset + 3:offset + 3 + width]
            )
            readings.append(RawReading(address, quantity, native * scale,
                                       timestamp))
            offset += 3 + width
        require(offset == len(frame), "trailing bytes in BLE frame")
        return readings

    # -- downlink ----------------------------------------------------------

    def encode_command(
        self, device_address: str, command: str, value: Optional[float]
    ) -> bytes:
        if command not in _CONTROL_POINTS:
            raise FrameEncodeError(f"BLE has no command {command!r}")
        out = bytearray()
        out.append(_MAGIC)
        out += _parse_address(device_address)
        out.append(_OP_WRITE)
        out += struct.pack("<H", _CONTROL_POINTS[command])
        scaled = 0 if value is None else int(round(value * 100.0))
        out += struct.pack("<h", scaled)
        return bytes(out)

    def decode_command(self, frame: bytes) -> RawCommand:
        require(len(frame) == 12, "bad BLE write-request length")
        require(frame[0] == _MAGIC, "not a BLE link frame")
        require(frame[7] == _OP_WRITE, "not an ATT write request")
        handle = struct.unpack("<H", frame[8:10])[0]
        require(handle in _COMMANDS_BY_HANDLE,
                f"unknown control point {handle:#06x}")
        scaled = struct.unpack("<h", frame[10:12])[0]
        return RawCommand(
            _format_address(frame[1:7]),
            _COMMANDS_BY_HANDLE[handle],
            scaled / 100.0,
        )
