"""CoAP / 6LoWPAN protocol adapter.

Section III of the paper points at the emerging IoT stack — "based,
e.g., on the 6LoWPAN, RPL and CoAP protocols" — as the direction for
smart sensing devices.  This adapter models that stack's application
layer: RFC 7252 CoAP messages carrying SenML-JSON payloads.

* uplink: Observe notifications (2.05 Content) from resource
  ``/sensors`` with a SenML record per quantity (name/value/unit/time);
* downlink: confirmable PUT to ``/actuators/<command>`` with a SenML
  value.

The binary layout follows RFC 7252: version/type/token-length byte,
code, message id, token, delta-encoded options, 0xFF payload marker.
Devices are addressed by 6LoWPAN-style IPv6 suffixes (``fd00::1a2b``).
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FrameDecodeError, FrameEncodeError
from repro.protocols.base import (
    ProtocolAdapter,
    RawCommand,
    RawReading,
    register_protocol,
    require,
)

_VERSION = 1
_TYPE_NON = 1        # non-confirmable: sensor notifications
_TYPE_CON = 0        # confirmable: actuation requests
_CODE_CONTENT = 0x45  # 2.05 Content
_CODE_PUT = 0x03      # 0.03 PUT

_OPT_URI_PATH = 11
_OPT_CONTENT_FORMAT = 12
_OPT_OBSERVE = 6
_CF_SENML_JSON = 110  # application/senml+json

#: SenML unit symbol <-> canonical quantity
_SENML_UNITS: Dict[str, str] = {
    "power": "W",
    "energy": "Wh",
    "temperature": "Cel",
    "humidity": "%RH",
    "illuminance": "lx",
    "co2": "ppm",
    "occupancy": "count",
    "state": "/",          # SenML boolean-ish
    "setpoint": "Cel",
}
_QUANTITY_FOR_UNIT = {
    ("Cel", "temperature"): "temperature",
}

_COMMAND_PATHS = {
    "switch": "actuators/switch",
    "setpoint": "actuators/setpoint",
    "dim": "actuators/dim",
}
_COMMANDS_FOR_PATH = {path: cmd for cmd, path in _COMMAND_PATHS.items()}


def _parse_address(address: str) -> bytes:
    if not address.startswith("fd00::"):
        raise FrameEncodeError(f"bad 6LoWPAN address {address!r}")
    try:
        suffix = int(address[6:], 16)
    except ValueError:
        raise FrameEncodeError(f"bad 6LoWPAN address {address!r}") from None
    if not 0 <= suffix <= 0xFFFFFFFF:
        raise FrameEncodeError(f"6LoWPAN suffix out of range {address!r}")
    return struct.pack(">I", suffix)


def _format_address(token: bytes) -> str:
    return f"fd00::{struct.unpack('>I', token)[0]:x}"


def _encode_option(out: bytearray, last_number: int, number: int,
                   value: bytes) -> int:
    delta = number - last_number
    if delta > 12 or len(value) > 12:
        raise FrameEncodeError("extended CoAP options not supported")
    out.append((delta << 4) | len(value))
    out += value
    return number


class _MessageReader:
    def __init__(self, frame: bytes):
        require(len(frame) >= 4, "CoAP message too short")
        first = frame[0]
        require(first >> 6 == _VERSION, "unsupported CoAP version")
        self.msg_type = (first >> 4) & 0x03
        token_length = first & 0x0F
        self.code = frame[1]
        self.message_id = struct.unpack(">H", frame[2:4])[0]
        require(len(frame) >= 4 + token_length, "truncated CoAP token")
        self.token = frame[4:4 + token_length]
        self.options: Dict[int, List[bytes]] = {}
        offset = 4 + token_length
        number = 0
        while offset < len(frame):
            if frame[offset] == 0xFF:
                offset += 1
                break
            byte = frame[offset]
            delta, length = byte >> 4, byte & 0x0F
            require(delta <= 12 and length <= 12,
                    "extended CoAP options not supported")
            offset += 1
            require(offset + length <= len(frame),
                    "truncated CoAP option")
            number += delta
            self.options.setdefault(number, []).append(
                frame[offset:offset + length]
            )
            offset += length
        self.payload = frame[offset:]

    @property
    def uri_path(self) -> str:
        return "/".join(
            segment.decode("utf-8")
            for segment in self.options.get(_OPT_URI_PATH, [])
        )


@register_protocol
class CoapAdapter(ProtocolAdapter):
    """Codec for CoAP Observe notifications with SenML-JSON payloads."""

    name = "coap"

    def __init__(self) -> None:
        self._message_id = 0

    def _next_id(self) -> int:
        self._message_id = (self._message_id + 1) & 0xFFFF
        return self._message_id

    def uplink_quantities(self) -> Tuple[str, ...]:
        return tuple(sorted(_SENML_UNITS))

    # -- uplink -------------------------------------------------------------

    def encode_readings(
        self,
        device_address: str,
        readings: Sequence[Tuple[str, float]],
        timestamp: float,
    ) -> bytes:
        if not readings:
            raise FrameEncodeError("SenML pack needs at least one record")
        token = _parse_address(device_address)
        records = []
        for quantity, value in readings:
            if quantity not in _SENML_UNITS:
                raise FrameEncodeError(
                    f"no SenML mapping for quantity {quantity!r}"
                )
            records.append({
                "n": quantity,
                "u": _SENML_UNITS[quantity],
                "v": float(value),
                "t": float(timestamp),
            })
        payload = json.dumps(records).encode("utf-8")
        out = bytearray()
        out.append((_VERSION << 6) | (_TYPE_NON << 4) | len(token))
        out.append(_CODE_CONTENT)
        out += struct.pack(">H", self._next_id())
        out += token
        last = _encode_option(out, 0, _OPT_OBSERVE, b"\x01")
        last = _encode_option(out, last, _OPT_URI_PATH, b"sensors")
        _encode_option(out, last, _OPT_CONTENT_FORMAT,
                       bytes([_CF_SENML_JSON]))
        out.append(0xFF)
        out += payload
        return bytes(out)

    def decode_frame(self, frame: bytes, received_at: float = 0.0
                     ) -> List[RawReading]:
        reader = _MessageReader(frame)
        require(reader.code == _CODE_CONTENT,
                f"not a CoAP 2.05 notification (code {reader.code:#x})")
        require(reader.uri_path == "sensors",
                f"unexpected CoAP resource {reader.uri_path!r}")
        content_format = reader.options.get(_OPT_CONTENT_FORMAT, [b""])[0]
        require(content_format == bytes([_CF_SENML_JSON]),
                "unexpected CoAP content format")
        require(len(reader.token) == 4, "bad CoAP token length")
        address = _format_address(reader.token)
        try:
            records = json.loads(reader.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameDecodeError(f"bad SenML payload: {exc}") from exc
        require(isinstance(records, list), "SenML pack must be a list")
        readings = []
        for record in records:
            try:
                quantity = record["n"]
                value = float(record["v"])
                timestamp = float(record.get("t", received_at))
            except (TypeError, KeyError, ValueError) as exc:
                raise FrameDecodeError(
                    f"bad SenML record {record!r}"
                ) from exc
            require(quantity in _SENML_UNITS,
                    f"unknown SenML quantity {quantity!r}")
            readings.append(RawReading(address, quantity, value, timestamp))
        return readings

    # -- downlink -----------------------------------------------------------

    def encode_command(
        self, device_address: str, command: str, value: Optional[float]
    ) -> bytes:
        if command not in _COMMAND_PATHS:
            raise FrameEncodeError(f"CoAP has no command {command!r}")
        token = _parse_address(device_address)
        payload = json.dumps(
            [{"n": command, "v": 0.0 if value is None else float(value)}]
        ).encode("utf-8")
        out = bytearray()
        out.append((_VERSION << 6) | (_TYPE_CON << 4) | len(token))
        out.append(_CODE_PUT)
        out += struct.pack(">H", self._next_id())
        out += token
        last = 0
        for segment in _COMMAND_PATHS[command].split("/"):
            last = _encode_option(out, last, _OPT_URI_PATH,
                                  segment.encode("utf-8"))
            # subsequent Uri-Path options repeat the same number
        _encode_option(out, last, _OPT_CONTENT_FORMAT,
                       bytes([_CF_SENML_JSON]))
        out.append(0xFF)
        out += payload
        return bytes(out)

    def decode_command(self, frame: bytes) -> RawCommand:
        reader = _MessageReader(frame)
        require(reader.code == _CODE_PUT, "not a CoAP PUT request")
        path = reader.uri_path
        require(path in _COMMANDS_FOR_PATH,
                f"unknown CoAP actuator resource {path!r}")
        require(len(reader.token) == 4, "bad CoAP token length")
        try:
            records = json.loads(reader.payload.decode("utf-8"))
            value = float(records[0]["v"])
        except Exception as exc:
            raise FrameDecodeError(
                f"bad CoAP actuation payload: {exc}"
            ) from exc
        return RawCommand(
            _format_address(reader.token),
            _COMMANDS_FOR_PATH[path],
            value,
        )
