"""Device protocols: the heterogeneous field-bus layer.

One module per protocol the paper names — IEEE 802.15.4, ZigBee,
EnOcean and OPC UA from §II, plus the §III "enabling technologies"
CoAP/6LoWPAN and Bluetooth Low Energy — each with a genuinely different
frame format, addressing scheme, native units and failure modes.  All
are hidden behind :class:`~repro.protocols.base.ProtocolAdapter`, the
contract the Device-proxy's dedicated layer programs against.
"""

from repro.protocols.base import (
    ProtocolAdapter,
    RawCommand,
    RawReading,
    available_protocols,
    crc8,
    crc16_ccitt,
    make_adapter,
    register_protocol,
)
from repro.protocols.ble import BleAdapter
from repro.protocols.coap import CoapAdapter
from repro.protocols.enocean import EnOceanAdapter
from repro.protocols.ieee802154 import Ieee802154Adapter
from repro.protocols.opcua import AddressSpace, DataValue, OpcUaAdapter
from repro.protocols.zigbee import ZigbeeAdapter

__all__ = [
    "AddressSpace",
    "BleAdapter",
    "CoapAdapter",
    "DataValue",
    "EnOceanAdapter",
    "Ieee802154Adapter",
    "OpcUaAdapter",
    "ProtocolAdapter",
    "RawCommand",
    "RawReading",
    "ZigbeeAdapter",
    "available_protocols",
    "crc16_ccitt",
    "crc8",
    "make_adapter",
    "register_protocol",
]
