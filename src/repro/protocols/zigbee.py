"""ZigBee (ZCL) protocol adapter.

Models a ZigBee deployment at the ZigBee Cluster Library level:
attribute-report commands on standard clusters (Metering 0x0702,
Temperature 0x0402, Humidity 0x0405, On/Off 0x0006, Thermostat 0x0201,
Level 0x0008, Occupancy 0x0406, Illuminance 0x0400, Electrical
Measurement 0x0B04).  Devices are addressed by 64-bit IEEE addresses
(``00:12:4b:...``), and every cluster uses its real ZCL attribute
scaling (temperature in 0.01 degC, humidity in 0.01 %RH, metering demand
in watts).

The frame layout is little-endian, per the ZigBee specification, which
is itself a source of heterogeneity vs. the big-endian 802.15.4 TLVs.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FrameEncodeError
from repro.protocols.base import (
    ProtocolAdapter,
    RawCommand,
    RawReading,
    register_protocol,
    require,
)

_MAGIC = 0x5A  # frame delimiter for our simulated NWK encapsulation

_REPORT_ATTRIBUTES = 0x0A
_CLUSTER_COMMAND = 0x01

#: quantity -> (cluster, attribute, zcl data type, scale to canonical)
_UPLINK: Dict[str, Tuple[int, int, int, float]] = {
    "power": (0x0702, 0x0400, 0x2A, 1.0),          # instantaneous demand, W
    "energy": (0x0702, 0x0000, 0x25, 1.0),         # current summation, Wh
    "temperature": (0x0402, 0x0000, 0x29, 0.01),   # measured value, 0.01 C
    "humidity": (0x0405, 0x0000, 0x21, 0.01),      # measured value, 0.01 %
    "illuminance": (0x0400, 0x0000, 0x21, 1.0),    # lux (simplified linear)
    "occupancy": (0x0406, 0x0000, 0x18, 1.0),      # bitmap -> count
    "voltage": (0x0B04, 0x0505, 0x21, 0.1),        # RMS voltage, 0.1 V
    "current": (0x0B04, 0x0508, 0x21, 0.001),      # RMS current, mA
    "state": (0x0006, 0x0000, 0x10, 1.0),          # on/off boolean
    "setpoint": (0x0201, 0x0012, 0x29, 0.01),      # occupied heating setpoint
}

_BY_CLUSTER_ATTR = {
    (cluster, attr): (quantity, dtype, scale)
    for quantity, (cluster, attr, dtype, scale) in _UPLINK.items()
}

#: ZCL data type -> struct format (little-endian) and signedness
_ZCL_TYPES: Dict[int, Tuple[str, int]] = {
    0x10: ("<B", 1),   # boolean
    0x18: ("<B", 1),   # 8-bit bitmap
    0x21: ("<H", 2),   # uint16
    0x25: ("<Q", 8),   # uint48 stored as uint64 (simplified width)
    0x29: ("<h", 2),   # int16
    0x2A: ("<i", 4),   # int24 stored as int32 (simplified width)
}

#: command name -> (cluster, command id, has int16 payload)
_COMMANDS: Dict[str, Tuple[int, int, bool]] = {
    "switch": (0x0006, 0x02, True),    # on/off toggle-with-arg (0/1)
    "setpoint": (0x0201, 0x00, True),  # setpoint raise/lower absolute
    "dim": (0x0008, 0x04, True),       # move to level
}
_COMMANDS_BY_ID = {
    (cluster, cmd): (name, has_arg)
    for name, (cluster, cmd, has_arg) in _COMMANDS.items()
}


def _pack_address(address: str) -> bytes:
    parts = address.split(":")
    if len(parts) != 8:
        raise FrameEncodeError(f"bad ZigBee IEEE address {address!r}")
    try:
        return bytes(int(part, 16) for part in parts)
    except ValueError:
        raise FrameEncodeError(
            f"bad ZigBee IEEE address {address!r}"
        ) from None


def _unpack_address(blob: bytes) -> str:
    return ":".join(f"{byte:02x}" for byte in blob)


@register_protocol
class ZigbeeAdapter(ProtocolAdapter):
    """Codec for ZCL attribute reports and cluster commands."""

    name = "zigbee"

    def uplink_quantities(self) -> Tuple[str, ...]:
        return tuple(sorted(_UPLINK))

    # -- uplink -----------------------------------------------------------

    def encode_readings(
        self,
        device_address: str,
        readings: Sequence[Tuple[str, float]],
        timestamp: float,
    ) -> bytes:
        if not readings:
            raise FrameEncodeError("ZCL report needs at least one attribute")
        addr = _pack_address(device_address)
        out = bytearray()
        out.append(_MAGIC)
        out.append(_REPORT_ATTRIBUTES)
        out += addr
        out += struct.pack("<I", int(timestamp) & 0xFFFFFFFF)
        out.append(len(readings))
        for quantity, value in readings:
            if quantity not in _UPLINK:
                raise FrameEncodeError(
                    f"ZigBee cannot carry quantity {quantity!r}"
                )
            cluster, attr, dtype, scale = _UPLINK[quantity]
            fmt, _width = _ZCL_TYPES[dtype]
            native = int(round(value / scale))
            out += struct.pack("<HHB", cluster, attr, dtype)
            out += struct.pack(fmt, native)
        out.append(sum(out) & 0xFF)  # trailing additive checksum
        return bytes(out)

    def decode_frame(self, frame: bytes, received_at: float = 0.0
                     ) -> List[RawReading]:
        require(len(frame) >= 16, "ZCL frame too short")
        require(frame[0] == _MAGIC, "not a ZigBee frame (bad delimiter)")
        require(sum(frame[:-1]) & 0xFF == frame[-1], "ZCL checksum mismatch")
        require(frame[1] == _REPORT_ATTRIBUTES, "not a ZCL attribute report")
        address = _unpack_address(frame[2:10])
        timestamp = float(struct.unpack("<I", frame[10:14])[0])
        count = frame[14]
        readings: List[RawReading] = []
        offset = 15
        for _ in range(count):
            require(offset + 5 <= len(frame) - 1, "truncated ZCL record")
            cluster, attr, dtype = struct.unpack(
                "<HHB", frame[offset:offset + 5]
            )
            offset += 5
            require(dtype in _ZCL_TYPES, f"unknown ZCL data type {dtype:#x}")
            fmt, width = _ZCL_TYPES[dtype]
            require(offset + width <= len(frame) - 1, "truncated ZCL value")
            raw = struct.unpack(fmt, frame[offset:offset + width])[0]
            offset += width
            key = (cluster, attr)
            require(key in _BY_CLUSTER_ATTR,
                    f"unknown cluster/attribute {cluster:#x}/{attr:#x}")
            quantity, expected_type, scale = _BY_CLUSTER_ATTR[key]
            require(dtype == expected_type,
                    f"wrong ZCL type for {quantity}: {dtype:#x}")
            readings.append(
                RawReading(address, quantity, raw * scale, timestamp)
            )
        require(offset == len(frame) - 1, "trailing bytes in ZCL frame")
        return readings

    # -- downlink ---------------------------------------------------------

    def encode_command(
        self, device_address: str, command: str, value: Optional[float]
    ) -> bytes:
        if command not in _COMMANDS:
            raise FrameEncodeError(f"ZigBee has no command {command!r}")
        cluster, cmd_id, has_arg = _COMMANDS[command]
        out = bytearray()
        out.append(_MAGIC)
        out.append(_CLUSTER_COMMAND)
        out += _pack_address(device_address)
        out += struct.pack("<HB", cluster, cmd_id)
        if has_arg:
            scaled = 0 if value is None else int(round(value * 100.0))
            out += struct.pack("<h", scaled)
        out.append(sum(out) & 0xFF)
        return bytes(out)

    def decode_command(self, frame: bytes) -> RawCommand:
        require(len(frame) >= 14, "ZigBee command frame too short")
        require(frame[0] == _MAGIC, "not a ZigBee frame (bad delimiter)")
        require(sum(frame[:-1]) & 0xFF == frame[-1],
                "ZigBee command checksum mismatch")
        require(frame[1] == _CLUSTER_COMMAND, "not a ZigBee cluster command")
        address = _unpack_address(frame[2:10])
        cluster, cmd_id = struct.unpack("<HB", frame[10:13])
        key = (cluster, cmd_id)
        require(key in _COMMANDS_BY_ID,
                f"unknown ZigBee command {cluster:#x}/{cmd_id:#x}")
        name, has_arg = _COMMANDS_BY_ID[key]
        value: Optional[float] = None
        if has_arg:
            require(len(frame) >= 16, "missing ZigBee command argument")
            value = struct.unpack("<h", frame[13:15])[0] / 100.0
        return RawCommand(address, name, value)
