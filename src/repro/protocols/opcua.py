"""OPC Unified Architecture adapter.

The paper: "another proxy allows the interoperability with the OPC
Unified Architecture, which provides backward compatibility with wired
standards to the whole infrastructure."  This module models that wired
world: an :class:`AddressSpace` of nodes (``ns=2;s=PLC1.Meter.Power``)
holding ``DataValue`` s, and a binary codec for publish notifications
and write requests in the style of OPC UA binary encoding (little-
endian, length-prefixed strings, variant type bytes, status codes,
float64 source timestamps).

Structurally nothing here resembles the radio protocols — readings are
addressed by hierarchical node path instead of radio address, values are
IEEE-754 doubles instead of scaled integers, and quality arrives as a
status code — which is precisely the heterogeneity the Device-proxy's
dedicated layer must absorb.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FrameDecodeError, FrameEncodeError
from repro.protocols.base import (
    ProtocolAdapter,
    RawCommand,
    RawReading,
    register_protocol,
    require,
)

_MAGIC = b"OPCU"
_MSG_NOTIFICATION = 0x01
_MSG_WRITE = 0x02

_VARIANT_DOUBLE = 0x0B  # OPC UA built-in type id for Double

STATUS_GOOD = 0x00000000
STATUS_UNCERTAIN = 0x40000000
STATUS_BAD = 0x80000000

#: node-path suffix <-> quantity
_NODE_FOR_QUANTITY = {
    "power": "Power",
    "energy": "Energy",
    "temperature": "Temperature",
    "humidity": "Humidity",
    "flow_rate": "FlowRate",
    "pressure": "Pressure",
    "voltage": "Voltage",
    "current": "Current",
    "state": "State",
    "setpoint": "SetPoint",
}
_QUANTITY_FOR_NODE = {node: q for q, node in _NODE_FOR_QUANTITY.items()}

#: command -> writable node suffix
_COMMAND_NODES = {
    "switch": "Commands.Switch",
    "setpoint": "Commands.SetPoint",
    "dim": "Commands.Dim",
}
_COMMANDS_FOR_NODE = {node: cmd for cmd, node in _COMMAND_NODES.items()}


def node_id(path: str) -> str:
    """Format a string NodeId in namespace 2 for *path*."""
    return f"ns=2;s={path}"


def parse_node_id(text: str) -> str:
    """Extract the string path from a ``ns=2;s=...`` NodeId."""
    if not text.startswith("ns=2;s="):
        raise FrameDecodeError(f"unsupported NodeId {text!r}")
    return text[len("ns=2;s="):]


class DataValue:
    """An OPC UA attribute value with quality and source timestamp."""

    def __init__(self, value: float, status: int = STATUS_GOOD,
                 source_timestamp: float = 0.0):
        self.value = float(value)
        self.status = status
        self.source_timestamp = float(source_timestamp)

    @property
    def is_good(self) -> bool:
        return self.status < STATUS_UNCERTAIN

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DataValue({self.value}, status={self.status:#010x}, "
                f"ts={self.source_timestamp})")


class AddressSpace:
    """A minimal OPC UA server address space: path -> DataValue."""

    def __init__(self) -> None:
        self._nodes: Dict[str, DataValue] = {}
        self._writable: Dict[str, bool] = {}

    def add_node(self, path: str, value: float = 0.0,
                 writable: bool = False) -> None:
        """Declare a node; duplicates are an error."""
        if path in self._nodes:
            raise FrameEncodeError(f"node {path!r} already exists")
        self._nodes[path] = DataValue(value)
        self._writable[path] = writable

    def read(self, path: str) -> DataValue:
        """Read a node's DataValue; unknown nodes raise."""
        try:
            return self._nodes[path]
        except KeyError:
            raise FrameDecodeError(f"no such node {path!r}") from None

    def update(self, path: str, value: float, timestamp: float,
               status: int = STATUS_GOOD) -> None:
        """Server-side update (the wired device feeding the server)."""
        node = self.read(path)
        node.value = float(value)
        node.status = status
        node.source_timestamp = float(timestamp)

    def write(self, path: str, value: float) -> bool:
        """Client write; returns False for unknown/read-only nodes."""
        if not self._writable.get(path, False):
            return False
        self._nodes[path].value = float(value)
        return True

    def browse(self, prefix: str = "") -> List[str]:
        """List node paths under *prefix*, sorted."""
        return sorted(
            path for path in self._nodes
            if path.startswith(prefix)
        )


def _pack_string(text: str) -> bytes:
    blob = text.encode("utf-8")
    return struct.pack("<I", len(blob)) + blob


def _unpack_string(frame: bytes, offset: int) -> Tuple[str, int]:
    require(offset + 4 <= len(frame), "truncated OPC UA string length")
    length = struct.unpack_from("<I", frame, offset)[0]
    offset += 4
    require(offset + length <= len(frame), "truncated OPC UA string")
    try:
        text = frame[offset:offset + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FrameDecodeError(f"corrupt OPC UA string: {exc}") from exc
    return text, offset + length


@register_protocol
class OpcUaAdapter(ProtocolAdapter):
    """Codec for OPC UA publish notifications and write requests."""

    name = "opcua"

    def uplink_quantities(self) -> Tuple[str, ...]:
        return tuple(sorted(_NODE_FOR_QUANTITY))

    # -- uplink ------------------------------------------------------------

    def encode_readings(
        self,
        device_address: str,
        readings: Sequence[Tuple[str, float]],
        timestamp: float,
    ) -> bytes:
        if not readings:
            raise FrameEncodeError("OPC UA notification needs an item")
        out = bytearray()
        out += _MAGIC
        out.append(_MSG_NOTIFICATION)
        out += struct.pack("<H", len(readings))
        for quantity, value in readings:
            if quantity not in _NODE_FOR_QUANTITY:
                raise FrameEncodeError(
                    f"OPC UA mapping has no node for {quantity!r}"
                )
            path = f"{device_address}.{_NODE_FOR_QUANTITY[quantity]}"
            out += _pack_string(node_id(path))
            out.append(_VARIANT_DOUBLE)
            out += struct.pack("<d", float(value))
            out += struct.pack("<I", STATUS_GOOD)
            out += struct.pack("<d", float(timestamp))
        return bytes(out)

    def decode_frame(self, frame: bytes, received_at: float = 0.0
                     ) -> List[RawReading]:
        require(frame[:4] == _MAGIC, "not an OPC UA message")
        require(len(frame) >= 7, "OPC UA message too short")
        require(frame[4] == _MSG_NOTIFICATION,
                "not an OPC UA publish notification")
        count = struct.unpack_from("<H", frame, 5)[0]
        offset = 7
        readings: List[RawReading] = []
        for _ in range(count):
            nid, offset = _unpack_string(frame, offset)
            require(offset + 1 + 8 + 4 + 8 <= len(frame),
                    "truncated OPC UA monitored item")
            variant = frame[offset]
            require(variant == _VARIANT_DOUBLE,
                    f"unsupported OPC UA variant {variant:#x}")
            offset += 1
            value = struct.unpack_from("<d", frame, offset)[0]
            offset += 8
            status = struct.unpack_from("<I", frame, offset)[0]
            offset += 4
            source_ts = struct.unpack_from("<d", frame, offset)[0]
            offset += 8
            path = parse_node_id(nid)
            device_address, _, node = path.rpartition(".")
            require(bool(device_address), f"NodeId {nid!r} has no device path")
            require(node in _QUANTITY_FOR_NODE,
                    f"unknown OPC UA node {node!r}")
            if status >= STATUS_BAD:
                continue  # bad-quality values never enter the system
            readings.append(
                RawReading(
                    device_address,
                    _QUANTITY_FOR_NODE[node],
                    value,
                    source_ts,
                )
            )
        require(offset == len(frame), "trailing bytes in OPC UA message")
        return readings

    # -- downlink ----------------------------------------------------------

    def encode_command(
        self, device_address: str, command: str, value: Optional[float]
    ) -> bytes:
        if command not in _COMMAND_NODES:
            raise FrameEncodeError(f"OPC UA has no command {command!r}")
        path = f"{device_address}.{_COMMAND_NODES[command]}"
        out = bytearray()
        out += _MAGIC
        out.append(_MSG_WRITE)
        out += _pack_string(node_id(path))
        out.append(_VARIANT_DOUBLE)
        out += struct.pack("<d", 0.0 if value is None else float(value))
        return bytes(out)

    def decode_command(self, frame: bytes) -> RawCommand:
        require(frame[:4] == _MAGIC, "not an OPC UA message")
        require(len(frame) >= 6, "OPC UA message too short")
        require(frame[4] == _MSG_WRITE, "not an OPC UA write request")
        nid, offset = _unpack_string(frame, 5)
        require(offset + 1 + 8 <= len(frame), "truncated OPC UA write value")
        require(frame[offset] == _VARIANT_DOUBLE,
                "unsupported OPC UA variant in write")
        value = struct.unpack_from("<d", frame, offset + 1)[0]
        path = parse_node_id(nid)
        for node_suffix, command in _COMMANDS_FOR_NODE.items():
            suffix = "." + node_suffix
            if path.endswith(suffix):
                return RawCommand(path[:-len(suffix)], command, value)
        raise FrameDecodeError(f"write to non-command node {path!r}")
