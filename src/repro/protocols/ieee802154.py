"""IEEE 802.15.4 protocol adapter.

Models a bare-metal 802.15.4 deployment (no ZigBee stack on top): MAC
data frames carrying a compact TLV sensor payload, with the real frame
layout — frame control field, sequence number, PAN id, short addresses,
and a CRC-16/CCITT FCS trailer.

Native encodings deliberately differ from the other protocols:
readings travel as typed TLVs whose value width depends on the type
(32-bit watts/watt-hours for metering, 16-bit scaled integers such as
deci-degrees and half-percent humidity for environment channels), so
the adapter exercises genuine unit translation.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from repro.common.units import convert
from repro.errors import FrameEncodeError
from repro.protocols.base import (
    ProtocolAdapter,
    RawCommand,
    RawReading,
    crc16_ccitt,
    register_protocol,
    require,
)

#: frame control field for a data frame, short addressing both ways
_FCF_DATA = 0x8841
#: frame control field used for our command (downlink) frames
_FCF_COMMAND = 0x8843

_PAN_ID = 0x1A2B

#: TLV type code -> (quantity, native unit, big-endian struct format).
#: Each type defines its own value width: metering types (power in W,
#: energy in Wh) use 32-bit fields so building feeders (>65 kW) and
#: cumulative counters (>65 kWh) never saturate; environment types stay
#: at the compact 16-bit width a constrained node would choose.
_SENSOR_TYPES = {
    0x01: ("power", "W", ">I"),
    0x02: ("temperature", "ddegC", ">h"),
    0x03: ("humidity", "%RH", ">H"),        # value is half-percent, see scale
    0x04: ("illuminance", "lx", ">H"),
    0x05: ("energy", "Wh", ">I"),
    0x06: ("occupancy", "count", ">H"),
    0x07: ("co2", "ppm", ">H"),
}
#: extra multiplier applied before unit conversion (humidity in 0.5 %RH)
_PRE_SCALE = {0x03: 0.5}

#: struct format -> (value byte width, min, max)
_FIELD_RANGES = {
    ">h": (2, -32768, 32767),
    ">H": (2, 0, 65535),
    ">I": (4, 0, 4294967295),
}

_QUANTITY_TO_TYPE = {q: code for code, (q, _u, _f) in _SENSOR_TYPES.items()}

#: command code -> command name
_COMMANDS = {0x10: "switch", 0x11: "setpoint", 0x12: "dim"}
_COMMAND_CODES = {name: code for code, name in _COMMANDS.items()}


def _to_native(quantity: str, value: float) -> int:
    """Convert a canonical value into the protocol's scaled integer."""
    code = _QUANTITY_TO_TYPE[quantity]
    _q, unit, fmt = _SENSOR_TYPES[code]
    pre = _PRE_SCALE.get(code, 1.0)
    # invert: canonical = convert(native * pre, unit); conversions are linear
    scale = convert(1.0, quantity, unit) - convert(0.0, quantity, unit)
    offset = convert(0.0, quantity, unit)
    native = (value - offset) / scale / pre
    _width, lo, hi = _FIELD_RANGES[fmt]
    return int(round(min(max(native, lo), hi)))


def _from_native(code: int, raw: int) -> Tuple[str, float]:
    quantity, unit, _fmt = _SENSOR_TYPES[code]
    pre = _PRE_SCALE.get(code, 1.0)
    return quantity, convert(raw * pre, quantity, unit)


def _parse_address(address: str) -> int:
    try:
        value = int(address, 16)
    except ValueError:
        raise FrameEncodeError(
            f"bad 802.15.4 short address {address!r}"
        ) from None
    if not 0 <= value <= 0xFFFF:
        raise FrameEncodeError(f"802.15.4 address out of range: {address!r}")
    return value


@register_protocol
class Ieee802154Adapter(ProtocolAdapter):
    """Codec for raw IEEE 802.15.4 TLV sensor frames."""

    name = "ieee802154"

    #: coordinator short address used as the proxy-side source
    COORDINATOR = 0x0000

    def __init__(self) -> None:
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq = (self._seq + 1) & 0xFF
        return self._seq

    def uplink_quantities(self) -> Tuple[str, ...]:
        return tuple(sorted(_QUANTITY_TO_TYPE))

    # -- uplink -----------------------------------------------------------

    def encode_readings(
        self,
        device_address: str,
        readings: Sequence[Tuple[str, float]],
        timestamp: float,
    ) -> bytes:
        if not readings:
            raise FrameEncodeError("802.15.4 frame needs at least one TLV")
        src = _parse_address(device_address)
        payload = bytearray()
        payload += struct.pack(">I", int(timestamp) & 0xFFFFFFFF)
        for quantity, value in readings:
            if quantity not in _QUANTITY_TO_TYPE:
                raise FrameEncodeError(
                    f"802.15.4 cannot carry quantity {quantity!r}"
                )
            code = _QUANTITY_TO_TYPE[quantity]
            _q, _unit, fmt = _SENSOR_TYPES[code]
            payload += struct.pack(">B", code)
            payload += struct.pack(fmt, _to_native(quantity, value))
        header = struct.pack(
            "<HBHHH",
            _FCF_DATA,
            self._next_seq(),
            _PAN_ID,
            self.COORDINATOR,
            src,
        )
        body = header + bytes(payload)
        return body + struct.pack("<H", crc16_ccitt(body))

    def decode_frame(self, frame: bytes, received_at: float = 0.0
                     ) -> List[RawReading]:
        require(len(frame) >= 11 + 2, "802.15.4 frame too short")
        body, fcs = frame[:-2], struct.unpack("<H", frame[-2:])[0]
        require(crc16_ccitt(body) == fcs, "802.15.4 FCS mismatch")
        fcf, _seq, pan, _dst, src = struct.unpack("<HBHHH", body[:9])
        require(fcf == _FCF_DATA, f"not an 802.15.4 data frame (FCF {fcf:#x})")
        require(pan == _PAN_ID, f"foreign PAN id {pan:#x}")
        payload = body[9:]
        require(len(payload) >= 4, "802.15.4 payload missing timestamp")
        timestamp = float(struct.unpack(">I", payload[:4])[0])
        readings: List[RawReading] = []
        offset = 4
        address = f"0x{src:04x}"
        while offset < len(payload):
            require(offset + 1 <= len(payload), "truncated 802.15.4 TLV")
            code = payload[offset]
            require(code in _SENSOR_TYPES, f"unknown TLV type {code:#x}")
            _q, _unit, fmt = _SENSOR_TYPES[code]
            width = _FIELD_RANGES[fmt][0]
            require(offset + 1 + width <= len(payload),
                    "truncated 802.15.4 TLV value")
            raw = struct.unpack(
                fmt, payload[offset + 1:offset + 1 + width]
            )[0]
            quantity, value = _from_native(code, raw)
            readings.append(RawReading(address, quantity, value, timestamp))
            offset += 1 + width
        return readings

    # -- downlink ---------------------------------------------------------

    def encode_command(
        self, device_address: str, command: str, value: Optional[float]
    ) -> bytes:
        if command not in _COMMAND_CODES:
            raise FrameEncodeError(f"802.15.4 has no command {command!r}")
        dst = _parse_address(device_address)
        payload = struct.pack(
            ">Bh",
            _COMMAND_CODES[command],
            0 if value is None else int(round(value * 10.0)),
        )
        header = struct.pack(
            "<HBHHH",
            _FCF_COMMAND,
            self._next_seq(),
            _PAN_ID,
            dst,
            self.COORDINATOR,
        )
        body = header + payload
        return body + struct.pack("<H", crc16_ccitt(body))

    def decode_command(self, frame: bytes) -> RawCommand:
        require(len(frame) >= 11 + 2, "802.15.4 command frame too short")
        body, fcs = frame[:-2], struct.unpack("<H", frame[-2:])[0]
        require(crc16_ccitt(body) == fcs, "802.15.4 FCS mismatch")
        fcf, _seq, pan, dst, _src = struct.unpack("<HBHHH", body[:9])
        require(fcf == _FCF_COMMAND, "not an 802.15.4 command frame")
        require(pan == _PAN_ID, f"foreign PAN id {pan:#x}")
        code, scaled = struct.unpack(">Bh", body[9:12])
        require(code in _COMMANDS, f"unknown command code {code:#x}")
        return RawCommand(
            device_address=f"0x{dst:04x}",
            command=_COMMANDS[code],
            value=scaled / 10.0,
        )
