"""EnOcean protocol adapter.

Models energy-harvesting EnOcean radio: ERP1-style telegrams with RORG
byte, 4BS data payload, 32-bit sender id, status byte and a CRC-8
trailer.  Sensor semantics follow EnOcean Equipment Profiles (EEP):

* ``A5-02-05`` — temperature 0..40 degC, inverted 8-bit range;
* ``A5-04-01`` — temperature + humidity, 0..250 scaled bytes;
* ``A5-12-01`` — automated meter reading (power W / energy Wh with a
  divisor field);
* ``A5-06-01`` — illuminance;
* ``A5-07-01`` — PIR occupancy.

Like the real radio, data telegrams do not identify their profile: the
receiver must first observe a *teach-in* telegram binding the sender id
to an EEP.  The proxy-side adapter keeps that teach-in table; decoding a
data telegram from an un-taught sender raises
:class:`~repro.errors.FrameDecodeError`, exactly the failure mode a real
gateway shows.  Telegrams carry no timestamp — readings are stamped with
the gateway arrival time (``received_at``).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FrameDecodeError, FrameEncodeError
from repro.protocols.base import (
    ProtocolAdapter,
    RawCommand,
    RawReading,
    crc8,
    register_protocol,
    require,
)

RORG_4BS = 0xA5
RORG_RPS = 0xF6
RORG_VLD = 0xD2
_TEACH_IN_BIT = 0x08  # DB0 bit 3: set = data telegram, clear = teach-in

#: EEP name -> numeric (func, type) used inside teach-in telegrams
_EEP_CODES = {
    "A5-02-05": (0x02, 0x05),
    "A5-04-01": (0x04, 0x01),
    "A5-06-01": (0x06, 0x01),
    "A5-07-01": (0x07, 0x01),
    "A5-12-01": (0x12, 0x01),
}
_EEP_BY_CODE = {code: name for name, code in _EEP_CODES.items()}

#: quantity combination (sorted tuple) -> EEP that carries it
_EEP_FOR_QUANTITIES = {
    ("temperature",): "A5-02-05",
    ("humidity",): "A5-04-01",
    ("humidity", "temperature"): "A5-04-01",
    ("illuminance",): "A5-06-01",
    ("occupancy",): "A5-07-01",
    ("power",): "A5-12-01",
    ("energy",): "A5-12-01",
    # a meter senses both; one telegram carries one reading (DT bit),
    # so encoding the pair raises and the firmware fragments
    ("energy", "power"): "A5-12-01",
}

_EEP_QUANTITIES = {
    "A5-02-05": ("temperature",),
    "A5-04-01": ("temperature", "humidity"),
    "A5-06-01": ("illuminance",),
    "A5-07-01": ("occupancy",),
    "A5-12-01": ("power", "energy"),
}

#: downlink command -> encoding
_COMMANDS = {"switch": 0x01, "setpoint": 0x02, "dim": 0x03}
_COMMANDS_BY_CODE = {code: name for name, code in _COMMANDS.items()}


def _parse_sender(address: str) -> int:
    try:
        value = int(address, 16)
    except ValueError:
        raise FrameEncodeError(f"bad EnOcean sender id {address!r}") from None
    if not 0 <= value <= 0xFFFFFFFF:
        raise FrameEncodeError(f"EnOcean sender id out of range {address!r}")
    return value


def _format_sender(value: int) -> str:
    return f"{value:08x}"


def _clamp_byte(value: float) -> int:
    return int(round(min(max(value, 0.0), 255.0)))


@register_protocol
class EnOceanAdapter(ProtocolAdapter):
    """Codec for EnOcean 4BS telegrams with a per-gateway teach-in table."""

    name = "enocean"

    def __init__(self) -> None:
        self._taught: Dict[str, str] = {}  # sender id -> EEP name

    def uplink_quantities(self) -> Tuple[str, ...]:
        quantities = set()
        for combo in _EEP_FOR_QUANTITIES:
            quantities.update(combo)
        return tuple(sorted(quantities))

    @property
    def taught_devices(self) -> Dict[str, str]:
        """Read-only view of the teach-in table (sender id -> EEP)."""
        return dict(self._taught)

    # -- teach-in ----------------------------------------------------------

    def encode_teach_in(self, device_address: str, eep: str) -> bytes:
        """Device side: build the teach-in telegram announcing *eep*."""
        if eep not in _EEP_CODES:
            raise FrameEncodeError(f"unknown EEP {eep!r}")
        func, type_ = _EEP_CODES[eep]
        # 4BS teach-in: DB3..DB1 carry func/type, DB0 teach-in bit clear
        data = bytes([func, type_, 0x00, 0x00])
        return self._build_telegram(RORG_4BS, data, device_address)

    def eep_for_quantities(self, quantities: Sequence[str]) -> str:
        """Pick the EEP able to carry *quantities*; raises if none can."""
        key = tuple(sorted(quantities))
        try:
            return _EEP_FOR_QUANTITIES[key]
        except KeyError:
            raise FrameEncodeError(
                f"no EnOcean profile carries quantities {key!r}"
            ) from None

    # -- uplink ------------------------------------------------------------

    def encode_readings(
        self,
        device_address: str,
        readings: Sequence[Tuple[str, float]],
        timestamp: float,
    ) -> bytes:
        if not readings:
            raise FrameEncodeError("EnOcean telegram needs a reading")
        values = dict(readings)
        eep = self.eep_for_quantities(list(values))
        if eep == "A5-02-05":
            temp = values["temperature"]
            db1 = _clamp_byte(255.0 - temp * 255.0 / 40.0)
            data = bytes([0x00, 0x00, db1, _TEACH_IN_BIT])
        elif eep == "A5-04-01":
            humidity = values.get("humidity", 0.0)
            temp = values.get("temperature", 0.0)
            db2 = _clamp_byte(humidity * 250.0 / 100.0)
            db1 = _clamp_byte(temp * 250.0 / 40.0)
            data = bytes([0x00, db2, db1, _TEACH_IN_BIT])
        elif eep == "A5-06-01":
            lux = values["illuminance"]
            raw = _clamp_byte(lux * 255.0 / 30000.0)
            data = bytes([0x00, raw, 0x00, _TEACH_IN_BIT])
        elif eep == "A5-07-01":
            occupied = values["occupancy"] >= 0.5
            data = bytes([0x00, 0x00, 0xC8 if occupied else 0x00,
                          _TEACH_IN_BIT])
        else:  # A5-12-01 meter reading
            if "power" in values and "energy" in values:
                raise FrameEncodeError(
                    "A5-12-01 carries one reading per telegram"
                )
            if "power" in values:
                reading, data_type = values["power"], 1
            else:
                reading, data_type = values["energy"], 0
            counter = int(round(max(reading, 0.0)))
            require_encode(counter < 1 << 24, "meter counter overflow")
            db0 = _TEACH_IN_BIT | (data_type << 2)
            data = bytes([
                (counter >> 16) & 0xFF,
                (counter >> 8) & 0xFF,
                counter & 0xFF,
                db0,
            ])
        return self._build_telegram(RORG_4BS, data, device_address)

    def decode_frame(self, frame: bytes, received_at: float = 0.0
                     ) -> List[RawReading]:
        rorg, data, sender, _status = self._parse_telegram(frame)
        require(rorg == RORG_4BS, f"unexpected RORG {rorg:#x} on uplink")
        db3, db2, db1, db0 = data
        if not db0 & _TEACH_IN_BIT:  # teach-in telegram
            code = (db3, db2)
            require(code in _EEP_BY_CODE,
                    f"teach-in for unknown EEP func/type {code}")
            self._taught[sender] = _EEP_BY_CODE[code]
            return []
        eep = self._taught.get(sender)
        if eep is None:
            raise FrameDecodeError(
                f"data telegram from un-taught sender {sender}"
            )
        readings: List[RawReading] = []
        if eep == "A5-02-05":
            temp = (255.0 - db1) * 40.0 / 255.0
            readings.append(RawReading(sender, "temperature", temp,
                                       received_at))
        elif eep == "A5-04-01":
            readings.append(RawReading(
                sender, "temperature", db1 * 40.0 / 250.0, received_at))
            readings.append(RawReading(
                sender, "humidity", db2 * 100.0 / 250.0, received_at))
        elif eep == "A5-06-01":
            readings.append(RawReading(
                sender, "illuminance", db2 * 30000.0 / 255.0, received_at))
        elif eep == "A5-07-01":
            readings.append(RawReading(
                sender, "occupancy", 1.0 if db1 >= 0x80 else 0.0,
                received_at))
        elif eep == "A5-12-01":
            counter = (db3 << 16) | (db2 << 8) | db1
            quantity = "power" if (db0 >> 2) & 0x01 else "energy"
            readings.append(RawReading(sender, quantity, float(counter),
                                       received_at))
        return readings

    # -- downlink ------------------------------------------------------------

    def encode_command(
        self, device_address: str, command: str, value: Optional[float]
    ) -> bytes:
        if command not in _COMMANDS:
            raise FrameEncodeError(f"EnOcean has no command {command!r}")
        scaled = 0 if value is None else int(round(value * 100.0))
        data = struct.pack(">Bh", _COMMANDS[command], scaled) + b"\x00"
        return self._build_telegram(RORG_VLD, data, device_address)

    def decode_command(self, frame: bytes) -> RawCommand:
        rorg, data, sender, _status = self._parse_telegram(frame)
        require(rorg == RORG_VLD, "not an EnOcean VLD command telegram")
        code, scaled = struct.unpack(">Bh", data[:3])
        require(code in _COMMANDS_BY_CODE,
                f"unknown EnOcean command code {code:#x}")
        return RawCommand(sender, _COMMANDS_BY_CODE[code], scaled / 100.0)

    # -- telegram framing ------------------------------------------------------

    @staticmethod
    def _build_telegram(rorg: int, data: bytes, address: str) -> bytes:
        sender = _parse_sender(address)
        body = bytes([rorg]) + data + struct.pack(">I", sender) + b"\x00"
        return body + bytes([crc8(body)])

    @staticmethod
    def _parse_telegram(frame: bytes) -> Tuple[int, bytes, str, int]:
        require(len(frame) >= 7, "EnOcean telegram too short")
        body, checksum = frame[:-1], frame[-1]
        require(crc8(body) == checksum, "EnOcean CRC8 mismatch")
        rorg = body[0]
        data = body[1:-5]
        sender = struct.unpack(">I", body[-5:-1])[0]
        status = body[-1]
        require(len(data) >= 3, "EnOcean data field too short")
        return rorg, data, _format_sender(sender), status


def require_encode(condition: bool, message: str) -> None:
    """Raise :class:`FrameEncodeError` unless *condition* holds."""
    if not condition:
        raise FrameEncodeError(message)
