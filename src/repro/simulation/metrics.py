"""Measurement utilities for the experiment harness.

Latencies inside the simulation are measured in *simulated* seconds
(differences of scheduler time around an operation); CPU costs of pure
translation/encoding code are measured in wall-clock seconds.  The
recorder keeps both kinds of samples by name and summarises them with
percentiles for the benchmark reports.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import QueryError
from repro.network.scheduler import Scheduler


@dataclass(frozen=True)
class Summary:
    """Percentile summary of one metric."""

    name: str
    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    def row(self) -> str:
        """One formatted table row (times printed in milliseconds)."""
        return (f"{self.name:<40s} n={self.count:<6d} "
                f"mean={self.mean * 1e3:9.3f}ms p50={self.p50 * 1e3:9.3f}ms "
                f"p90={self.p90 * 1e3:9.3f}ms p99={self.p99 * 1e3:9.3f}ms")


class MetricsRecorder:
    """Named sample collections with percentile summaries."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}

    def record(self, name: str, value: float) -> None:
        """Add one sample to metric *name*."""
        self._samples.setdefault(name, []).append(float(value))

    def samples(self, name: str) -> List[float]:
        """Raw samples of one metric."""
        try:
            return list(self._samples[name])
        except KeyError:
            raise QueryError(f"no samples recorded for {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._samples)

    def summary(self, name: str) -> Summary:
        """Percentile summary of one metric."""
        values = np.asarray(self.samples(name), dtype=float)
        return Summary(
            name=name,
            count=len(values),
            mean=float(np.mean(values)),
            p50=float(np.percentile(values, 50)),
            p90=float(np.percentile(values, 90)),
            p99=float(np.percentile(values, 99)),
            minimum=float(np.min(values)),
            maximum=float(np.max(values)),
        )

    def summaries(self) -> List[Summary]:
        return [self.summary(name) for name in self.names()]

    @contextmanager
    def simulated(self, name: str, scheduler: Scheduler):
        """Record the simulated time an operation takes."""
        start = scheduler.now
        yield
        self.record(name, scheduler.now - start)

    @contextmanager
    def wallclock(self, name: str):
        """Record the wall-clock (CPU) time an operation takes."""
        start = time.perf_counter()
        yield
        self.record(name, time.perf_counter() - start)
