"""Measurement utilities for the experiment harness.

Latencies inside the simulation are measured in *simulated* seconds
(differences of scheduler time around an operation); CPU costs of pure
translation/encoding code are measured in wall-clock seconds.  The
recorder keeps both kinds of samples by name and summarises them with
percentiles for the benchmark reports.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import QueryError
from repro.network.resilience import ResiliencePolicy
from repro.network.scheduler import Scheduler
from repro.observability.metrics import Histogram, MetricsRegistry

if TYPE_CHECKING:  # avoid a runtime cycle with the scenario builder
    from repro.simulation.scenario import DeployedDistrict


@dataclass(frozen=True)
class Summary:
    """Percentile summary of one metric."""

    name: str
    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    def row(self) -> str:
        """One formatted table row (times printed in milliseconds)."""
        return (f"{self.name:<40s} n={self.count:<6d} "
                f"mean={self.mean * 1e3:9.3f}ms p50={self.p50 * 1e3:9.3f}ms "
                f"p90={self.p90 * 1e3:9.3f}ms p99={self.p99 * 1e3:9.3f}ms")


class MetricsRecorder:
    """Named sample collections with percentile summaries.

    A thin experiment-harness facade over the general-purpose
    :class:`~repro.observability.metrics.MetricsRegistry`: every metric
    is one of its histograms, so the same samples are visible through
    ``/metrics`` endpoints when the recorder is given a network's
    installed registry.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()

    def _histogram(self, name: str) -> Histogram:
        instrument = self.registry.get(name)
        if not isinstance(instrument, Histogram):
            raise QueryError(f"no samples recorded for {name!r}")
        return instrument

    def record(self, name: str, value: float) -> None:
        """Add one sample to metric *name*."""
        self.registry.histogram(name).observe(float(value))

    def samples(self, name: str) -> List[float]:
        """Raw samples of one metric."""
        return list(self._histogram(name).values)

    def names(self) -> List[str]:
        return [name for name in self.registry.names()
                if isinstance(self.registry.get(name), Histogram)]

    def summary(self, name: str) -> Summary:
        """Percentile summary of one metric."""
        stats = self._histogram(name).stats()
        return Summary(name=name, **stats)

    def summaries(self) -> List[Summary]:
        return [self.summary(name) for name in self.names()]

    @contextmanager
    def simulated(self, name: str, scheduler: Scheduler):
        """Record the simulated time an operation takes."""
        start = scheduler.now
        yield
        self.record(name, scheduler.now - start)

    @contextmanager
    def wallclock(self, name: str):
        """Record the wall-clock (CPU) time an operation takes."""
        start = time.perf_counter()
        yield
        self.record(name, time.perf_counter() - start)


def resilience_counters(deployment: "DeployedDistrict",
                        policy: Optional[ResiliencePolicy] = None
                        ) -> Dict[str, int]:
    """One flat snapshot of every resilience counter in a deployment.

    Collects the lease, heartbeat, pub/sub-buffering and degraded-link
    counters scattered across the master, the peers and the network
    stats; pass the client's :class:`ResiliencePolicy` to fold in its
    retry/breaker counters too.  Used by the churn benchmark reports.
    """
    master = deployment.master
    net = deployment.network.stats
    broker = deployment.broker.stats
    device_proxies = list(deployment.device_proxies.values())
    proxies = ([deployment.gis_proxy]
               + list(deployment.bim_proxies.values())
               + list(deployment.sim_proxies.values())
               + device_proxies)
    peers = [deployment.measurement_db.peer] \
        + [proxy.peer for proxy in device_proxies]
    counters = {
        "lease_evictions": master.lease_evictions,
        "active_leases": master.active_leases,
        "heartbeats_sent": deployment.measurement_db.heartbeats_sent
        + sum(p.heartbeats_sent for p in proxies),
        "heartbeats_failed": deployment.measurement_db.heartbeats_failed
        + sum(p.heartbeats_failed for p in proxies),
        "publications_buffered": sum(p.publications_buffered
                                     for p in peers),
        "publications_dropped": sum(p.publications_dropped for p in peers),
        "publications_flushed": sum(p.publications_flushed for p in peers),
        "resubscribes_sent": sum(p.resubscribes_sent for p in peers),
        "broker_publish_acks": broker.publish_acks_sent,
        "broker_pings_answered": broker.pings_answered,
        "messages_dropped_flaky": net.messages_dropped_flaky,
        "messages_dropped_partition": net.messages_dropped_partition,
        "latency_spikes": net.latency_spikes,
    }
    if deployment.replication is not None:
        counters.update(replication_counters(deployment))
    if policy is not None:
        counters.update(policy.counters())
    return counters


def replication_counters(deployment: "DeployedDistrict"
                         ) -> Dict[str, int]:
    """Aggregated master-replication counters of a deployment.

    Empty for single-master deployments; otherwise the group-wide sums
    from :meth:`~repro.core.replication.MasterReplicationGroup.counters`
    (writes accepted/rejected, entries applied, promotions, fencings,
    ...) used by the HA benchmark reports.
    """
    if deployment.replication is None:
        return {}
    return deployment.replication.counters()


def broker_replication_counters(deployment: "DeployedDistrict"
                                ) -> Dict[str, int]:
    """Aggregated broker-replication counters of a deployment.

    Empty for single-broker deployments; otherwise the group-wide sums
    from :meth:`~repro.core.replication.ReplicationGroup.counters` over
    the broker replicas, plus the brokers' own recovery/refusal totals
    — the numbers the R4 benchmark reports.
    """
    if deployment.broker_replication is None:
        return {}
    counters = dict(deployment.broker_replication.counters())
    brokers = deployment.broker_replication.brokers()
    counters["broker_recoveries"] = sum(
        b.stats.recoveries for b in brokers)
    counters["broker_unrecovered_restarts"] = sum(
        b.stats.unrecovered_restarts for b in brokers)
    counters["broker_not_primary_refusals"] = sum(
        b.stats.not_primary_refusals for b in brokers)
    return counters


def data_plane_counters(deployment: "DeployedDistrict") -> Dict[str, int]:
    """One flat snapshot of the durable-data-plane counters.

    Collects the delivery-ack/redelivery/dead-letter and overload
    counters from the broker together with the measurement DB's
    idempotent-ingest and WAL/recovery counters, plus the peer-side
    rejection/drop totals — the numbers the R3 benchmark reports and
    the data-plane runbook reads.  All zero on a deployment without
    ``mdb_durability`` / ``broker_overload`` configured.
    """
    broker = deployment.broker
    mdb = deployment.measurement_db
    device_proxies = list(deployment.device_proxies.values())
    peers = [mdb.peer] + [proxy.peer for proxy in device_proxies]
    mdb_metrics = mdb.metrics()
    counters = {
        "deliveries_acked": broker.stats.deliveries_acked,
        "redeliveries": broker.stats.redeliveries,
        "consumer_busy": broker.stats.consumer_busy,
        "poison_nacks": broker.stats.poison_nacks,
        "dead_lettered": broker.stats.dead_lettered,
        "publications_shed": broker.stats.publications_shed,
        "publisher_rejections": broker.stats.publisher_rejections,
        "pending_deliveries": broker.pending_delivery_count(),
        "ingest_duplicates": mdb.ingest_duplicates,
        "backpressure_signals": mdb_metrics.get("backpressure_signals", 0),
        "poison_rejected": mdb_metrics.get("poison_rejected", 0),
        "recoveries": mdb_metrics.get("recoveries", 0),
        "recovered_samples": mdb_metrics.get("recovered_samples", 0),
        "wal_fsynced_bytes": mdb_metrics.get("wal_fsynced_bytes", 0),
        "publications_rejected": sum(p.publications_rejected
                                     for p in peers),
        "publications_dropped": sum(p.publications_dropped for p in peers),
    }
    return counters
