"""Scenario deployment, workloads and metrics for experiments."""

from repro.simulation.faults import FaultInjector
from repro.simulation.metrics import (
    MetricsRecorder,
    Summary,
    resilience_counters,
)
from repro.simulation.scenario import (
    DeployedDistrict,
    Federation,
    ScenarioConfig,
    build_device,
    deploy,
    deploy_federation,
    deploy_into,
)
from repro.simulation.soak import SoakConfig, SoakResult, run_soak
from repro.simulation.workloads import (
    WorkloadResult,
    quantity_queries,
    random_area_queries,
    run_integration_workload,
    run_resolution_workload,
    single_building_queries,
    whole_district_query,
)

__all__ = [
    "DeployedDistrict",
    "FaultInjector",
    "Federation",
    "MetricsRecorder",
    "ScenarioConfig",
    "SoakConfig",
    "SoakResult",
    "Summary",
    "WorkloadResult",
    "build_device",
    "deploy",
    "deploy_federation",
    "deploy_into",
    "quantity_queries",
    "random_area_queries",
    "resilience_counters",
    "run_integration_workload",
    "run_resolution_workload",
    "run_soak",
    "single_building_queries",
    "whole_district_query",
]
