"""Fault injection for robustness experiments.

Wraps a :class:`~repro.simulation.scenario.DeployedDistrict` with the
failure modes a real district deployment sees — proxy crashes, broker
outages, master restarts, network partitions — and the recovery actions
the architecture supports (proxy re-registration rebuilding the
ontology).  Used by the robustness tests and the churn benchmarks.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.network.transport import FlakyProfile
from repro.simulation.scenario import DeployedDistrict


class FaultInjector:
    """Controlled failure and recovery on a deployed district."""

    def __init__(self, deployment: DeployedDistrict):
        self.deployment = deployment
        self._offline: List[str] = []
        self._device_proxy_by_host = {
            proxy.host.name: proxy
            for proxy in deployment.device_proxies.values()
        }

    # -- host-level faults --------------------------------------------------

    def take_offline(self, host_name: str) -> None:
        """Drop every message to/from *host_name* until restored.

        A dead Device-proxy process also stops listening on its radio
        side, so its dedicated layer drops frames while offline.
        """
        network = self.deployment.network
        if not network.has_host(host_name):
            raise ConfigurationError(f"no host {host_name!r} to fail")
        network.set_host_online(host_name, False)
        proxy = self._device_proxy_by_host.get(host_name)
        if proxy is not None:
            proxy.online = False
        if host_name not in self._offline:
            self._offline.append(host_name)

    def restore(self, host_name: str) -> None:
        """Bring a failed host back."""
        self.deployment.network.set_host_online(host_name, True)
        proxy = self._device_proxy_by_host.get(host_name)
        if proxy is not None:
            proxy.online = True
        if host_name in self._offline:
            self._offline.remove(host_name)

    def restore_all(self) -> None:
        """Bring every failed host back."""
        for host_name in list(self._offline):
            self.restore(host_name)

    @property
    def offline_hosts(self) -> List[str]:
        return list(self._offline)

    def partition(self, hosts: Iterable[str]) -> None:
        """Cut the links between *hosts* and the rest of the network.

        A true partition, not a crash: the isolated hosts stay up and
        keep talking **to each other**, but no message crosses the cut
        in either direction.  Undo with :meth:`heal_partition`.
        Repeated calls layer additional cuts (each healed together).
        """
        self.deployment.network.partition(hosts)

    def heal_partition(self) -> None:
        """Remove every active partition; all hosts can talk again."""
        self.deployment.network.heal_partition()

    def partition_master(self, with_hosts: Iterable[str] = ()) -> str:
        """Partition the current primary master away from the district.

        On a replicated deployment the *current primary* (which may be a
        promoted standby) is isolated — together with any *with_hosts*
        kept on its side of the cut — so the standbys stop hearing its
        heartbeats and fail over, while the old primary self-fences.
        Returns the isolated master's host name.
        """
        deployment = self.deployment
        if deployment.replication is not None:
            primary = deployment.replication.primary_master
        else:
            primary = deployment.master
        self.partition([primary.host.name, *with_hosts])
        return primary.host.name

    # -- degraded-link faults ----------------------------------------------

    def flaky(self, host_name: str, drop_probability: float = 0.0,
              latency_spike: float = 0.0,
              spike_probability: float = 0.0) -> None:
        """Degrade (not sever) a host's links until :meth:`heal`.

        Every message to or from *host_name* is independently dropped
        with *drop_probability*, and delayed by an extra *latency_spike*
        simulated seconds with *spike_probability* — the grey-failure
        mode (lossy backhaul, overloaded gateway) that retries and
        circuit breakers exist for, as opposed to the clean silence of
        :meth:`take_offline`.
        """
        network = self.deployment.network
        if not network.has_host(host_name):
            raise ConfigurationError(f"no host {host_name!r} to degrade")
        network.set_host_flaky(host_name, FlakyProfile(
            drop_probability=drop_probability,
            latency_spike=latency_spike,
            spike_probability=spike_probability,
        ))

    def heal(self, host_name: Optional[str] = None) -> None:
        """Remove the flaky profile of one host (or of all hosts)."""
        network = self.deployment.network
        if host_name is not None:
            network.clear_host_flaky(host_name)
            return
        for name in network.flaky_hosts():
            network.clear_host_flaky(name)

    # -- component-level faults --------------------------------------------

    def kill_broker(self) -> None:
        """Middleware outage: publications are lost until restore."""
        self.take_offline(self.deployment.broker.name)

    def restore_broker(self) -> None:
        self.restore(self.deployment.broker.name)

    def kill_primary_broker(self) -> str:
        """Kill the *current* primary broker; returns its host name.

        On a replicated deployment the acting primary (which may be a
        promoted standby) goes dark: the surviving standby stops hearing
        replication heartbeats and promotes itself after its seniority
        timeout, and peers rotate to it.  Falls back to the one broker
        when unreplicated.
        """
        deployment = self.deployment
        if deployment.broker_replication is not None:
            broker = deployment.broker_replication.primary_broker
        else:
            broker = deployment.broker
        self.take_offline(broker.name)
        return broker.name

    def partition_broker(self, with_hosts: Iterable[str] = ()) -> str:
        """Partition the current primary broker away from the district.

        Like :meth:`partition_master` but for the middleware: the
        isolated primary keeps running (and self-fences once no standby
        acks arrive) while the majority side elects a new primary.  Any
        *with_hosts* stay on the isolated side of the cut.  Returns the
        isolated broker's host name.
        """
        deployment = self.deployment
        if deployment.broker_replication is not None:
            broker = deployment.broker_replication.primary_broker
        else:
            broker = deployment.broker
        self.partition([broker.name, *with_hosts])
        return broker.name

    def restart_broker(self, recover: bool = True) -> Optional[int]:
        """Crash-restart the broker; recover durable state where possible.

        Unlike :meth:`restore_broker` (a network outage ending), a
        restart wipes the broker's in-memory subscription table,
        retained store, pending deliveries and dead-letter queue.  With
        ``recover=True`` (the default) a broker configured with a
        :class:`~repro.storage.durability.BrokerDurabilityConfig`
        reloads its last snapshot and replays the WAL tail (see
        :meth:`~repro.middleware.broker.Broker.recover`) — returns the
        number of state items restored, or None when the broker has no
        durable state to recover from.  Pass ``recover=False`` to
        simulate losing the disk too.  After an unrecovered restart,
        peers with a keepalive configured repair their own subscriptions
        on the next keepalive tick (:meth:`~repro.middleware.peer.
        MiddlewarePeer.resubscribe_all`).
        """
        broker = self.deployment.broker
        self.restore(broker.name)
        broker.reset()
        restored = None
        if recover:
            restored = broker.recover()
        else:
            broker.discard_durable_state()
        if restored is None:
            broker.stats.unrecovered_restarts += 1
        return restored

    def kill_measurement_db(self) -> str:
        """Take the global measurement DB offline; returns its host name.

        Publications keep flowing to the broker; with acked
        subscriptions they sit as pending deliveries (redelivered once
        the DB is back), otherwise they are simply lost.
        """
        host_name = self.deployment.measurement_db.host.name
        self.take_offline(host_name)
        return host_name

    def restore_measurement_db(self) -> None:
        """End a measurement-DB network outage (state intact)."""
        self.restore(self.deployment.measurement_db.host.name)

    def restart_measurement_db(self, recover: bool = True) -> int:
        """Crash-restart the measurement DB; recover state where possible.

        The crash wipes the in-memory store, freshness table, dedup
        window and ingest queue.  With ``recover=True`` (the default)
        the restarted DB reloads its last snapshot and replays the WAL
        tail (see :meth:`~repro.storage.measurementdb.
        MeasurementDatabase.recover`) — returns the number of samples
        restored.  Pass ``recover=False`` to simulate losing the disk
        too.  Either way the DB re-subscribes on the broker and, when a
        registration heartbeat is configured, re-registers and resumes
        heartbeating.
        """
        deployment = self.deployment
        mdb = deployment.measurement_db
        self.restore(mdb.host.name)
        mdb.reset()
        restored = mdb.recover() if recover else 0
        # the restarted process re-announces itself exactly like a
        # fresh boot: broker subscription, master registration, lease
        # renewal loop
        mdb.peer.resubscribe_all()
        heartbeat = deployment.config.heartbeat_period
        lease = heartbeat * deployment.config.lease_factor \
            if heartbeat else None
        mdb.register_with(deployment.master_uris, lease=lease)
        if heartbeat:
            mdb.start_heartbeat(deployment.master_uris, heartbeat,
                                lease=lease)
        return restored

    def kill_bim_proxy(self, entity_id: str) -> str:
        """Take one building's BIM proxy offline; returns its host name."""
        try:
            proxy = self.deployment.bim_proxies[entity_id]
        except KeyError:
            raise ConfigurationError(
                f"no BIM proxy for {entity_id!r}"
            ) from None
        self.take_offline(proxy.host.name)
        return proxy.host.name

    def kill_device_proxy(self, entity_id: str, protocol: str) -> str:
        """Take one Device-proxy offline; returns its host name."""
        try:
            proxy = self.deployment.device_proxies[(entity_id, protocol)]
        except KeyError:
            raise ConfigurationError(
                f"no device proxy for {entity_id!r}/{protocol!r}"
            ) from None
        self.take_offline(proxy.host.name)
        return proxy.host.name

    # -- master restart and recovery ------------------------------------------

    def restart_master(self, recover: bool = True) -> bool:
        """Crash-restart the master; recover state where possible.

        The in-memory ontology and lease table are wiped by the crash.
        With ``recover=True`` (the default) the restarted master reloads
        both from its last persisted snapshot when snapshotting is
        configured (see
        :meth:`~repro.core.master.MasterNode.recover_from_snapshot`), so
        a clean restart no longer needs an operator-driven
        :meth:`reregister_all`.  Returns True when state was recovered.
        Pass ``recover=False`` to simulate losing the snapshot too.
        """
        master = self.deployment.master
        master.reset()
        if recover:
            return master.recover_from_snapshot()
        return False

    def reregister_all(self) -> None:
        """Every proxy re-registers, rebuilding the master's ontology.

        In production this is the periodic registration heartbeat; here
        the injector triggers one round explicitly.  On a replicated
        deployment each proxy targets the whole master set.
        """
        deployment = self.deployment
        uris = deployment.master_uris
        heartbeat = deployment.config.heartbeat_period
        lease = heartbeat * deployment.config.lease_factor \
            if heartbeat else None
        mdb = deployment.measurement_db
        mdb.register_with(uris, lease=lease)
        if heartbeat:
            # idempotent: start_heartbeat no-ops while the renewal loop
            # is already running, and restarts it when an mdb
            # crash-restart left it stopped
            mdb.start_heartbeat(uris, heartbeat, lease=lease)
        deployment.gis_proxy.register_with(uris)
        for proxy in deployment.bim_proxies.values():
            proxy.register_with(uris)
        for proxy in deployment.sim_proxies.values():
            proxy.register_with(uris)
        for proxy in deployment.device_proxies.values():
            proxy.register_with(uris)
