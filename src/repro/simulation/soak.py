"""Sustained mixed-workload stress scenario (the O3 soak).

One deployment driven hard on every hot path at once, for long enough
that steady-state rates mean something:

* **registrations** — every proxy re-registers under heartbeat leases;
* **batched ingest** — all devices sampling, Device-proxies coalescing
  samples into line-protocol frames (the PR 7 batch pipeline);
* **resolves** — a client issues paced whole-district area queries;
* **pub/sub churn** — subscriber peers join on ``district/#`` and the
  oldest leave, so the broker's subscription table keeps moving.

The scenario is both the O3 benchmark (``benchmarks/bench_o3_soak.py``
asserts the profiler's attribution floor and the profiled/unprofiled
twin identity on it) and the standing perf-regression harness: `repro
soak` runs it from the CLI and prints the sustained message rate, and
`repro profile` runs it under the hot-loop profiler to show where the
wall clock goes.  Keeping the workload in one shared function is the
point — the CLI, the benchmark and the CI gate all measure the same
code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.middleware.peer import MiddlewarePeer, Subscription, connect
from repro.ontology import AreaQuery
from repro.proxies.device_proxy import BatchConfig
from repro.simulation.scenario import (
    DeployedDistrict,
    ScenarioConfig,
    deploy,
)

#: subscriber peers kept live at any moment during the churn phase
CHURN_POOL = 4


@dataclass
class SoakConfig:
    """Knobs of the soak workload (defaults match the O3 benchmark)."""

    seed: int = 17
    n_buildings: int = 6
    devices_per_building: int = 4
    #: simulated seconds of measured mixed workload (after warm-up)
    sim_duration: float = 1800.0
    #: simulated warm-up before measurement starts (registrations land,
    #: first samples flow) — excluded from the reported rates
    warmup: float = 120.0
    #: one whole-district resolve every this many simulated seconds
    resolve_period: float = 60.0
    #: one subscriber join + oldest leave every this many seconds
    churn_period: float = 120.0
    #: install the hot-loop profiler on the deployment
    profile: bool = False
    #: run on the reference (seed-shape) scheduler path instead of the
    #: fast path — the determinism twin's comparison knob
    reference_scheduler: bool = False


@dataclass
class SoakResult:
    """What one soak run measured."""

    wall_seconds: float
    sim_seconds: float
    messages_total: int
    events_processed: int
    resolves: int
    churn_cycles: int
    samples_ingested: int
    churn_events_received: int
    deployment: DeployedDistrict = field(repr=False)

    @property
    def msgs_per_sec(self) -> float:
        """Sustained transport messages per wall second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.messages_total / self.wall_seconds

    @property
    def profiler(self):
        """The deployment's hot-loop profiler (None when not profiled)."""
        return self.deployment.profiler


def _scenario(config: SoakConfig) -> ScenarioConfig:
    return ScenarioConfig(
        seed=config.seed,
        n_buildings=config.n_buildings,
        devices_per_building=config.devices_per_building,
        n_networks=1,
        heartbeat_period=60.0,
        publish_buffer=256,
        peer_keepalive=120.0,
        proxy_batching=BatchConfig(max_samples=25, max_age=10.0),
        profile=config.profile,
        reference_scheduler=config.reference_scheduler,
    )


def run_soak(config: Optional[SoakConfig] = None) -> SoakResult:
    """Deploy and drive the sustained mixed workload; returns the rates.

    Deterministic for a fixed :class:`SoakConfig` — the measured
    simulated work (message counts, events, ingested samples) is
    identical run-to-run and profiled-vs-unprofiled; only the wall
    clock varies with the machine.
    """
    config = config or SoakConfig()
    deployment = deploy(_scenario(config))
    network = deployment.network
    scheduler = deployment.scheduler
    client = deployment.client("soak-user", with_broker=False)
    query = AreaQuery(district_id=deployment.district_id)

    deployment.run(config.warmup)

    churn_received = [0]
    churners: List[Subscription] = []
    churn_seq = [0]

    def churn_cycle() -> None:
        churn_seq[0] += 1
        peer: MiddlewarePeer = connect(
            network.add_host(f"soak-sub-{churn_seq[0]}"),
            deployment.broker_hosts,
        )
        subscription = peer.subscribe(
            "district/#",
            lambda event: churn_received.__setitem__(
                0, churn_received[0] + 1),
        )
        churners.append(subscription)
        if len(churners) > CHURN_POOL:
            churners.pop(0).unsubscribe()

    ingested0 = deployment.measurement_db.ingested
    messages0 = network.stats.messages_delivered
    events0 = scheduler.events_processed
    sim0 = scheduler.now
    resolves = 0
    next_resolve = 0.0
    next_churn = 0.0
    elapsed = 0.0
    wall0 = time.perf_counter()
    while elapsed < config.sim_duration:
        if elapsed >= next_resolve:
            client.resolve(query)
            resolves += 1
            next_resolve += config.resolve_period
        if elapsed >= next_churn:
            churn_cycle()
            next_churn += config.churn_period
        advance = min(next_resolve, next_churn,
                      config.sim_duration) - elapsed
        deployment.run(advance)
        elapsed += advance
    wall = time.perf_counter() - wall0

    return SoakResult(
        wall_seconds=wall,
        sim_seconds=scheduler.now - sim0,
        messages_total=network.stats.messages_delivered - messages0,
        events_processed=scheduler.events_processed - events0,
        resolves=resolves,
        churn_cycles=churn_seq[0],
        samples_ingested=deployment.measurement_db.ingested - ingested0,
        churn_events_received=churn_received[0],
        deployment=deployment,
    )
