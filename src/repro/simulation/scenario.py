"""Scenario builder: deploy a synthetic district onto the infrastructure.

Takes a :class:`~repro.datasources.generators.DistrictDataset` and
stands up the whole Figure 1(a) architecture on one simulated network:
master node, middleware broker, global measurement database, one GIS
proxy, one BIM proxy per building, one SIM proxy per network, one
Device-proxy per (entity, protocol) pair with its device fleet wired
over radio links, every proxy registered on the master.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.client import DistrictClient
from repro.core.master import MasterNode
from repro.core.replication import (
    MasterReplicationGroup,
    ReplicationConfig,
    replicate_master,
)
from repro.datasources.generators import (
    DeviceSpec,
    DistrictDataset,
    synthesize_district,
)
from repro.devices import catalog
from repro.devices.base import SimulatedDevice
from repro.devices.energy import DeviceEnergyModel, budget_for_protocol
from repro.devices.firmware import DeviceFirmware, RadioLink
from repro.errors import ConfigurationError
from repro.middleware.broker import Broker, BrokerOverloadConfig
from repro.middleware.replication import (
    BrokerReplicationGroup,
    replicate_broker,
)
from repro.network.resilience import FailoverSet, ResiliencePolicy
from repro.network.scheduler import Scheduler
from repro.network.transport import LatencyModel, Network
from repro.observability.collector import FleetMonitor, FleetMonitorConfig
from repro.protocols.base import make_adapter
from repro.proxies.database_proxy import BimProxy, GisProxy, SimProxy
from repro.proxies.device_proxy import BatchConfig, DeviceProxy
from repro.storage.blocks import TsdbConfig
from repro.storage.durability import (
    BrokerDurabilityConfig,
    DurabilityConfig,
)
from repro.storage.measurementdb import MeasurementDatabase


@dataclass
class ScenarioConfig:
    """Parameters of a deployed scenario."""

    seed: int = 0
    n_buildings: int = 8
    devices_per_building: int = 5
    n_networks: int = 1
    net_base_latency: float = 0.002
    net_jitter: float = 0.1
    radio_latency: float = 0.01
    radio_loss: float = 0.0
    retention: Optional[float] = 7 * 86400.0
    start_devices: bool = True
    office_fraction: float = 0.5
    #: prepended to every per-district host name; lets several districts
    #: share one network/master/broker (see :func:`deploy_federation`)
    host_prefix: str = ""
    #: when set, every proxy re-registers with this period (simulated
    #: seconds) under a lease of ``lease_factor`` periods, and the master
    #: evicts proxies whose lease expires — the resilience layer's
    #: registration heartbeat.  None keeps legacy permanent registrations.
    heartbeat_period: Optional[float] = None
    lease_factor: float = 3.0
    #: bounded per-peer publication buffer (events) — device proxies
    #: buffer publications while the broker is unreachable and flush on
    #: reconnect.  None disables acks/buffering (legacy behaviour).
    publish_buffer: Optional[int] = None
    #: period of the peers' subscription keepalive (re-subscribe after a
    #: broker crash-restart); None disables it.
    peer_keepalive: Optional[float] = None
    #: install the observability layer (tracer + metrics registry, see
    #: :func:`repro.observability.install`) on the network at deploy
    #: time.  The default keeps both disabled: zero tracing overhead.
    observability: bool = False
    #: install the DES hot-loop profiler (see
    #: :func:`repro.observability.profiler.install_profiler`) at deploy
    #: time.  Also switchable fleet-wide via the ``REPRO_PROFILE``
    #: environment variable.  The default keeps it off: the hot loop
    #: pays one None check per event.
    profile: bool = False
    #: run the scheduler in reference mode — the seed-shape dispatch
    #: loop (unfused run_until, no tombstone compaction).  Semantics
    #: are identical to the fast path; the determinism twin test runs
    #: the same scenario both ways and asserts it.
    reference_scheduler: bool = False
    #: number of standby master replicas (see
    #: :mod:`repro.core.replication`).  0 keeps the paper's single
    #: master; 1–2 deploy a replicated master group, and clients and
    #: proxy registrations automatically use the whole master set.
    master_standbys: int = 0
    #: replication timing knobs; None uses :class:`ReplicationConfig`
    #: defaults (only meaningful with ``master_standbys > 0``)
    replication: Optional[ReplicationConfig] = None
    #: when set, the (primary) master persists periodic ontology+lease
    #: snapshots to this path, and a restarted master recovers from it
    #: (see :meth:`~repro.core.master.MasterNode.recover_from_snapshot`)
    master_snapshot_path: Optional[str] = None
    #: period of persisted master snapshots, simulated seconds
    master_snapshot_period: float = 300.0
    #: deploy an in-sim fleet monitor (metrics collector + SLO engine +
    #: alert manager, see :mod:`repro.observability.collector`) that
    #: scrapes every node of this district through the transport layer.
    #: None (the default) deploys nothing: zero scrape traffic.
    fleet_monitor: Optional[FleetMonitorConfig] = None
    #: durable data plane for the measurement DB (WAL + snapshots +
    #: consumer acks + idempotent ingest, see
    #: :class:`~repro.storage.durability.DurabilityConfig`).  None keeps
    #: the legacy volatile best-effort store.
    mdb_durability: Optional[DurabilityConfig] = None
    #: broker backpressure (watermarks + per-publisher fairness, see
    #: :class:`~repro.middleware.broker.BrokerOverloadConfig`).  None
    #: disables shedding entirely.
    broker_overload: Optional[BrokerOverloadConfig] = None
    #: columnar time-series engine for the measurement DB (sealed
    #: blocks + rollups + compaction, see
    #: :class:`~repro.storage.blocks.TsdbConfig`).  None keeps the
    #: dict-backed :class:`~repro.storage.localdb.LocalDatabase`.
    mdb_tsdb: Optional[TsdbConfig] = None
    #: batch device-proxy publications into line-protocol frames (see
    #: :class:`~repro.proxies.device_proxy.BatchConfig`).  None keeps
    #: one envelope per sample.
    proxy_batching: Optional[BatchConfig] = None
    #: number of standby broker replicas (see
    #: :mod:`repro.middleware.replication`).  0 keeps the single broker;
    #: 1–2 deploy a replicated broker group, and every peer (device
    #: proxies, measurement DB, clients) automatically rotates across
    #: the whole broker set on failover.
    broker_standbys: int = 0
    #: broker replication timing knobs; None uses
    #: :class:`ReplicationConfig` defaults (only meaningful with
    #: ``broker_standbys > 0``)
    broker_replication: Optional[ReplicationConfig] = None
    #: durable broker state for the (primary) broker (WAL + snapshots,
    #: see :class:`~repro.storage.durability.BrokerDurabilityConfig`).
    #: None keeps the legacy volatile broker.
    broker_durability: Optional[BrokerDurabilityConfig] = None


@dataclass
class DeployedDistrict:
    """A running deployment plus handles to every component."""

    config: ScenarioConfig
    dataset: DistrictDataset
    scheduler: Scheduler
    network: Network
    master: MasterNode
    broker: Broker
    measurement_db: MeasurementDatabase
    gis_proxy: GisProxy
    bim_proxies: Dict[str, BimProxy] = field(default_factory=dict)
    sim_proxies: Dict[str, SimProxy] = field(default_factory=dict)
    device_proxies: Dict[Tuple[str, str], DeviceProxy] = \
        field(default_factory=dict)
    firmwares: List[DeviceFirmware] = field(default_factory=list)
    devices: Dict[str, SimulatedDevice] = field(default_factory=dict)
    energy_models: Dict[str, "DeviceEnergyModel"] = \
        field(default_factory=dict)
    #: the replicated master group, None for a single-master deployment
    replication: Optional[MasterReplicationGroup] = None
    #: the replicated broker group, None for a single-broker deployment
    broker_replication: Optional[BrokerReplicationGroup] = None
    #: the deployed fleet monitor, None unless configured
    fleet: Optional[FleetMonitor] = None

    @property
    def district_id(self) -> str:
        return self.dataset.district_id

    @property
    def master_uris(self) -> List[str]:
        """Every master URI, seniority first (one entry when unreplicated)."""
        if self.replication is not None:
            return self.replication.uris()
        return [self.master.uri]

    @property
    def broker_hosts(self) -> List[str]:
        """Every broker host, seniority first (one when unreplicated)."""
        if self.broker_replication is not None:
            return self.broker_replication.hosts()
        return [self.broker.name]

    @property
    def tracer(self):
        """The network's tracer, or None when tracing is not installed."""
        return self.network.tracer

    @property
    def metrics(self):
        """The network's metrics registry, or None when not installed."""
        return self.network.metrics

    @property
    def profiler(self):
        """The network's hot-loop profiler, or None when not installed."""
        return self.network.profiler

    def energy_report(self):
        """Fleet energy standing, shortest projected lifetime first."""
        from repro.devices.energy import fleet_energy_report

        protocols = {d.device_id: d.protocol
                     for d in self.dataset.devices}
        return fleet_energy_report(self.energy_models, protocols,
                                   self.scheduler.now)

    def run(self, duration: float) -> None:
        """Advance the whole deployment by *duration* simulated seconds."""
        self.scheduler.run_for(duration)

    def client(self, name: str = "user", with_broker: bool = True,
               policy: Optional["ResiliencePolicy"] = None,
               resolve_cache_ttl: Optional[float] = None
               ) -> DistrictClient:
        """Create an end-user application host + client.

        *policy* opts the client's HTTP layer into retries and circuit
        breaking (see :mod:`repro.network.resilience`);
        *resolve_cache_ttl* opts it into the resolve fast path (cached
        area answers revalidated against the master's ontology epoch).
        """
        host = self.network.add_host(name)
        return DistrictClient(
            host, self.master_uris,
            broker_host=self.broker_hosts if with_broker else None,
            policy=policy,
            resolve_cache_ttl=resolve_cache_ttl,
        )

    def device_proxy_for(self, device_id: str) -> DeviceProxy:
        """The Device-proxy owning a device."""
        for proxy in self.device_proxies.values():
            if any(d.device_id == device_id for d in proxy.devices()):
                return proxy
        raise ConfigurationError(f"no proxy owns device {device_id!r}")

    def stop_devices(self) -> None:
        """Halt every device's sampling loop."""
        for firmware in self.firmwares:
            firmware.stop()


def build_device(spec: DeviceSpec, dataset: DistrictDataset
                 ) -> SimulatedDevice:
    """Instantiate the simulated device a :class:`DeviceSpec` describes."""
    seed = int(spec.params.get("seed", 0))
    common = dict(device_id=spec.device_id, protocol=spec.protocol,
                  address=spec.address, entity_id=spec.entity_id,
                  location=spec.location)
    if spec.kind == "power_meter":
        building = dataset.building(spec.entity_id)
        return catalog.power_meter(load=building.load_profile, **common)
    if spec.kind == "environment_sensor":
        return catalog.environment_sensor(seed=seed, **common)
    if spec.kind == "occupancy_sensor":
        return catalog.occupancy_sensor(**common)
    if spec.kind == "smart_plug":
        return catalog.smart_plug(**common)
    if spec.kind == "hvac_controller":
        return catalog.hvac_controller(weather=dataset.weather, **common)
    if spec.kind == "dimmable_light":
        return catalog.dimmable_light(**common)
    if spec.kind == "pv_inverter":
        return catalog.pv_inverter(seed=seed, **common)
    if spec.kind == "heat_flow_meter":
        return catalog.heat_flow_meter(seed=seed, **common)
    raise ConfigurationError(f"unknown device kind {spec.kind!r}")


def deploy(config: Optional[ScenarioConfig] = None,
           dataset: Optional[DistrictDataset] = None) -> DeployedDistrict:
    """Deploy a district; generates the dataset from *config* if absent."""
    config = config or ScenarioConfig()
    scheduler = Scheduler(reference=config.reference_scheduler)
    network = Network(
        scheduler,
        latency=LatencyModel(base=config.net_base_latency,
                             jitter=config.net_jitter, seed=config.seed),
        seed=config.seed,
    )
    if config.observability:
        from repro.observability import install

        install(network)
    _profile_if_configured(network, config)
    broker = Broker(network.add_host("broker"),
                    overload=config.broker_overload,
                    durability=config.broker_durability)
    master = MasterNode(network.add_host("master"))
    replication = _replicate_if_configured(master, config)
    broker_replication = _replicate_broker_if_configured(broker, config)
    return deploy_into(master, broker, config, dataset,
                       replication=replication,
                       broker_replication=broker_replication)


def _profile_if_configured(network: Network, config: ScenarioConfig) -> None:
    """Install the hot-loop profiler when asked to, by config or env."""
    if config.profile or os.environ.get("REPRO_PROFILE"):
        from repro.observability.profiler import install_profiler

        install_profiler(network)


def _replicate_if_configured(master: MasterNode, config: ScenarioConfig
                             ) -> Optional[MasterReplicationGroup]:
    """Stand up the configured master HA: standbys and/or snapshots."""
    if config.master_snapshot_path:
        master.start_snapshots(config.master_snapshot_path,
                               config.master_snapshot_period)
    if not config.master_standbys:
        return None
    return replicate_master(master, config.master_standbys,
                            config.replication)


def _replicate_broker_if_configured(broker: Broker, config: ScenarioConfig
                                    ) -> Optional[BrokerReplicationGroup]:
    """Stand up the configured broker HA (see ``broker_standbys``)."""
    if not config.broker_standbys:
        return None
    return replicate_broker(broker, config.broker_standbys,
                            config.broker_replication)


def deploy_into(master: MasterNode, broker: Broker,
                config: ScenarioConfig,
                dataset: Optional[DistrictDataset] = None,
                district_index: int = 1,
                replication: Optional[MasterReplicationGroup] = None,
                broker_replication: Optional[BrokerReplicationGroup] = None
                ) -> DeployedDistrict:
    """Deploy one district onto existing master/broker infrastructure.

    The building block of multi-district federations: host names are
    prefixed with ``config.host_prefix`` so several districts coexist on
    one simulated network.  With *replication*, every proxy registers
    against the whole master set (failing over to the replica that
    answers) instead of the one primary.
    """
    network = master.host.network
    scheduler = network.scheduler
    prefix = config.host_prefix
    if dataset is None:
        dataset = synthesize_district(
            seed=config.seed,
            n_buildings=config.n_buildings,
            devices_per_building=config.devices_per_building,
            n_networks=config.n_networks,
            district_index=district_index,
            office_fraction=config.office_fraction,
        )
    heartbeat = config.heartbeat_period
    lease = heartbeat * config.lease_factor if heartbeat else None
    master_uris = replication.uris() if replication is not None \
        else [master.uri]
    if heartbeat:
        # every replica sweeps leases: a promoted standby must keep
        # evicting dead proxies without operator intervention
        targets = replication.masters() if replication is not None \
            else [master]
        for member in targets:
            member.start_lease_sweeper(heartbeat)

    broker_hosts = broker_replication.hosts() \
        if broker_replication is not None else [broker.name]
    measurement_db = MeasurementDatabase(
        network.add_host(f"{prefix}mdb"), broker_hosts, dataset.district_id,
        peer_keepalive=config.peer_keepalive,
        durability=config.mdb_durability,
        tsdb=config.mdb_tsdb,
    )
    mdb_masters = FailoverSet(master_uris)
    measurement_db.register_with(mdb_masters, lease=lease)
    if heartbeat:
        measurement_db.start_heartbeat(mdb_masters, heartbeat, lease=lease)

    gis_proxy = GisProxy(network.add_host(f"{prefix}proxy-gis"),
                         dataset.gis, dataset.district_id)
    gis_masters = FailoverSet(master_uris)
    gis_proxy.register_with(gis_masters, lease=lease)
    if heartbeat:
        gis_proxy.start_heartbeat(gis_masters, heartbeat, lease=lease)

    deployment = DeployedDistrict(
        config=config,
        dataset=dataset,
        scheduler=scheduler,
        network=network,
        master=master,
        broker=broker,
        measurement_db=measurement_db,
        gis_proxy=gis_proxy,
        replication=replication,
        broker_replication=broker_replication,
    )

    for building in dataset.buildings:
        feature = dataset.gis.feature(building.feature_id)
        proxy = BimProxy(
            network.add_host(f"{prefix}proxy-bim-{building.entity_id}"),
            building.bim,
            entity_id=building.entity_id,
            district_id=dataset.district_id,
            name=building.name,
            gis_feature_id=building.feature_id,
            bounds=feature.geometry.bounds(),
        )
        proxy_masters = FailoverSet(master_uris)
        proxy.register_with(proxy_masters, lease=lease)
        if heartbeat:
            proxy.start_heartbeat(proxy_masters, heartbeat, lease=lease)
        deployment.bim_proxies[building.entity_id] = proxy

    for network_spec in dataset.networks:
        proxy = SimProxy(
            network.add_host(f"{prefix}proxy-sim-{network_spec.entity_id}"),
            network_spec.sim,
            entity_id=network_spec.entity_id,
            district_id=dataset.district_id,
        )
        proxy_masters = FailoverSet(master_uris)
        proxy.register_with(proxy_masters, lease=lease)
        if heartbeat:
            proxy.start_heartbeat(proxy_masters, heartbeat, lease=lease)
        deployment.sim_proxies[network_spec.entity_id] = proxy

    _deploy_devices(deployment)
    if config.fleet_monitor is not None:
        deployment.fleet = _deploy_fleet_monitor(deployment)
    return deployment


def _deploy_fleet_monitor(deployment: DeployedDistrict) -> FleetMonitor:
    """Stand up the fleet monitor node and register every scrape target."""
    config = deployment.config
    prefix = config.host_prefix
    monitor = FleetMonitor(
        deployment.network.add_host(f"{prefix}fleet-monitor"),
        config.fleet_monitor,
    )
    masters = deployment.replication.masters() \
        if deployment.replication is not None else [deployment.master]
    for member in masters:
        monitor.watch(member.host.name, member.uri, "master")
    brokers = deployment.broker_replication.brokers() \
        if deployment.broker_replication is not None \
        else [deployment.broker]
    for member in brokers:
        monitor.watch(member.name, member.uri, "broker")
    monitor.watch(deployment.measurement_db.host.name,
                  deployment.measurement_db.uri, "measurement")
    monitor.watch(deployment.gis_proxy.name, deployment.gis_proxy.uri,
                  "gis")
    for _, proxy in sorted(deployment.bim_proxies.items()):
        monitor.watch(proxy.name, proxy.uri, "bim")
    for _, proxy in sorted(deployment.sim_proxies.items()):
        monitor.watch(proxy.name, proxy.uri, "sim")
    for _, proxy in sorted(deployment.device_proxies.items()):
        monitor.watch(proxy.name, proxy.uri, "device")
    monitor.start()
    return monitor


@dataclass
class Federation:
    """Several districts sharing one master, broker and network."""

    scheduler: Scheduler
    network: Network
    master: MasterNode
    broker: Broker
    districts: Dict[str, DeployedDistrict] = field(default_factory=dict)
    #: the shared replicated broker group, None when unreplicated
    broker_replication: Optional[BrokerReplicationGroup] = None

    @property
    def broker_hosts(self) -> List[str]:
        """Every shared broker host, seniority first."""
        if self.broker_replication is not None:
            return self.broker_replication.hosts()
        return [self.broker.name]

    def run(self, duration: float) -> None:
        """Advance the whole federation by *duration* simulated seconds."""
        self.scheduler.run_for(duration)

    def district(self, district_id: str) -> DeployedDistrict:
        try:
            return self.districts[district_id]
        except KeyError:
            raise ConfigurationError(
                f"no district {district_id!r} in federation"
            ) from None

    def client(self, name: str = "fed-user", with_broker: bool = True,
               policy: Optional[ResiliencePolicy] = None
               ) -> DistrictClient:
        """A client that can query any district through the one master."""
        host = self.network.add_host(name)
        return DistrictClient(
            host, self.master.uri,
            broker_host=self.broker_hosts if with_broker else None,
            policy=policy,
        )


def deploy_federation(configs) -> Federation:
    """Deploy several districts onto one shared master and broker.

    Each config gets its own generated district (district ids
    ``dst-0001``, ``dst-0002``, ...); host names are auto-prefixed.
    """
    configs = list(configs)
    if not configs:
        raise ConfigurationError("federation needs at least one district")
    base = configs[0]
    scheduler = Scheduler(reference=base.reference_scheduler)
    network = Network(
        scheduler,
        latency=LatencyModel(base=base.net_base_latency,
                             jitter=base.net_jitter, seed=base.seed),
        seed=base.seed,
    )
    if base.observability:
        from repro.observability import install

        install(network)
    _profile_if_configured(network, base)
    broker = Broker(network.add_host("broker"),
                    overload=base.broker_overload,
                    durability=base.broker_durability)
    master = MasterNode(network.add_host("master"))
    broker_replication = _replicate_broker_if_configured(broker, base)
    federation = Federation(scheduler=scheduler, network=network,
                            master=master, broker=broker,
                            broker_replication=broker_replication)
    for index, config in enumerate(configs, start=1):
        if not config.host_prefix:
            config = ScenarioConfig(**{**config.__dict__,
                                       "host_prefix": f"d{index}-"})
        deployment = deploy_into(master, broker, config,
                                 district_index=index,
                                 broker_replication=broker_replication)
        federation.districts[deployment.district_id] = deployment
    return federation


def _deploy_devices(deployment: DeployedDistrict) -> None:
    config = deployment.config
    dataset = deployment.dataset
    groups: Dict[Tuple[str, str], List[DeviceSpec]] = {}
    for spec in dataset.devices:
        groups.setdefault((spec.entity_id, spec.protocol), []).append(spec)
    for (entity_id, protocol), specs in sorted(groups.items()):
        host = deployment.network.add_host(
            f"{config.host_prefix}proxy-dev-{entity_id}-{protocol}"
        )
        proxy = DeviceProxy(
            host,
            adapter=make_adapter(protocol),
            broker_host=deployment.broker_hosts,
            district_id=dataset.district_id,
            retention=config.retention,
            publish_buffer=config.publish_buffer,
            peer_keepalive=config.peer_keepalive,
            batching=config.proxy_batching,
        )
        for spec in specs:
            device = build_device(spec, dataset)
            link = RadioLink(
                deployment.scheduler,
                latency=config.radio_latency,
                loss=config.radio_loss,
                seed=config.seed + len(deployment.firmwares),
            )
            proxy.attach_device(device, link)
            firmware = DeviceFirmware(device, make_adapter(protocol), link,
                                      deployment.scheduler)
            energy_model = DeviceEnergyModel(
                budget_for_protocol(protocol),
                start_time=deployment.scheduler.now,
            )
            firmware.attach_energy_model(energy_model)
            deployment.energy_models[spec.device_id] = energy_model
            if config.start_devices:
                firmware.start()
            deployment.firmwares.append(firmware)
            deployment.devices[spec.device_id] = device
        heartbeat = config.heartbeat_period
        lease = heartbeat * config.lease_factor if heartbeat else None
        proxy_masters = FailoverSet(deployment.master_uris)
        proxy.register_with(master_uri=proxy_masters, lease=lease)
        if heartbeat:
            proxy.start_heartbeat(proxy_masters, heartbeat, lease=lease)
        deployment.device_proxies[(entity_id, protocol)] = proxy
