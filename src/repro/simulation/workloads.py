"""Query workloads for the experiment harness.

Generates reproducible streams of area queries — whole-district,
random sub-areas (bounding boxes over the street grid), single-building
and quantity-filtered — and drives a client through them while
recording simulated latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.client import DistrictClient
from repro.datasources.geometry import BoundingBox
from repro.errors import ConfigurationError
from repro.ontology.queries import AreaQuery
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.scenario import DeployedDistrict


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    queries: int
    entities_returned: int
    devices_returned: int
    metrics: MetricsRecorder


def whole_district_query(deployment: DeployedDistrict) -> AreaQuery:
    """The coarsest query: everything in the district."""
    return AreaQuery(district_id=deployment.district_id)


def random_area_queries(deployment: DeployedDistrict, count: int,
                        seed: int = 0, fraction: float = 0.4
                        ) -> List[AreaQuery]:
    """Random bounding-box queries covering ~*fraction* of the district."""
    if count < 1:
        raise ConfigurationError("workload needs at least one query")
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError("fraction must be in (0, 1]")
    rng = np.random.RandomState(seed)
    bounds = deployment.dataset.gis.district_bounds()
    width = (bounds.max_x - bounds.min_x) * fraction
    height = (bounds.max_y - bounds.min_y) * fraction
    queries = []
    for _ in range(count):
        x0 = rng.uniform(bounds.min_x, max(bounds.max_x - width,
                                           bounds.min_x))
        y0 = rng.uniform(bounds.min_y, max(bounds.max_y - height,
                                           bounds.min_y))
        queries.append(AreaQuery(
            district_id=deployment.district_id,
            bbox=BoundingBox(x0, y0, x0 + width, y0 + height),
        ))
    return queries


def single_building_queries(deployment: DeployedDistrict,
                            count: Optional[int] = None, seed: int = 0
                            ) -> List[AreaQuery]:
    """One query per (randomly chosen) building."""
    rng = np.random.RandomState(seed)
    buildings = deployment.dataset.buildings
    chosen = buildings if count is None else [
        buildings[int(rng.randint(0, len(buildings)))] for _ in range(count)
    ]
    return [
        AreaQuery(district_id=deployment.district_id,
                  entity_ids=(b.entity_id,))
        for b in chosen
    ]


def quantity_queries(deployment: DeployedDistrict, quantity: str = "power"
                     ) -> List[AreaQuery]:
    """District-wide query filtered to one sensed quantity."""
    return [AreaQuery(district_id=deployment.district_id,
                      quantity=quantity)]


def run_resolution_workload(client: DistrictClient,
                            deployment: DeployedDistrict,
                            queries: List[AreaQuery]) -> WorkloadResult:
    """Resolve each query, recording master resolution latency."""
    metrics = MetricsRecorder()
    entities = devices = 0
    for query in queries:
        with metrics.simulated("resolve", deployment.scheduler):
            resolved = client.resolve(query)
        entities += len(resolved.entities)
        devices += resolved.device_count
    return WorkloadResult(len(queries), entities, devices, metrics)


def run_integration_workload(client: DistrictClient,
                             deployment: DeployedDistrict,
                             queries: List[AreaQuery],
                             with_data: bool = False,
                             data_bucket: Optional[float] = 900.0
                             ) -> WorkloadResult:
    """Run the full resolve-fetch-integrate workflow per query."""
    metrics = MetricsRecorder()
    entities = devices = 0
    for query in queries:
        with metrics.simulated("integrate", deployment.scheduler):
            model = client.build_area_model(
                query, with_data=with_data, data_bucket=data_bucket
            )
        entities += len(model.entities)
        devices += model.device_count
    return WorkloadResult(len(queries), entities, devices, metrics)
