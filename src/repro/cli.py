"""Command-line interface.

Gives a downstream user the whole stack without writing Python::

    repro demo                         # deploy, run, integrate, summarise
    repro monitor --buildings 6 --days 2
    repro generate --buildings 8 --networks 2
    repro protocols
    repro experiments

Installed as the ``repro`` console script (see ``pyproject.toml``); also
runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.simtime import duration, isoformat
from repro.core.monitoring import ConsumptionProfiler, awareness_report
from repro.datasources.generators import synthesize_district
from repro.ontology import AreaQuery
from repro.protocols import available_protocols, make_adapter
from repro.simulation import ScenarioConfig, deploy

#: the experiment index of DESIGN.md §3, kept here so `repro experiments`
#: answers without the docs at hand
EXPERIMENTS = (
    ("F1a", "Figure 1(a) infrastructure end-to-end",
     "bench_fig1a_infrastructure.py"),
    ("F1b", "Figure 1(b) Device-proxy per-layer costs",
     "bench_fig1b_device_proxy.py"),
    ("C1", "scalability: latency vs district size",
     "bench_c1_scalability.py"),
    ("C2", "interoperability across protocol mixes",
     "bench_c2_heterogeneity.py"),
    ("C3", "distributed vs centralized union DB",
     "bench_c3_vs_centralized.py"),
    ("C4", "pub/sub fan-out latency and throughput",
     "bench_c4_pubsub.py"),
    ("C5", "translation to the common data format",
     "bench_c5_translation.py"),
    ("C6", "ontology resolution vs size/selectivity",
     "bench_c6_ontology.py"),
    ("C7", "multi-resolution profiling vs ground truth",
     "bench_c7_profiling.py"),
    ("C8", "remote actuation round-trips and churn",
     "bench_c8_actuation.py"),
    ("C9", "resolve fast path: cache speedup and churn freshness",
     "bench_c9_resolve_cache.py"),
    ("C10", "batched ingest + columnar TSDB vs per-publish path",
     "bench_c10_ingest_tsdb.py"),
    ("A1", "ablation: redirect vs relay-through-master",
     "bench_a1_redirect_vs_relay.py"),
    ("R1", "resilience under churn: availability + staleness",
     "bench_r1_resilience.py"),
    ("R2", "master HA: availability through kill/partition/heal",
     "bench_r2_master_ha.py"),
    ("R3", "durable data plane: loss, duplicates, flood goodput",
     "bench_r3_data_plane.py"),
    ("R4", "broker HA: durable state + failover through kill/partition",
     "bench_r4_broker_ha.py"),
    ("O1", "observability: attribution, churn events, overhead",
     "bench_o1_observability.py"),
    ("O2", "fleet SLO alerting: detection latency, false positives",
     "bench_o2_fleet_slo.py"),
    ("O3", "soak: sustained mixed workload + hot-loop attribution",
     "bench_o3_soak.py"),
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="District energy data integration framework "
                    "(DATE 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="deploy, run one hour, integrate")
    demo.add_argument("--buildings", type=int, default=4)
    demo.add_argument("--devices", type=int, default=5)
    demo.add_argument("--networks", type=int, default=1)
    demo.add_argument("--seed", type=int, default=7)

    monitor = sub.add_parser("monitor",
                             help="run days of data, print profiles and "
                                  "the awareness report")
    monitor.add_argument("--buildings", type=int, default=6)
    monitor.add_argument("--days", type=float, default=1.0)
    monitor.add_argument("--seed", type=int, default=11)

    generate = sub.add_parser("generate",
                              help="generate a district and describe its "
                                   "data sources")
    generate.add_argument("--buildings", type=int, default=8)
    generate.add_argument("--networks", type=int, default=1)
    generate.add_argument("--devices", type=int, default=5)
    generate.add_argument("--seed", type=int, default=0)

    dashboard = sub.add_parser(
        "dashboard", help="render an HTML district dashboard"
    )
    dashboard.add_argument("output", nargs="?",
                           default="district_dashboard.html")
    dashboard.add_argument("--buildings", type=int, default=6)
    dashboard.add_argument("--days", type=float, default=1.0)
    dashboard.add_argument("--seed", type=int, default=13)

    energy = sub.add_parser(
        "energy", help="project device battery lifetimes for a district"
    )
    energy.add_argument("--buildings", type=int, default=4)
    energy.add_argument("--days", type=float, default=1.0)
    energy.add_argument("--seed", type=int, default=9)

    fleet = sub.add_parser(
        "fleet", help="deploy with the fleet monitor and show the "
                      "operator view (fleet table + alert log)"
    )
    fleet.add_argument("--buildings", type=int, default=4)
    fleet.add_argument("--devices", type=int, default=4)
    fleet.add_argument("--hours", type=float, default=1.0)
    fleet.add_argument("--interval", type=float, default=30.0,
                       help="scrape interval, simulated seconds")
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--chaos", action="store_true",
                       help="inject a mid-run broker outage to "
                            "demonstrate the alert lifecycle")

    soak = sub.add_parser(
        "soak", help="run the sustained mixed-workload stress scenario "
                     "and print the throughput summary"
    )
    soak.add_argument("--buildings", type=int, default=6)
    soak.add_argument("--devices", type=int, default=4)
    soak.add_argument("--minutes", type=float, default=30.0,
                      help="simulated minutes of measured workload")
    soak.add_argument("--seed", type=int, default=17)
    soak.add_argument("--profile", action="store_true",
                      help="run under the hot-loop profiler and print "
                           "the attribution table")

    profile = sub.add_parser(
        "profile", help="profile the DES hot loop over the soak "
                        "workload: top-N self-time table + call tree"
    )
    profile.add_argument("--buildings", type=int, default=6)
    profile.add_argument("--devices", type=int, default=4)
    profile.add_argument("--minutes", type=float, default=10.0,
                         help="simulated minutes of profiled workload")
    profile.add_argument("--seed", type=int, default=17)
    profile.add_argument("--top", type=int, default=20,
                         help="buckets in the self-time table")
    profile.add_argument("--json", dest="json_path", default=None,
                         metavar="PATH",
                         help="also export the full profile as JSON")

    sub.add_parser("protocols", help="list supported field protocols")
    sub.add_parser("experiments", help="list the experiment index")
    return parser


def cmd_demo(args: argparse.Namespace) -> int:
    district = deploy(ScenarioConfig(
        seed=args.seed, n_buildings=args.buildings,
        devices_per_building=args.devices, n_networks=args.networks,
    ))
    district.run(3600.0)
    client = district.client()
    model = client.build_area_model(
        AreaQuery(district_id=district.district_id), with_data=True,
    )
    print(f"district {district.district_id}: "
          f"{len(model.buildings)} buildings, "
          f"{len(model.networks)} networks, "
          f"{model.device_count} devices integrated")
    print(f"global measurement DB ingested "
          f"{district.measurement_db.ingested} samples in one hour")
    for building in model.buildings:
        power_devices = [d for d in building.devices
                         if "power" in d.quantities]
        latest = 0.0
        for device in power_devices[:1]:
            samples = building.samples(device.device_id, "power")
            if samples:
                latest = samples[-1][1]
        print(f"  {building.entity_id} {building.name:<14s} "
              f"{building.properties.get('use', '?'):<12s} "
              f"P={latest:9.0f} W  sources="
              f"{'+'.join(building.source_kinds)}")
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    district = deploy(ScenarioConfig(
        seed=args.seed, n_buildings=args.buildings,
        devices_per_building=5, n_networks=1,
    ))
    start = duration(days=4)  # Monday
    district.run(start)
    district.run(duration(days=args.days))
    client = district.client()
    model = client.build_area_model(
        AreaQuery(district_id=district.district_id),
        with_data=True, data_start=start,
    )
    profiler = ConsumptionProfiler(model, bucket=3600.0)
    peak_t, peak_w = profiler.peak()
    print(f"district peak {peak_w / 1e3:.1f} kW at {isoformat(peak_t)}")
    report = awareness_report(model, bucket=3600.0)
    print(f"district energy {report.district_energy_wh / 1e3:.1f} kWh "
          f"over {report.window_hours:.1f} h")
    print(f"{'building':<10s} {'kWh':>9s} {'Wh/m2':>8s} {'vs avg':>7s}")
    for entry in report.ranked:
        print(f"{entry.entity_id:<10s} {entry.energy_wh / 1e3:9.1f} "
              f"{entry.intensity_wh_per_m2:8.2f} "
              f"{entry.vs_district_average:6.2f}x")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    district = synthesize_district(
        seed=args.seed, n_buildings=args.buildings,
        devices_per_building=args.devices, n_networks=args.networks,
    )
    print(f"{district.district_id} ({district.name}), seed {args.seed}")
    print(f"GIS: {len(district.gis)} features")
    for building in district.buildings:
        print(f"  {building.entity_id} {building.use:<12s} "
              f"{building.floor_area_m2:8.0f} m2  "
              f"cadastral {building.cadastral_id}  "
              f"BIM records: {len(building.bim)}  devices: "
              f"{len(building.devices)}")
    for network in district.networks:
        print(f"  {network.entity_id} {network.commodity:<12s} "
              f"{network.sim.total_length_m():8.0f} m routes  "
              f"substations: {len(network.devices)}")
    protocols = {}
    for device in district.devices:
        protocols[device.protocol] = protocols.get(device.protocol, 0) + 1
    print("device protocols: " + ", ".join(
        f"{name}={count}" for name, count in sorted(protocols.items())
    ))
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.visualization import build_dashboard

    district = deploy(ScenarioConfig(
        seed=args.seed, n_buildings=args.buildings,
        devices_per_building=5, n_networks=1,
    ))
    start = duration(days=4)
    district.run(start + duration(days=args.days))
    client = district.client()
    model = client.build_area_model(
        AreaQuery(district_id=district.district_id),
        with_data=True, data_start=start, data_bucket=3600.0,
    )
    html = build_dashboard(model)
    with open(args.output, "w") as handle:
        handle.write(html)
    print(f"dashboard written to {args.output} "
          f"({html.count('<svg')} figures)")
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    district = deploy(ScenarioConfig(
        seed=args.seed, n_buildings=args.buildings,
        devices_per_building=5, n_networks=1,
    ))
    district.run(duration(days=args.days))
    rows = district.energy_report()
    print(f"{'device':<10s} {'protocol':<12s} {'charge':>7s} "
          f"{'life (days)':>12s} {'frames':>7s}")
    for row in rows:
        lifetime = ("mains/harvest"
                    if row.projected_lifetime_days == float("inf")
                    else f"{row.projected_lifetime_days:12.0f}")
        print(f"{row.device_id:<10s} {row.protocol:<12s} "
              f"{row.state_of_charge * 100:6.2f}% {lifetime:>13s} "
              f"{row.frames_sent:7d}")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.observability.collector import (
        FleetMonitorConfig,
        render_fleet,
    )
    from repro.observability.slo import render_alert_log
    from repro.simulation import FaultInjector

    district = deploy(ScenarioConfig(
        seed=args.seed, n_buildings=args.buildings,
        devices_per_building=args.devices, n_networks=1,
        fleet_monitor=FleetMonitorConfig(scrape_interval=args.interval),
    ))
    total = duration(hours=args.hours)
    if args.chaos:
        district.run(total / 3)
        injector = FaultInjector(district)
        injector.kill_broker()
        district.run(total / 3)
        injector.restore_broker()
        district.run(total / 3)
    else:
        district.run(total)
    print(render_fleet(district.fleet))
    print()
    print(render_alert_log(district.fleet.alerts))
    return 0


def _soak_summary(result) -> None:
    print(f"soak: {result.sim_seconds:,.0f} simulated seconds in "
          f"{result.wall_seconds:.2f}s wall "
          f"(x{result.sim_seconds / max(result.wall_seconds, 1e-9):,.0f} "
          f"sim/wall)")
    print(f"  messages delivered   {result.messages_total:>10,}  "
          f"({result.msgs_per_sec:,.0f} msgs/s sustained)")
    print(f"  scheduler events     {result.events_processed:>10,}")
    print(f"  samples ingested     {result.samples_ingested:>10,}")
    print(f"  resolves             {result.resolves:>10,}")
    print(f"  subscriber churn     {result.churn_cycles:>10,} cycles, "
          f"{result.churn_events_received:,} events to churners")


def cmd_soak(args: argparse.Namespace) -> int:
    from repro.observability import render_profile_table
    from repro.simulation import SoakConfig, run_soak

    result = run_soak(SoakConfig(
        seed=args.seed, n_buildings=args.buildings,
        devices_per_building=args.devices,
        sim_duration=args.minutes * 60.0, profile=args.profile,
    ))
    _soak_summary(result)
    if args.profile:
        print()
        print(render_profile_table(result.profiler))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.observability import (
        export_profile,
        render_profile_table,
        render_profile_tree,
    )
    from repro.simulation import SoakConfig, run_soak

    result = run_soak(SoakConfig(
        seed=args.seed, n_buildings=args.buildings,
        devices_per_building=args.devices,
        sim_duration=args.minutes * 60.0, profile=True,
    ))
    _soak_summary(result)
    print()
    print(render_profile_table(result.profiler, top=args.top))
    print()
    print(render_profile_tree(result.profiler))
    if args.json_path:
        import json

        with open(args.json_path, "w") as handle:
            json.dump(export_profile(result.profiler), handle, indent=2)
        print(f"\nfull profile exported to {args.json_path}")
    return 0


def cmd_protocols(_args: argparse.Namespace) -> int:
    for name in available_protocols():
        adapter = make_adapter(name)
        quantities = ", ".join(adapter.uplink_quantities())
        print(f"{name:<12s} uplink quantities: {quantities}")
    return 0


def cmd_experiments(_args: argparse.Namespace) -> int:
    print(f"{'id':<5s} {'bench target':<36s} description")
    for exp_id, description, target in EXPERIMENTS:
        print(f"{exp_id:<5s} {target:<36s} {description}")
    print("\nrun them all with:  pytest benchmarks/ --benchmark-only")
    return 0


_COMMANDS = {
    "demo": cmd_demo,
    "monitor": cmd_monitor,
    "generate": cmd_generate,
    "dashboard": cmd_dashboard,
    "energy": cmd_energy,
    "fleet": cmd_fleet,
    "soak": cmd_soak,
    "profile": cmd_profile,
    "protocols": cmd_protocols,
    "experiments": cmd_experiments,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
