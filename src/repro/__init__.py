"""repro — reproduction of Brundu et al., "A new distributed framework
for integration of district energy data from heterogeneous devices"
(DATE 2015).

A distributed middleware for city-district energy data: a master node
holding a district ontology, Device-proxies abstracting heterogeneous
field protocols (IEEE 802.15.4, ZigBee, EnOcean, OPC UA) behind Web
Services and pub/sub, Database-proxies translating BIM/SIM/GIS exports
to a common open format, and an end-user client that integrates it all.

Quickstart::

    from repro.simulation import ScenarioConfig, deploy
    from repro.ontology import AreaQuery

    district = deploy(ScenarioConfig(n_buildings=4))
    district.run(3600)                     # one simulated hour
    client = district.client()
    model = client.build_area_model(
        AreaQuery(district_id=district.district_id), with_data=True
    )
    print(model.device_count, "devices integrated")
"""

__version__ = "1.0.0"

from repro.core import DistrictClient, MasterNode, integrate
from repro.ontology import AreaQuery
from repro.simulation import ScenarioConfig, deploy

__all__ = [
    "AreaQuery",
    "DistrictClient",
    "MasterNode",
    "ScenarioConfig",
    "deploy",
    "integrate",
    "__version__",
]
