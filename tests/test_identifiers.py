"""Tests for entity ids and service URIs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.identifiers import (
    ENTITY_KINDS,
    EntityId,
    ServiceUri,
    entity_kind,
    make_entity_id,
    service_uri,
)
from repro.errors import ConfigurationError, QueryError


class TestEntityId:
    def test_valid_building_id(self):
        eid = EntityId("bld-0007")
        assert eid.kind == "building"
        assert str(eid) == "bld-0007"

    @pytest.mark.parametrize(
        "value,kind",
        [
            ("dst-torino", "district"),
            ("net-heat-01", "network"),
            ("dev-00a3", "device"),
            ("src-gis-1", "datasource"),
        ],
    )
    def test_kinds(self, value, kind):
        assert EntityId(value).kind == kind

    @pytest.mark.parametrize(
        "bad", ["", "bld", "xyz-1", "bld_0007", "BLD-0007", "bld-", "bld-a b"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(QueryError):
            EntityId(bad)

    def test_entity_kind_helper(self):
        assert entity_kind("net-0001") == "network"

    def test_make_entity_id_round_trip(self):
        eid = make_entity_id("dev", 163)
        assert eid == "dev-0163"
        assert entity_kind(eid) == "device"

    def test_make_entity_id_unknown_prefix(self):
        with pytest.raises(ConfigurationError):
            make_entity_id("zzz", 1)

    @given(st.sampled_from(sorted(ENTITY_KINDS)), st.integers(0, 10**6))
    def test_make_entity_id_always_parses(self, prefix, index):
        assert entity_kind(make_entity_id(prefix, index)) == ENTITY_KINDS[prefix]


class TestServiceUri:
    def test_parse_full(self):
        uri = ServiceUri.parse("svc://proxy-bld-0001/data/latest")
        assert uri.host == "proxy-bld-0001"
        assert uri.path == "/data/latest"

    def test_parse_no_path_defaults_root(self):
        assert ServiceUri.parse("svc://master").path == "/"

    def test_round_trip(self):
        text = "svc://master/resolve"
        assert str(ServiceUri.parse(text)) == text

    @pytest.mark.parametrize(
        "bad",
        ["http://master/", "svc:/master", "svc://", "svc://ho st/x", "master/x"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(QueryError):
            ServiceUri.parse(bad)

    def test_join_adds_segment(self):
        uri = ServiceUri("master", "/api")
        assert str(uri.join("resolve")) == "svc://master/api/resolve"

    def test_join_with_leading_slash(self):
        uri = ServiceUri("master", "/api/")
        assert str(uri.join("/resolve")) == "svc://master/api/resolve"

    def test_service_uri_helper_normalises_path(self):
        assert service_uri("h1", "x/y") == "svc://h1/x/y"

    @given(
        st.from_regex(r"[a-z][a-z0-9\-]{0,20}", fullmatch=True),
        st.from_regex(r"/[a-z0-9/\-]{0,30}", fullmatch=True),
    )
    def test_parse_format_round_trip(self, host, path):
        uri = ServiceUri(host, path)
        again = ServiceUri.parse(str(uri))
        assert again.host == host
        assert again.path == path
