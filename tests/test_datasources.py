"""Tests for the BIM / SIM / GIS native stores and the district generator."""

import numpy as np
import pytest

from repro.datasources import geometry as G
from repro.datasources.bim import (
    IFC_BUILDING,
    IFC_SPACE,
    IFC_STOREY,
    BimStore,
    build_office_bim,
    make_guid,
)
from repro.datasources.generators import synthesize_district
from repro.datasources.gis import (
    LAYER_BOUNDARY,
    LAYER_BUILDINGS,
    LAYER_ROUTES,
    GisStore,
)
from repro.datasources.sim import (
    COMMODITY_HEAT,
    NODE_CONSUMER,
    NODE_JUNCTION,
    NODE_PLANT,
    SimStore,
)
from repro.errors import ConfigurationError, UnknownEntityError


class TestBimStore:
    def test_build_office_structure(self):
        rng = np.random.RandomState(0)
        bim = build_office_bim(rng, "HQ", storeys=3, spaces_per_storey=4,
                               floor_area_m2=3000.0,
                               cadastral_id="TO-01-1000", year_built=1987)
        assert bim.root()["Name"] == "HQ"
        assert len(bim.by_type(IFC_STOREY)) == 3
        assert len(bim.spaces()) == 12
        props = bim.property_sets(bim.root()["GlobalId"])
        assert props["GrossFloorArea"] == 3000.0
        assert props["CadastralReference"] == "TO-01-1000"

    def test_children_navigation(self):
        rng = np.random.RandomState(1)
        bim = build_office_bim(rng, "HQ", 2, 3, 1000.0, "TO-01-1001", 2000)
        storeys = bim.children(bim.root()["GlobalId"])
        assert len(storeys) == 2
        spaces = bim.children(storeys[0]["GlobalId"])
        assert all(s["type"] == IFC_SPACE for s in spaces)

    def test_guids_are_22_chars_and_unique(self):
        rng = np.random.RandomState(2)
        guids = {make_guid(rng) for _ in range(500)}
        assert len(guids) == 500
        assert all(len(g) == 22 for g in guids)

    def test_duplicate_guid_rejected(self):
        store = BimStore("x")
        guid = "A" * 22
        store.add_record(guid, IFC_BUILDING, "b")
        with pytest.raises(ConfigurationError):
            store.add_record(guid, IFC_SPACE, "s")

    def test_second_root_rejected(self):
        store = BimStore("x")
        store.add_record("A" * 22, IFC_BUILDING, "b1")
        with pytest.raises(ConfigurationError):
            store.add_record("B" * 22, IFC_BUILDING, "b2")

    def test_missing_parent_rejected(self):
        store = BimStore("x")
        with pytest.raises(ConfigurationError):
            store.add_record("A" * 22, IFC_SPACE, "s", parent="Z" * 22)

    def test_unknown_record_raises(self):
        with pytest.raises(UnknownEntityError):
            BimStore("x").record("nope")

    def test_empty_store_has_no_root(self):
        with pytest.raises(UnknownEntityError):
            BimStore("x").root()

    def test_property_set_requires_target(self):
        store = BimStore("x")
        with pytest.raises(ConfigurationError):
            store.add_property_set("missing", "P" * 22, "pset", {})


class TestSimStore:
    def build_network(self):
        sim = SimStore("heat-1", COMMODITY_HEAT)
        sim.add_node("plant", NODE_PLANT, 0, 0, capacity_kw=1000)
        sim.add_node("j1", NODE_JUNCTION, 50, 0)
        sim.add_node("c1", NODE_CONSUMER, 100, 0, capacity_kw=80)
        sim.add_node("c2", NODE_CONSUMER, 50, 50, capacity_kw=60)
        sim.add_edge("e1", "plant", "j1", length_m=50, rating=500)
        sim.add_edge("e2", "j1", "c1", length_m=50, rating=100)
        sim.add_edge("e3", "j1", "c2", length_m=50, rating=100)
        sim.add_service_point("c1", "TO-01-1000")
        sim.add_service_point("c2", "TO-01-1001")
        return sim

    def test_unknown_commodity_rejected(self):
        with pytest.raises(ConfigurationError):
            SimStore("x", "hydrogen")

    def test_nodes_by_kind(self):
        sim = self.build_network()
        assert len(sim.nodes(NODE_CONSUMER)) == 2
        assert len(sim.nodes()) == 4

    def test_edges_at(self):
        sim = self.build_network()
        assert {e["edge_id"] for e in sim.edges_at("j1")} == \
            {"e1", "e2", "e3"}

    def test_edge_validation(self):
        sim = self.build_network()
        with pytest.raises(ConfigurationError):
            sim.add_edge("bad", "plant", "ghost", length_m=1, rating=1)
        with pytest.raises(ConfigurationError):
            sim.add_edge("bad2", "plant", "j1", length_m=0, rating=1)
        with pytest.raises(ConfigurationError):
            sim.add_edge("e1", "plant", "j1", length_m=1, rating=1)

    def test_service_points_and_parcels(self):
        sim = self.build_network()
        assert sim.cadastral_ids() == ["TO-01-1000", "TO-01-1001"]
        assert sim.consumer_for_parcel("TO-01-1001") == "c2"
        with pytest.raises(UnknownEntityError):
            sim.consumer_for_parcel("TO-99-9999")

    def test_service_point_requires_consumer(self):
        sim = self.build_network()
        with pytest.raises(ConfigurationError):
            sim.add_service_point("j1", "TO-01-1002")

    def test_path_to_plant(self):
        sim = self.build_network()
        assert sim.path_to_plant("c1") == ["c1", "j1", "plant"]

    def test_path_to_plant_disconnected(self):
        sim = self.build_network()
        sim.add_node("island", NODE_CONSUMER, 999, 999)
        with pytest.raises(UnknownEntityError):
            sim.path_to_plant("island")

    def test_total_length(self):
        assert self.build_network().total_length_m() == 150.0


class TestGisStore:
    def build_gis(self):
        gis = GisStore("Test District")
        gis.add_feature(LAYER_BUILDINGS, G.rectangle(50, 50, 20, 20),
                        {"cadastral_id": "TO-01-1000"})
        gis.add_feature(LAYER_BUILDINGS, G.rectangle(150, 50, 20, 20),
                        {"cadastral_id": "TO-01-1001"})
        gis.add_feature(LAYER_ROUTES, G.linestring([(0, 0), (150, 50)]),
                        {"network": "heat-1"})
        return gis

    def test_layers(self):
        gis = self.build_gis()
        assert len(gis.layer(LAYER_BUILDINGS)) == 2
        assert len(gis.layer(LAYER_ROUTES)) == 1
        assert gis.layer(LAYER_BOUNDARY) == []

    def test_unknown_layer_rejected(self):
        with pytest.raises(ConfigurationError):
            self.build_gis().add_feature("rivers", G.point(0, 0))
        with pytest.raises(ConfigurationError):
            self.build_gis().layer("rivers")

    def test_bbox_query(self):
        gis = self.build_gis()
        hits = gis.query_bbox(G.BoundingBox(0, 0, 100, 100),
                              layer=LAYER_BUILDINGS)
        assert len(hits) == 1
        assert hits[0].properties["cadastral_id"] == "TO-01-1000"

    def test_point_query(self):
        gis = self.build_gis()
        hits = gis.query_point(150, 50)
        assert len(hits) == 1
        assert hits[0].properties["cadastral_id"] == "TO-01-1001"
        assert gis.query_point(999, 999) == []

    def test_cadastral_join(self):
        gis = self.build_gis()
        feature = gis.by_cadastral_id("TO-01-1001")
        assert feature.geometry.centroid() == pytest.approx((150.0, 50.0))
        with pytest.raises(UnknownEntityError):
            gis.by_cadastral_id("TO-99-0000")

    def test_district_bounds(self):
        bounds = self.build_gis().district_bounds()
        assert bounds.min_x == 0.0
        assert bounds.max_x == 160.0

    def test_empty_store_bounds_raise(self):
        with pytest.raises(UnknownEntityError):
            GisStore("empty").district_bounds()

    def test_duplicate_feature_id_rejected(self):
        gis = GisStore("x")
        gis.add_feature(LAYER_BUILDINGS, G.point(0, 0), feature_id="f1")
        with pytest.raises(ConfigurationError):
            gis.add_feature(LAYER_BUILDINGS, G.point(1, 1), feature_id="f1")


class TestDistrictGenerator:
    def test_basic_shape(self):
        district = synthesize_district(seed=7, n_buildings=6,
                                       devices_per_building=4, n_networks=2)
        assert len(district.buildings) == 6
        assert len(district.networks) == 2
        assert all(len(b.devices) == 4 for b in district.buildings)
        # every building leads with its feeder meter
        assert all(b.devices[0].kind == "power_meter"
                   for b in district.buildings)

    def test_deterministic_for_seed(self):
        a = synthesize_district(seed=3, n_buildings=4)
        b = synthesize_district(seed=3, n_buildings=4)
        assert [d.device_id for d in a.devices] == \
            [d.device_id for d in b.devices]
        assert [d.address for d in a.devices] == \
            [d.address for d in b.devices]

    def test_different_seeds_differ(self):
        a = synthesize_district(seed=1, n_buildings=4)
        b = synthesize_district(seed=2, n_buildings=4)
        assert [d.protocol for d in a.devices] != \
            [d.protocol for d in b.devices] or \
            a.buildings[0].floor_area_m2 != b.buildings[0].floor_area_m2

    def test_device_ids_unique(self):
        district = synthesize_district(seed=0, n_buildings=10,
                                       devices_per_building=7, n_networks=2)
        ids = [d.device_id for d in district.devices]
        assert len(ids) == len(set(ids))

    def test_addresses_unique_per_protocol(self):
        district = synthesize_district(seed=0, n_buildings=10,
                                       devices_per_building=7)
        seen = set()
        for device in district.devices:
            key = (device.protocol, device.address)
            assert key not in seen
            seen.add(key)

    def test_gis_covers_every_building(self):
        district = synthesize_district(seed=5, n_buildings=9)
        for building in district.buildings:
            feature = district.gis.by_cadastral_id(building.cadastral_id)
            assert feature.feature_id == building.feature_id

    def test_bim_cadastral_reference_matches(self):
        district = synthesize_district(seed=5, n_buildings=4)
        for building in district.buildings:
            props = building.bim.property_sets(
                building.bim.root()["GlobalId"]
            )
            assert props["CadastralReference"] == building.cadastral_id

    def test_networks_serve_known_parcels(self):
        district = synthesize_district(seed=5, n_buildings=6, n_networks=2)
        parcels = {b.cadastral_id for b in district.buildings}
        for network in district.networks:
            assert set(network.sim.cadastral_ids()) <= parcels

    def test_network_substations_have_meters(self):
        district = synthesize_district(seed=5, n_buildings=6, n_networks=1)
        network = district.networks[0]
        consumers = network.sim.nodes(NODE_CONSUMER)
        assert len(network.devices) == len(consumers)
        assert all(d.kind == "heat_flow_meter" for d in network.devices)

    def test_protocol_constraints_respected(self):
        district = synthesize_district(seed=11, n_buildings=12,
                                       devices_per_building=7, n_networks=1)
        from repro.datasources.generators import _DEVICE_PROTOCOLS
        for device in district.devices:
            assert device.protocol in _DEVICE_PROTOCOLS[device.kind]

    def test_load_profiles_positive_during_day(self):
        district = synthesize_district(seed=4, n_buildings=3)
        noon_monday = 4 * 86400 + 12 * 3600.0
        for building in district.buildings:
            assert building.load_profile.value(noon_monday) > 0.0

    def test_boundary_feature_present(self):
        district = synthesize_district(seed=4, n_buildings=3)
        assert len(district.gis.layer(LAYER_BOUNDARY)) == 1

    def test_lookup_helpers(self):
        district = synthesize_district(seed=4, n_buildings=3, n_networks=1)
        building = district.buildings[1]
        assert district.building(building.entity_id) is building
        with pytest.raises(ConfigurationError):
            district.building("bld-9999")
        network = district.networks[0]
        assert district.network(network.entity_id) is network
        with pytest.raises(ConfigurationError):
            district.network("net-9999")

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            synthesize_district(n_buildings=0)
        with pytest.raises(ConfigurationError):
            synthesize_district(devices_per_building=0)
        with pytest.raises(ConfigurationError):
            synthesize_district(n_networks=-1)
