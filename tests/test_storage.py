"""Tests for the proxy-local DB, query objects and global measurement DB."""

import pytest

from repro.common.cdf import Measurement
from repro.errors import QueryError, SeriesNotFoundError
from repro.middleware.broker import Broker
from repro.middleware.peer import connect
from repro.middleware.topics import measurement_topic
from repro.network.scheduler import Scheduler
from repro.network.transport import LatencyModel, Network
from repro.network.webservice import HttpClient
from repro.storage.localdb import LocalDatabase
from repro.storage.measurementdb import MeasurementDatabase
from repro.storage.query import RangeQuery


def meas(device="dev-0001", quantity="power", value=100.0, t=0.0,
         entity="bld-0001"):
    return Measurement(device_id=device, entity_id=entity,
                       quantity=quantity, value=value, timestamp=t)


class TestLocalDatabase:
    def test_insert_and_latest(self):
        db = LocalDatabase()
        db.insert(meas(value=1.0, t=0.0))
        db.insert(meas(value=2.0, t=60.0))
        assert db.latest("dev-0001", "power") == (60.0, 2.0)
        assert db.inserts == 2

    def test_devices_and_quantities(self):
        db = LocalDatabase()
        db.insert(meas(device="dev-0002", quantity="power"))
        db.insert(meas(device="dev-0001", quantity="temperature"))
        db.insert(meas(device="dev-0001", quantity="power"))
        assert db.devices() == ["dev-0001", "dev-0002"]
        assert db.quantities("dev-0001") == ["power", "temperature"]

    def test_missing_series_raises(self):
        db = LocalDatabase()
        with pytest.raises(SeriesNotFoundError):
            db.series("dev-0009", "power")

    def test_query_raw(self):
        db = LocalDatabase()
        for i in range(5):
            db.insert(meas(value=float(i), t=i * 60.0))
        result = db.query(RangeQuery("dev-0001", "power", start=60.0,
                                     end=240.0))
        assert result == [(60.0, 1.0), (120.0, 2.0), (180.0, 3.0)]

    def test_query_aggregated(self):
        db = LocalDatabase()
        for i in range(4):
            db.insert(meas(value=float(i), t=i * 30.0))
        result = db.query(RangeQuery("dev-0001", "power", bucket=60.0,
                                     agg="mean"))
        assert result == [(0.0, 0.5), (60.0, 2.5)]

    def test_query_unbounded_window(self):
        db = LocalDatabase()
        db.insert(meas(value=7.0, t=100.0))
        assert db.query(RangeQuery("dev-0001", "power")) == [(100.0, 7.0)]

    def test_retention_prunes(self):
        db = LocalDatabase(retention=100.0)
        db.insert(meas(value=1.0, t=0.0))
        db.insert(meas(value=2.0, t=50.0))
        db.insert(meas(value=3.0, t=200.0))
        series = db.series("dev-0001", "power")
        assert series.to_pairs() == [(200.0, 3.0)]

    def test_sample_count(self):
        db = LocalDatabase()
        db.insert(meas())
        db.insert(meas(quantity="temperature", value=20.0))
        assert db.sample_count() == 2

    def test_has_series(self):
        db = LocalDatabase()
        assert not db.has_series("dev-0001", "power")
        db.insert(meas())
        assert db.has_series("dev-0001", "power")


class TestRangeQuery:
    def test_params_round_trip(self):
        q = RangeQuery("dev-0001", "power", start=10.0, end=20.0,
                       bucket=900.0, agg="max")
        assert RangeQuery.from_params(q.to_params()) == q

    def test_optional_fields_round_trip(self):
        q = RangeQuery("dev-0001", "power")
        again = RangeQuery.from_params(q.to_params())
        assert again.start is None and again.bucket is None

    def test_reversed_window_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery("d", "power", start=20.0, end=10.0)

    def test_bad_bucket_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery("d", "power", bucket=-5.0)

    def test_unknown_agg_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery("d", "power", agg="p95")

    def test_missing_params_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery.from_params({"quantity": "power"})

    def test_bad_numeric_param_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery.from_params(
                {"device_id": "d", "quantity": "power", "start": "soon"}
            )


@pytest.fixture
def district_net():
    net = Network(Scheduler(), latency=LatencyModel(jitter=0.0))
    Broker(net.add_host("broker"))
    mdb = MeasurementDatabase(net.add_host("mdb"), "broker", "dst-0001")
    publisher = connect(net.add_host("proxy"), "broker")
    net.scheduler.run_until_idle()  # subscription handshake
    return net, mdb, publisher


class TestMeasurementDatabase:
    def publish(self, net, publisher, m):
        topic = measurement_topic("dst-0001", m.entity_id, m.device_id,
                                  m.quantity)
        publisher.publish(topic, m.to_dict())
        net.scheduler.run_until_idle()

    def test_ingests_published_measurements(self, district_net):
        net, mdb, publisher = district_net
        self.publish(net, publisher, meas(value=42.0, t=10.0))
        assert mdb.ingested == 1
        assert mdb.store.latest("dev-0001", "power") == (10.0, 42.0)

    def test_rejects_non_measurement_payloads(self, district_net):
        net, mdb, publisher = district_net
        topic = measurement_topic("dst-0001", "bld-0001", "dev-0001", "power")
        publisher.publish(topic, {"record": "hologram"})
        publisher.publish(topic, "not even a dict")
        net.scheduler.run_until_idle()
        assert mdb.ingested == 0
        assert mdb.rejected == 2

    def test_freshness_tracks_newest(self, district_net):
        net, mdb, publisher = district_net
        self.publish(net, publisher, meas(t=100.0))
        self.publish(net, publisher, meas(t=50.0))  # late arrival
        assert mdb.freshness("dev-0001") == 100.0
        assert mdb.freshness("dev-0009") is None

    def test_ignores_other_districts(self, district_net):
        net, mdb, publisher = district_net
        m = meas()
        topic = measurement_topic("dst-0999", m.entity_id, m.device_id,
                                  m.quantity)
        publisher.publish(topic, m.to_dict())
        net.scheduler.run_until_idle()
        assert mdb.ingested == 0

    def test_web_service_query(self, district_net):
        net, mdb, publisher = district_net
        for i in range(3):
            self.publish(net, publisher, meas(value=float(i), t=i * 60.0))
        client = HttpClient(net.add_host("user"))
        query = RangeQuery("dev-0001", "power", start=0.0, end=1000.0)
        resp = client.get("svc://mdb/measurements", params=query.to_params())
        assert resp.body["samples"] == [[0.0, 0.0], [60.0, 1.0],
                                        [120.0, 2.0]]

    def test_web_service_404_for_unknown_series(self, district_net):
        net, mdb, publisher = district_net
        client = HttpClient(net.add_host("user"))
        query = RangeQuery("dev-0404", "power")
        resp = client.call("svc://mdb/measurements",
                           params=query.to_params(), check=False)
        assert resp.status == 404

    def test_web_service_400_for_bad_query(self, district_net):
        net, mdb, publisher = district_net
        client = HttpClient(net.add_host("user"))
        resp = client.call("svc://mdb/measurements",
                           params={"device_id": "d"}, check=False)
        assert resp.status == 400

    def test_devices_route(self, district_net):
        net, mdb, publisher = district_net
        self.publish(net, publisher, meas(device="dev-0002"))
        client = HttpClient(net.add_host("user"))
        resp = client.get("svc://mdb/devices")
        assert resp.body["devices"] == ["dev-0002"]

    def test_freshness_route(self, district_net):
        net, mdb, publisher = district_net
        self.publish(net, publisher, meas(t=77.0))
        client = HttpClient(net.add_host("user"))
        resp = client.get("svc://mdb/freshness/dev-0001")
        assert resp.body["last_timestamp"] == 77.0
        missing = client.call("svc://mdb/freshness/dev-0404", check=False)
        assert missing.status == 404
