"""Unit tests for client-side integration (merge, conflicts, joins)."""

import pytest

from repro.common.cdf import EntityModel, Relation
from repro.core.integration import integrate
from repro.errors import IntegrationError
from repro.ontology.queries import (
    ResolvedArea,
    ResolvedDevice,
    ResolvedEntity,
)


def resolved_area(entities):
    return ResolvedArea(
        district_id="dst-0001",
        district_name="D",
        gis_uris=("svc://proxy-gis/",),
        measurement_uris=(),
        entities=tuple(entities),
    )


def resolved_entity(entity_id="bld-0001", entity_type="building",
                    devices=()):
    return ResolvedEntity(
        entity_id=entity_id,
        entity_type=entity_type,
        name="",
        proxy_uris={},
        gis_feature_id="",
        devices=tuple(devices),
    )


def bim_model(entity_id="bld-0001", **props):
    defaults = {"floor_area_m2": 1000.0, "cadastral_id": "TO-01-1000"}
    defaults.update(props)
    return EntityModel(entity_id=entity_id, entity_type="building",
                       source_kind="bim", name="HQ", properties=defaults)


def gis_model(entity_id="bld-0001", **props):
    defaults = {"cadastral_id": "TO-01-1000", "height_m": 12.0}
    defaults.update(props)
    return EntityModel(
        entity_id=entity_id, entity_type="building", source_kind="gis",
        name="Via Roma 1", properties=defaults,
        geometry={"type": "Polygon", "bounds": [0, 0, 10, 10],
                  "centroid": [5, 5], "coordinates": [], "area_m2": 100.0},
    )


class TestMerge:
    def test_properties_unioned_with_provenance(self):
        model = integrate(
            resolved_area([resolved_entity()]),
            {"bld-0001": [bim_model(), gis_model()]},
        )
        entity = model.entity("bld-0001")
        assert entity.properties["floor_area_m2"] == 1000.0
        assert entity.provenance["floor_area_m2"] == "bim"
        assert entity.properties["height_m"] == 12.0
        assert entity.provenance["height_m"] == "gis"

    def test_geometry_comes_from_gis(self):
        model = integrate(
            resolved_area([resolved_entity()]),
            {"bld-0001": [bim_model(), gis_model()]},
        )
        assert model.entity("bld-0001").geometry["type"] == "Polygon"

    def test_agreeing_sources_no_conflict(self):
        model = integrate(
            resolved_area([resolved_entity()]),
            {"bld-0001": [bim_model(), gis_model()]},
        )
        assert model.conflicts == []

    def test_disagreeing_sources_recorded_not_overwritten(self):
        model = integrate(
            resolved_area([resolved_entity()]),
            {"bld-0001": [bim_model(cadastral_id="TO-01-1000"),
                          gis_model(cadastral_id="TO-01-9999")]},
        )
        conflicts = model.conflicts
        assert len(conflicts) == 1
        assert conflicts[0].prop == "cadastral_id"
        sources = dict(conflicts[0].values)
        assert sources == {"bim": "TO-01-1000", "gis": "TO-01-9999"}
        # precedence: BIM wins the merged view for building attributes
        assert model.entity("bld-0001").properties["cadastral_id"] == \
            "TO-01-1000"

    def test_name_falls_back_to_model_name(self):
        model = integrate(
            resolved_area([resolved_entity()]),
            {"bld-0001": [gis_model()]},
        )
        assert model.entity("bld-0001").name == "Via Roma 1"

    def test_mismatched_model_rejected(self):
        with pytest.raises(IntegrationError):
            integrate(
                resolved_area([resolved_entity()]),
                {"bld-0001": [bim_model(entity_id="bld-0002")]},
            )

    def test_duplicate_source_rejected(self):
        with pytest.raises(IntegrationError):
            integrate(
                resolved_area([resolved_entity()]),
                {"bld-0001": [bim_model(), bim_model()]},
            )

    def test_missing_models_still_integrates(self):
        model = integrate(resolved_area([resolved_entity()]), {})
        entity = model.entity("bld-0001")
        assert entity.sources == {}
        assert entity.properties == {}

    def test_unknown_entity_lookup_raises(self):
        model = integrate(resolved_area([resolved_entity()]), {})
        with pytest.raises(IntegrationError):
            model.entity("bld-0404")


class TestMeasurementsAttachment:
    def test_measurements_mapped(self):
        device = ResolvedDevice("dev-0001", "svc://proxy-dev/", "zigbee",
                                ("power",), False)
        model = integrate(
            resolved_area([resolved_entity(devices=[device])]),
            {"bld-0001": [bim_model()]},
            {"bld-0001": {("dev-0001", "power"): [(0.0, 1.0), (60.0, 2.0)]}},
        )
        entity = model.entity("bld-0001")
        assert entity.samples("dev-0001", "power") == [(0.0, 1.0),
                                                       (60.0, 2.0)]
        assert entity.samples("dev-0001", "energy") == []

    def test_device_count(self):
        devices = [
            ResolvedDevice(f"dev-000{i}", "svc://p/", "zigbee",
                           ("power",), False)
            for i in range(3)
        ]
        model = integrate(
            resolved_area([resolved_entity(devices=devices)]), {}
        )
        assert model.device_count == 3


class TestServedBuildingsJoin:
    def build_model(self, serves_parcel="TO-01-1000"):
        sim = EntityModel(
            entity_id="net-0001", entity_type="network",
            source_kind="sim", name="N1",
            properties={"commodity": "heat"},
            relations=(
                Relation("serves", "n-c0", serves_parcel,
                         {"key": "cadastral_id"}),
            ),
        )
        return integrate(
            resolved_area([
                resolved_entity(),
                resolved_entity("net-0001", "network"),
            ]),
            {"bld-0001": [bim_model(), gis_model()],
             "net-0001": [sim]},
        )

    def test_join_resolves_parcel_to_building(self):
        model = self.build_model()
        assert model.served_buildings("net-0001") == ["bld-0001"]

    def test_join_with_unknown_parcel_empty(self):
        model = self.build_model(serves_parcel="TO-99-0000")
        assert model.served_buildings("net-0001") == []

    def test_join_requires_sim_model(self):
        model = integrate(
            resolved_area([resolved_entity("net-0001", "network")]), {}
        )
        with pytest.raises(IntegrationError):
            model.served_buildings("net-0001")

    def test_building_and_network_partitions(self):
        model = self.build_model()
        assert [e.entity_id for e in model.buildings] == ["bld-0001"]
        assert [e.entity_id for e in model.networks] == ["net-0001"]
