"""Tests for CSV/report export helpers."""

import csv
import io

import pytest

from repro.core.integration import integrate
from repro.errors import QueryError
from repro.ontology.queries import (
    ResolvedArea,
    ResolvedDevice,
    ResolvedEntity,
)
from repro.common.cdf import EntityModel
from repro.storage.export import (
    downsample,
    energy_summary,
    model_measurements_to_csv,
    profile_table,
    rows_to_csv,
    samples_to_csv,
)


def parse_csv(text):
    return list(csv.reader(io.StringIO(text)))


def small_model():
    feeder = ResolvedDevice("dev-0100", "svc://p/", "zigbee",
                            ("power", "energy"), False)
    entity = ResolvedEntity("bld-0001", "building", "B1", {}, "",
                            (feeder,))
    resolved = ResolvedArea("dst-0001", "D", (), (), (entity,))
    bim = EntityModel(entity_id="bld-0001", entity_type="building",
                      source_kind="bim", name="B1",
                      properties={"floor_area_m2": 500.0, "use": "office"})
    return integrate(resolved, {"bld-0001": [bim]}, {
        "bld-0001": {
            ("dev-0100", "power"): [(0.0, 1000.0), (3600.0, 1000.0)],
            ("dev-0100", "energy"): [(3600.0, 1000.0)],
        },
    })


class TestSamplesCsv:
    def test_iso_timestamps(self):
        text = samples_to_csv([(0.0, 1.5), (3600.0, 2.0)], "watts")
        rows = parse_csv(text)
        assert rows[0] == ["timestamp", "watts"]
        assert rows[1] == ["2015-01-01T00:00:00Z", "1.5"]
        assert rows[2][0] == "2015-01-01T01:00:00Z"

    def test_raw_timestamps(self):
        text = samples_to_csv([(12.5, 3.0)], iso_timestamps=False)
        rows = parse_csv(text)
        assert rows[1] == ["12.5", "3.0"]

    def test_empty(self):
        rows = parse_csv(samples_to_csv([]))
        assert rows == [["timestamp", "value"]]


class TestModelCsv:
    def test_long_form_rows(self):
        text = model_measurements_to_csv(small_model())
        rows = parse_csv(text)
        assert rows[0] == ["entity_id", "device_id", "quantity",
                           "timestamp", "value"]
        assert len(rows) == 1 + 3  # 2 power + 1 energy samples

    def test_quantity_filter(self):
        text = model_measurements_to_csv(small_model(), quantity="energy")
        rows = parse_csv(text)
        assert len(rows) == 2
        assert rows[1][2] == "energy"


class TestProfileTable:
    def test_rows_have_bucket_bounds(self):
        rows = profile_table([(0.0, 100.0), (3600.0, 200.0)], 3600.0)
        assert rows[0]["start"] == "2015-01-01T00:00:00Z"
        assert rows[0]["end"] == "2015-01-01T01:00:00Z"
        assert rows[1]["watts"] == 200.0

    def test_bad_bucket(self):
        with pytest.raises(QueryError):
            profile_table([], 0.0)


class TestDownsample:
    def test_downsample_means(self):
        samples = [(0.0, 1.0), (30.0, 3.0), (60.0, 5.0)]
        assert downsample(samples, 60.0) == [(0.0, 2.0), (60.0, 5.0)]


class TestEnergySummary:
    def test_summary_rows(self):
        rows = energy_summary(small_model())
        assert len(rows) == 1
        row = rows[0]
        assert row["entity_id"] == "bld-0001"
        assert row["energy_wh"] == pytest.approx(1000.0)
        assert row["intensity_wh_per_m2"] == pytest.approx(2.0)

    def test_rows_to_csv(self):
        text = rows_to_csv(energy_summary(small_model()))
        rows = parse_csv(text)
        assert rows[0][0] == "entity_id"
        assert rows[1][0] == "bld-0001"

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""
