"""Tests for the master node: registration and redirect-only resolution."""

import pytest

from repro.errors import RegistrationError
from repro.network.scheduler import Scheduler
from repro.network.transport import LatencyModel, Network
from repro.network.webservice import HttpClient
from repro.core.master import MasterNode
from repro.ontology.queries import AreaQuery


@pytest.fixture
def net():
    return Network(Scheduler(), latency=LatencyModel(jitter=0.0))


@pytest.fixture
def master(net):
    return MasterNode(net.add_host("master"))


def gis_payload(uri="svc://proxy-gis/"):
    return {"proxy_kind": "database", "source_kind": "gis",
            "district_id": "dst-0001", "uri": uri, "name": "Torino Nord"}


def bim_payload(entity="bld-0001", uri="svc://proxy-bim-1/"):
    return {"proxy_kind": "database", "source_kind": "bim",
            "district_id": "dst-0001", "entity_id": entity, "uri": uri,
            "entity_type": "building", "name": f"Building {entity}",
            "bounds": [0.0, 0.0, 50.0, 50.0], "gis_feature_id": "ft-00001"}


def sim_payload(entity="net-0001", uri="svc://proxy-sim-1/"):
    return {"proxy_kind": "database", "source_kind": "sim",
            "district_id": "dst-0001", "entity_id": entity, "uri": uri,
            "entity_type": "network", "name": "Heat 1",
            "commodity": "heat"}


def device_payload(uri="svc://proxy-dev-1/"):
    return {
        "proxy_kind": "device", "district_id": "dst-0001", "uri": uri,
        "protocol": "zigbee",
        "devices": [{
            "record": "device", "device_id": "dev-0101",
            "protocol": "zigbee", "entity_id": "bld-0001",
            "sensors": [{"quantity": "power", "sample_period": 60.0}],
            "actuators": [],
        }],
    }


def measurement_payload(uri="svc://mdb/"):
    return {"proxy_kind": "measurement", "district_id": "dst-0001",
            "uri": uri}


class TestRegistration:
    def test_gis_attaches_to_district_root(self, master):
        body = master.register(gis_payload())
        assert body["attached"] == "district"
        district = master.ontology.district("dst-0001")
        assert district.gis_uris == ["svc://proxy-gis/"]
        assert district.name == "Torino Nord"

    def test_gis_registration_idempotent_uri(self, master):
        master.register(gis_payload())
        master.register(gis_payload())
        assert master.ontology.district("dst-0001").gis_uris == \
            ["svc://proxy-gis/"]

    def test_bim_creates_entity_with_bounds(self, master):
        master.register(bim_payload())
        entity = master.ontology.district("dst-0001").entity("bld-0001")
        assert entity.proxy_uris["bim"] == "svc://proxy-bim-1/"
        assert entity.bounds is not None
        assert entity.gis_feature_id == "ft-00001"

    def test_sim_creates_network_entity(self, master):
        master.register(sim_payload())
        entity = master.ontology.district("dst-0001").entity("net-0001")
        assert entity.entity_type == "network"
        assert entity.properties["commodity"] == "heat"

    def test_device_proxy_creates_skeleton_entity(self, master):
        # devices may register before the building's BIM proxy exists
        master.register(device_payload())
        entity = master.ontology.district("dst-0001").entity("bld-0001")
        assert "dev-0101" in entity.devices
        assert entity.proxy_uris == {}

    def test_device_then_bim_fills_in_entity(self, master):
        master.register(device_payload())
        master.register(bim_payload())
        entity = master.ontology.district("dst-0001").entity("bld-0001")
        assert entity.proxy_uris["bim"] == "svc://proxy-bim-1/"
        assert "dev-0101" in entity.devices

    def test_measurement_db_attaches_to_root(self, master):
        master.register(measurement_payload())
        assert master.ontology.district("dst-0001").measurement_uris == \
            ["svc://mdb/"]

    def test_duplicate_device_registration_rejected(self, master):
        master.register(device_payload())
        with pytest.raises(RegistrationError):
            master.register(device_payload(uri="svc://proxy-dev-2/"))

    @pytest.mark.parametrize("mutilate", [
        lambda p: p.pop("district_id"),
        lambda p: p.pop("uri"),
        lambda p: p.update(proxy_kind="hologram"),
        lambda p: p.update(source_kind="csv"),
    ])
    def test_malformed_registrations_rejected(self, master, mutilate):
        payload = gis_payload()
        mutilate(payload)
        with pytest.raises(RegistrationError):
            master.register(payload)

    def test_bim_without_entity_rejected(self, master):
        payload = bim_payload()
        del payload["entity_id"]
        with pytest.raises(RegistrationError):
            master.register(payload)

    def test_device_proxy_without_devices_rejected(self, master):
        payload = device_payload()
        payload["devices"] = []
        with pytest.raises(RegistrationError):
            master.register(payload)

    def test_registration_counter(self, master):
        master.register(gis_payload())
        master.register(bim_payload())
        assert master.registrations == 2


class TestResolveRoutes:
    def populate(self, master):
        master.register(gis_payload())
        master.register(bim_payload())
        master.register(sim_payload())
        master.register(device_payload())
        master.register(measurement_payload())

    def test_resolve_over_web_service(self, net, master):
        self.populate(master)
        client = HttpClient(net.add_host("user"))
        response = client.get(
            master.uri.rstrip("/") + "/resolve",
            params=AreaQuery(district_id="dst-0001").to_params(),
        )
        body = response.body
        assert body["district_id"] == "dst-0001"
        assert len(body["entities"]) == 2
        assert body["gis_uris"] == ["svc://proxy-gis/"]
        assert body["measurement_uris"] == ["svc://mdb/"]

    def test_resolve_unknown_district_404(self, net, master):
        client = HttpClient(net.add_host("user"))
        response = client.call(
            master.uri.rstrip("/") + "/resolve",
            params={"district_id": "dst-0404"}, check=False,
        )
        assert response.status == 404

    def test_resolve_bad_query_400(self, net, master):
        self.populate(master)
        client = HttpClient(net.add_host("user"))
        response = client.call(
            master.uri.rstrip("/") + "/resolve",
            params={"district_id": "dst-0001", "bbox": "zzz"}, check=False,
        )
        assert response.status == 400

    def test_register_route(self, net, master):
        client = HttpClient(net.add_host("proxy"))
        response = client.post(master.uri.rstrip("/") + "/register",
                               body=gis_payload())
        assert response.body["attached"] == "district"
        bad = client.call(master.uri.rstrip("/") + "/register",
                          method="POST", body={}, check=False)
        assert bad.status == 400

    def test_ontology_route(self, net, master):
        self.populate(master)
        client = HttpClient(net.add_host("user"))
        body = client.get(master.uri.rstrip("/") + "/ontology").body
        assert len(body["districts"]) == 1
        assert len(body["districts"][0]["entities"]) == 2

    def test_districts_route(self, net, master):
        self.populate(master)
        client = HttpClient(net.add_host("user"))
        body = client.get(master.uri.rstrip("/") + "/districts").body
        assert body["districts"] == [{
            "district_id": "dst-0001", "name": "Torino Nord",
            "entities": 2, "devices": 1,
        }]

    def test_resolves_counter(self, master):
        self.populate(master)
        master.resolve_area(AreaQuery("dst-0001"))
        master.resolve_area(AreaQuery("dst-0001"))
        assert master.resolves_served == 2
