"""Tests for the pub/sub broker and peer API."""

import pytest

from repro.errors import ConfigurationError
from repro.middleware.broker import Broker
from repro.middleware.peer import connect
from repro.network.scheduler import Scheduler
from repro.network.transport import LatencyModel, Network


@pytest.fixture
def net():
    return Network(Scheduler(), latency=LatencyModel(jitter=0.0))


@pytest.fixture
def broker(net):
    return Broker(net.add_host("broker"))


def make_peer(net, name):
    return connect(net.add_host(name), "broker")


class TestPublishSubscribe:
    def test_event_reaches_subscriber(self, net, broker):
        publisher = make_peer(net, "pub")
        subscriber = make_peer(net, "sub")
        events = []
        subscriber.subscribe("metrics/#", events.append)
        net.scheduler.run_until_idle()  # let the subscription register
        publisher.publish("metrics/power", {"w": 120})
        net.scheduler.run_until_idle()
        assert len(events) == 1
        assert events[0].topic == "metrics/power"
        assert events[0].payload == {"w": 120}
        assert events[0].publisher == "pub"
        assert events[0].delivered_at > events[0].published_at

    def test_non_matching_topic_not_delivered(self, net, broker):
        publisher = make_peer(net, "pub")
        subscriber = make_peer(net, "sub")
        events = []
        subscriber.subscribe("metrics/energy", events.append)
        net.scheduler.run_until_idle()
        publisher.publish("metrics/power", 1)
        net.scheduler.run_until_idle()
        assert events == []

    def test_multiple_subscribers_fanout(self, net, broker):
        publisher = make_peer(net, "pub")
        inboxes = []
        for i in range(5):
            inbox = []
            make_peer(net, f"sub{i}").subscribe("t/x", inbox.append)
            inboxes.append(inbox)
        net.scheduler.run_until_idle()
        publisher.publish("t/x", "hello")
        net.scheduler.run_until_idle()
        assert all(len(inbox) == 1 for inbox in inboxes)
        assert broker.stats.fanout_deliveries == 5

    def test_one_peer_multiple_subscriptions(self, net, broker):
        peer = make_peer(net, "p")
        seen_a, seen_b = [], []
        peer.subscribe("a/#", seen_a.append)
        peer.subscribe("a/b", seen_b.append)
        net.scheduler.run_until_idle()
        peer.publish("a/b", 1)
        net.scheduler.run_until_idle()
        assert len(seen_a) == 1 and len(seen_b) == 1

    def test_publish_before_subscription_ack_not_delivered(self, net, broker):
        publisher = make_peer(net, "pub")
        subscriber = make_peer(net, "sub")
        events = []
        subscriber.subscribe("t/x", events.append)
        # no run_until_idle: publish races ahead of the subscribe
        publisher.publish("t/x", 1)
        net.scheduler.run_until_idle()
        # the subscribe message was sent before the publish, so with FIFO
        # ordering on equal latency it lands first and the event arrives
        assert broker.stats.published == 1

    def test_unsubscribe_stops_delivery(self, net, broker):
        publisher = make_peer(net, "pub")
        subscriber = make_peer(net, "sub")
        events = []
        sub = subscriber.subscribe("t/#", events.append)
        net.scheduler.run_until_idle()
        publisher.publish("t/1", 1)
        net.scheduler.run_until_idle()
        sub.unsubscribe()
        net.scheduler.run_until_idle()
        publisher.publish("t/2", 2)
        net.scheduler.run_until_idle()
        assert [e.payload for e in events] == [1]
        assert broker.subscription_count() == 0

    def test_wildcard_and_literal_counters(self, net, broker):
        peer = make_peer(net, "p")
        sub = peer.subscribe("x/+", lambda e: None)
        net.scheduler.run_until_idle()
        peer.publish("x/1", None)
        peer.publish("x/2", None)
        net.scheduler.run_until_idle()
        assert sub.events_received == 2
        assert peer.events_published == 2
        assert broker.stats.published == 2


class TestRobustness:
    def test_bad_topic_publish_raises_locally(self, net, broker):
        peer = make_peer(net, "p")
        with pytest.raises(ConfigurationError):
            peer.publish("bad//topic", 1)

    def test_bad_filter_raises_locally(self, net, broker):
        peer = make_peer(net, "p")
        with pytest.raises(ConfigurationError):
            peer.subscribe("a/#/b", lambda e: None)

    def test_connect_requires_broker_on_network(self, net):
        host = net.add_host("lonely")
        with pytest.raises(ConfigurationError):
            connect(host, "missing-broker")

    def test_offline_subscriber_messages_dropped(self, net, broker):
        publisher = make_peer(net, "pub")
        subscriber = make_peer(net, "sub")
        events = []
        subscriber.subscribe("t/#", events.append)
        net.scheduler.run_until_idle()
        net.set_host_online("sub", False)
        publisher.publish("t/1", 1)
        net.scheduler.run_until_idle()
        assert events == []

    def test_unknown_verb_ignored(self, net, broker):
        peer_host = net.add_host("raw")
        peer_host.send("broker", "pubsub", {"verb": "dance"})
        net.scheduler.run_until_idle()  # must not raise
        assert broker.stats.published == 0


class TestBrokerScaling:
    def test_many_subscribers_each_get_event(self, net, broker):
        publisher = make_peer(net, "pub")
        count = 50
        inboxes = []
        for i in range(count):
            inbox = []
            make_peer(net, f"s{i}").subscribe("big/#", inbox.append)
            inboxes.append(inbox)
        net.scheduler.run_until_idle()
        publisher.publish("big/event", {"n": 1})
        net.scheduler.run_until_idle()
        assert sum(len(i) for i in inboxes) == count


class TestMatchCache:
    """The per-topic match-set cache must never change which
    subscribers an event reaches."""

    def test_cache_populated_on_publish(self, net, broker):
        peer = make_peer(net, "p")
        peer.subscribe("t/#", lambda e: None)
        net.scheduler.run_until_idle()
        peer.publish("t/1", 1)
        net.scheduler.run_until_idle()
        assert "t/1" in broker._match_cache
        assert len(broker._match_cache["t/1"]) == 1

    def test_new_subscriber_invalidates_cache(self, net, broker):
        publisher = make_peer(net, "pub")
        first, second = [], []
        make_peer(net, "s1").subscribe("t/#", first.append)
        net.scheduler.run_until_idle()
        publisher.publish("t/1", 1)       # cache {t/1: [s1]}
        net.scheduler.run_until_idle()
        make_peer(net, "s2").subscribe("t/+", second.append)
        net.scheduler.run_until_idle()
        publisher.publish("t/1", 2)       # must re-match, reach both
        net.scheduler.run_until_idle()
        assert [e.payload for e in first] == [1, 2]
        assert [e.payload for e in second] == [2]

    def test_unsubscribe_invalidates_cache(self, net, broker):
        publisher = make_peer(net, "pub")
        events = []
        sub = make_peer(net, "sub").subscribe("t/#", events.append)
        net.scheduler.run_until_idle()
        publisher.publish("t/1", 1)
        net.scheduler.run_until_idle()
        sub.unsubscribe()
        net.scheduler.run_until_idle()
        publisher.publish("t/1", 2)
        net.scheduler.run_until_idle()
        assert [e.payload for e in events] == [1]
        assert broker.stats.fanout_deliveries == 1

    def test_dead_subscriber_reaping_invalidates_cache(self, net, broker):
        # a subscriber whose host left the network is reaped during
        # fan-out; the cached match set must not keep resurrecting it
        publisher = make_peer(net, "pub")
        make_peer(net, "doomed").subscribe("t/#", lambda e: None)
        net.scheduler.run_until_idle()
        publisher.publish("t/1", 1)
        net.scheduler.run_until_idle()
        del net._hosts["doomed"]
        publisher.publish("t/1", 2)
        net.scheduler.run_until_idle()
        assert broker.stats.dead_subscriptions_dropped == 1
        assert broker.subscription_count() == 0
        publisher.publish("t/1", 3)  # rebuilt match set is empty
        net.scheduler.run_until_idle()
        assert broker.stats.fanout_deliveries == 1

    def test_restart_clears_cache(self, net, broker):
        peer = make_peer(net, "p")
        peer.subscribe("t/#", lambda e: None)
        net.scheduler.run_until_idle()
        peer.publish("t/1", 1)
        net.scheduler.run_until_idle()
        assert broker._match_cache
        broker.reset()
        assert broker._match_cache == {}

    def test_cache_bounded_against_topic_cardinality(self, net, broker):
        from repro.middleware.broker import _MATCH_CACHE_CAP

        peer = make_peer(net, "p")
        peer.subscribe("t/#", lambda e: None)
        net.scheduler.run_until_idle()
        for i in range(_MATCH_CACHE_CAP + 10):
            peer.publish(f"t/{i}", None)
        net.scheduler.run_until_idle()
        assert len(broker._match_cache) <= _MATCH_CACHE_CAP


class TestFanoutWireSize:
    """Fan-out envelopes are sized as base + per-subscriber delta; the
    charged bytes must equal a full estimate of each actual envelope."""

    def test_fanout_size_matches_full_estimate(self, net, broker):
        from repro.network.transport import estimate_size

        publisher = make_peer(net, "pub")
        inbox = []
        for i in range(7):
            make_peer(net, f"sz{i}").subscribe("t/#", inbox.append)
        net.scheduler.run_until_idle()
        deliveries = []
        original_deliver = net._deliver

        def spy(sender, recipient, port, payload, size, sent_at):
            if isinstance(payload, dict) and payload.get("kind") == "event":
                deliveries.append((payload, size))
            original_deliver(sender, recipient, port, payload, size, sent_at)

        net._deliver = spy
        publisher.publish("t/reading", {"value": 21.5, "unit": "C"})
        net.scheduler.run_until_idle()
        assert len(deliveries) == 7
        for payload, size in deliveries:
            assert size == estimate_size(payload)

    def test_acked_fanout_size_includes_delivery_id(self, net, broker):
        from repro.network.transport import estimate_size

        publisher = make_peer(net, "pub")
        consumer = make_peer(net, "cons")
        consumer.subscribe("t/#", lambda e: None, ack=True)
        net.scheduler.run_until_idle()
        deliveries = []
        original_deliver = net._deliver

        def spy(sender, recipient, port, payload, size, sent_at):
            if isinstance(payload, dict) and payload.get("kind") == "event":
                deliveries.append((payload, size))
            original_deliver(sender, recipient, port, payload, size, sent_at)

        net._deliver = spy
        publisher.publish("t/1", {"v": 1})
        net.scheduler.run_until_idle()
        assert deliveries
        payload, size = deliveries[0]
        assert "delivery_id" in payload
        assert size == estimate_size(payload)
